//! Property-based tests for the parallel-preparation contracts.
//!
//! The sharded σ-lowering path (`PreparedEnv::prepare_sharded`) and the
//! parallel derivation-graph build (`DerivationGraph::build_with_threads`)
//! both promise **byte-identity**: for every shard/thread count — including
//! more shards than declarations and the degenerate 0/1-declaration
//! environments — the result must equal the sequential one id for id, weight
//! bit for weight bit. These tests hold random environments, random shard
//! counts and the engine-level knobs (`sigma_shards`, `graph_build_threads`)
//! to that contract, and check that the [`EnvFingerprint`] a preparation
//! carries never depends on how it was sharded.

use proptest::collection::vec;
use proptest::prelude::*;

use insynth::core::{
    explore, generate_patterns, generate_terms, DeclKind, Declaration, DerivationGraph, Engine,
    ExploreLimits, GenerateLimits, PreparedEnv, Query, SynthesisConfig, SynthesisResult, TypeEnv,
    WeightConfig,
};
use insynth::lambda::Ty;
use insynth::succinct::TypeStore;

const BASE_TYPES: &[&str] = &["A", "B", "C", "D"];

/// A random simple type of bounded depth over a tiny base alphabet.
fn arb_ty() -> impl Strategy<Value = Ty> {
    let leaf = prop::sample::select(BASE_TYPES.to_vec()).prop_map(Ty::base);
    leaf.prop_recursive(2, 6, 2, |inner| {
        (vec(inner.clone(), 1..3), inner).prop_map(|(args, ret)| Ty::fun(args, ret))
    })
}

/// A random environment of up to eight declarations with varied kinds —
/// deliberately *smaller* than most tested shard counts, so the
/// more-shards-than-declarations regime is the common case, not the corner.
fn arb_env() -> impl Strategy<Value = TypeEnv> {
    vec((arb_ty(), 0u8..3), 1..8).prop_map(|decls| {
        decls
            .into_iter()
            .enumerate()
            .map(|(i, (ty, kind))| {
                let kind = match kind {
                    0 => DeclKind::Local,
                    1 => DeclKind::Class,
                    _ => DeclKind::Imported,
                };
                Declaration::simple(format!("d{i}"), ty, kind).with_frequency((i as u64) * 17)
            })
            .collect()
    })
}

fn arb_goal() -> impl Strategy<Value = Ty> {
    prop_oneof![
        prop::sample::select(BASE_TYPES.to_vec()).prop_map(Ty::base),
        (
            prop::sample::select(BASE_TYPES.to_vec()),
            prop::sample::select(BASE_TYPES.to_vec())
        )
            .prop_map(|(a, b)| Ty::fun(vec![Ty::base(a)], Ty::base(b))),
    ]
}

/// Byte-precise fingerprint of a query result: rendered and raw terms, the
/// exact weight bit patterns, and the cache-replayed search statistics.
fn result_key(result: &SynthesisResult) -> Vec<(String, String, u64, usize, usize)> {
    result
        .snippets
        .iter()
        .map(|s| {
            (
                s.term.to_string(),
                s.raw_term.to_string(),
                s.weight.value().to_bits(),
                s.depth,
                s.coercions,
            )
        })
        .collect()
}

/// Walk output as comparable bytes: rendered term plus weight bit pattern.
fn walk_key(graph: &DerivationGraph, env: &TypeEnv) -> Vec<(String, u64)> {
    let limits = GenerateLimits {
        max_depth: Some(4),
        ..GenerateLimits::default()
    };
    generate_terms(graph, env, 64, &limits)
        .terms
        .iter()
        .map(|r| (r.term.to_string(), r.weight.value().to_bits()))
        .collect()
}

proptest! {
    // Deterministic CI: pinned case count and RNG seed, as in
    // tests/properties.rs — the vendored proptest stand-in derives each
    // case's stream from (rng_seed, test name, case index).
    #![proptest_config(ProptestConfig { cases: 48, rng_seed: 0x0002_5eed, ..ProptestConfig::default() })]

    #[test]
    fn sharded_prepare_is_byte_identical_for_random_shard_counts(
        env in arb_env(),
        shards in 1usize..12,
    ) {
        // With up to 8 declarations and up to 11 shards this exercises both
        // regimes: several declarations per shard, and more shards than
        // declarations (where trailing shards get empty chunks).
        let weights = WeightConfig::default();
        let sequential = PreparedEnv::prepare(&env, &weights);
        let sharded = PreparedEnv::prepare_sharded(&env, &weights, shards);
        prop_assert_eq!(sharded.fingerprint, sequential.fingerprint);
        prop_assert!(
            sharded.identical_to(&sequential),
            "{} decls sharded {} ways diverged from the sequential preparation",
            env.len(),
            shards
        );
    }

    #[test]
    fn fingerprint_and_bytes_are_invariant_across_two_shardings(
        env in arb_env(),
        a in 1usize..12,
        b in 1usize..12,
    ) {
        // Not just sharded-vs-sequential: any two shard counts must agree
        // with each other, fingerprint included.
        let weights = WeightConfig::default();
        let first = PreparedEnv::prepare_sharded(&env, &weights, a);
        let second = PreparedEnv::prepare_sharded(&env, &weights, b);
        prop_assert_eq!(first.fingerprint, second.fingerprint);
        prop_assert!(first.identical_to(&second));
    }

    #[test]
    fn parallel_graph_build_is_byte_identical_to_sequential(
        env in arb_env(),
        goal in arb_goal(),
        threads in 2usize..10,
    ) {
        // The three-pass parallel build must produce the same graph as the
        // sequential one: same node/edge counts, same heuristic bound, and a
        // walk that emits the same ranked terms bit for bit.
        let weights = WeightConfig::default();
        let prepared = std::sync::Arc::new(PreparedEnv::prepare(&env, &weights));

        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let sequential =
            DerivationGraph::build(&prepared, &mut store, &patterns, &env, &weights, &goal);

        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let parallel = DerivationGraph::build_with_threads(
            &prepared, &mut store, &patterns, &env, &weights, &goal, threads,
        );

        prop_assert_eq!(parallel.node_count(), sequential.node_count());
        prop_assert_eq!(parallel.edge_count(), sequential.edge_count());
        prop_assert_eq!(parallel.has_heuristic(), sequential.has_heuristic());
        prop_assert_eq!(parallel.completion_bound(), sequential.completion_bound());
        prop_assert_eq!(walk_key(&parallel, &env), walk_key(&sequential, &env));
    }

    #[test]
    fn engine_answers_are_invariant_under_parallelism_knobs(
        env in arb_env(),
        goal in arb_goal(),
        sigma_shards in 1usize..12,
        graph_build_threads in 1usize..12,
    ) {
        // End to end through the engine: a session configured with arbitrary
        // parallelism knobs must answer byte-identically to one pinned fully
        // sequential — the knobs may only change wall time, never output.
        let base = SynthesisConfig::unbounded().with_max_depth(3);
        let sequential_config = SynthesisConfig {
            sigma_shards: 1,
            graph_build_threads: 1,
            ..base.clone()
        };
        let parallel_config = SynthesisConfig {
            sigma_shards,
            graph_build_threads,
            ..base
        };
        let query = Query::new(goal).with_n(32);
        let sequential = Engine::new(sequential_config).prepare(&env).query(&query);
        let parallel = Engine::new(parallel_config).prepare(&env).query(&query);
        prop_assert_eq!(result_key(&parallel), result_key(&sequential));
    }
}

/// Deterministic companions covering the degenerate environments the random
/// generator cannot reach (it always emits at least one declaration).
#[test]
fn sharding_degenerate_environments_is_identical_to_sequential() {
    let weights = WeightConfig::default();

    let empty = TypeEnv::new();
    let sequential = PreparedEnv::prepare(&empty, &weights);
    for shards in [1usize, 2, 5, 64] {
        let sharded = PreparedEnv::prepare_sharded(&empty, &weights, shards);
        assert!(
            sharded.identical_to(&sequential),
            "empty env, {shards} shards"
        );
    }

    // One declaration, far more shards than work: every shard but the first
    // is an empty chunk, and the merge must still replay byte-identically.
    let single: TypeEnv = vec![Declaration::simple(
        "only",
        Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C")),
        DeclKind::Local,
    )]
    .into_iter()
    .collect();
    let sequential = PreparedEnv::prepare(&single, &weights);
    for shards in [1usize, 2, 7, 64] {
        let sharded = PreparedEnv::prepare_sharded(&single, &weights, shards);
        assert_eq!(sharded.fingerprint, sequential.fingerprint);
        assert!(
            sharded.identical_to(&sequential),
            "1-decl env, {shards} shards"
        );
    }
}
