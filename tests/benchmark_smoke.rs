//! Smoke tests over a representative subset of the Table 2 benchmarks.
//!
//! The full 50-benchmark evaluation with paper-scale environments is the
//! `table2` binary (release build); these tests keep CI fast by running a
//! cross-section of benchmarks with small environments
//! ([`HarnessConfig::fast`]) and checking the qualitative claims of §7.5:
//! the full algorithm finds the expected snippet near the top, and the
//! weighted variants dominate the unweighted one.

use insynth::benchsuite::{all_benchmarks, run_benchmark, summarize, Benchmark, HarnessConfig};
use insynth::core::WeightMode;

fn benchmark(name: &str) -> Benchmark {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

/// The cross-section exercised in tests: IO constructor chains, Swing widgets,
/// networking, literals, subtyping-heavy readers and multi-argument heads.
const SMOKE: &[&str] = &[
    "AWTPermissionStringname",
    "BufferedInputStreamFileInputStream",
    "BufferedReaderReaderin",
    "DatagramSocket",
    "FileInputStreamStringname",
    "FileWriterLPT1",
    "GridBagLayout",
    "JButtonStringtext",
    "JTree",
    "ObjectOutputStreamOutputStreamout",
    "SequenceInputStreamInputStreams",
    "ServerSocketintport",
    "StreamTokenizerFileReaderfileReader",
    "TimerintvalueActionListeneract",
    "URLStringspecthrows",
];

#[test]
fn full_algorithm_finds_the_expected_snippet_in_the_top_ten() {
    let config = HarnessConfig::fast();
    let mut outcomes = Vec::new();
    for name in SMOKE {
        let bench = benchmark(name);
        let outcome = run_benchmark(&bench, WeightMode::Full, &config);
        assert!(
            outcome.rank.is_some(),
            "benchmark {name} not found; suggestions: {:?}",
            outcome.suggestions
        );
        outcomes.push(outcome);
    }
    let summary = summarize(&outcomes);
    assert_eq!(summary.found, SMOKE.len());
    // A majority of the smoke benchmarks rank first, mirroring the paper's 64%.
    assert!(
        summary.rank_one * 2 >= SMOKE.len(),
        "only {} of {} ranked first",
        summary.rank_one,
        SMOKE.len()
    );
}

#[test]
fn no_corpus_variant_still_finds_most_snippets() {
    let config = HarnessConfig::fast();
    let mut found = 0;
    for name in SMOKE {
        let bench = benchmark(name);
        if run_benchmark(&bench, WeightMode::NoCorpus, &config)
            .rank
            .is_some()
        {
            found += 1;
        }
    }
    assert!(
        found >= SMOKE.len() - 2,
        "only {found} of {} found",
        SMOKE.len()
    );
}

#[test]
fn weighted_variants_rank_at_least_as_well_as_unweighted_on_average() {
    let config = HarnessConfig::fast();
    let mut weighted_found = 0usize;
    let mut unweighted_found = 0usize;
    for name in SMOKE.iter().take(8) {
        let bench = benchmark(name);
        if run_benchmark(&bench, WeightMode::Full, &config)
            .rank
            .is_some()
        {
            weighted_found += 1;
        }
        if run_benchmark(&bench, WeightMode::NoWeights, &config)
            .rank
            .is_some()
        {
            unweighted_found += 1;
        }
    }
    assert!(weighted_found >= unweighted_found);
    assert!(weighted_found >= 7);
}

#[test]
fn environment_sizes_grow_with_the_papers_initial_column() {
    let config = HarnessConfig::default();
    let small = benchmark("FileInputStreamStringname"); // paper: 3363
    let large = benchmark("JformattedTextFieldAbstractFormatter"); // paper: 10700
    let small_env = insynth::benchsuite::build_environment(&small, &config);
    let large_env = insynth::benchsuite::build_environment(&large, &config);
    assert!(large_env.len() > small_env.len());
    assert!(small_env.len() > 2500);
    assert!(large_env.len() > 8000);
}
