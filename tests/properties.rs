//! Property-based tests over randomly generated environments and goals.
//!
//! These check the paper's core claims on arbitrary inputs:
//!
//! * soundness — every synthesized term type-checks at the goal type,
//! * completeness — the engine enumerates exactly the terms the reference
//!   RCN function (Figure 4) enumerates, up to a depth bound and
//!   α-equivalence,
//! * prover agreement — the engine's inhabitation verdict coincides with the
//!   reference oracle and with both baseline provers,
//! * σ laws — the succinct conversion is invariant under argument reordering,
//! * ranking — the returned list is sorted by weight,
//! * graph equivalence — the derivation-graph walk (A* over the
//!   completion-cost heuristic) returns byte-identical ranked terms to the
//!   pre-graph unindexed reconstruction, including for `n ∈ {0, 1}` and for
//!   negative-weight-override configurations where the walk must fall back
//!   to plain best-first order,
//! * truncation — a frontier-capped walk still emits a sorted subset of the
//!   true enumeration with exact weights,
//! * content addressing — structurally equal environments (any declaration
//!   order) fingerprint equal, share one preparation and one derivation
//!   graph, and answer byte-identically,
//! * delta re-preparation — `Session::update(delta)` answers byte-identically
//!   to a fresh `Engine::prepare` of the edited environment, for random
//!   add/remove/reweight deltas including negative weight overrides (which
//!   flip the walk into its best-first fallback),
//! * resumable streaming — `query(n=a)` then `query(n=a+b)` on one session
//!   (which resumes the suspended walk, popping only the delta) answers
//!   byte-identically to a one-shot `query(n=a+b)` on a cold engine, in both
//!   walk regimes.

use proptest::collection::vec;
use proptest::prelude::*;

use insynth::core::{
    explore, generate_patterns, generate_terms, generate_terms_unindexed, is_inhabited_ref, rcn,
    DeclKind, Declaration, DerivationGraph, Engine, EnvDelta, ExploreLimits, GenerateLimits,
    PreparedEnv, Query, SynthesisConfig, SynthesisResult, TypeEnv, WeightConfig,
};
use insynth::lambda::{check, Term, Ty};
use insynth::provers::{forward, g4ip, inhabitation_query, ProverLimits};
use insynth::succinct::SuccinctStore;
use std::collections::HashSet;

const BASE_TYPES: &[&str] = &["A", "B", "C", "D"];

/// A random simple type of bounded depth over a tiny base alphabet.
fn arb_ty() -> impl Strategy<Value = Ty> {
    let leaf = prop::sample::select(BASE_TYPES.to_vec()).prop_map(Ty::base);
    leaf.prop_recursive(2, 6, 2, |inner| {
        (vec(inner.clone(), 1..3), inner).prop_map(|(args, ret)| Ty::fun(args, ret))
    })
}

/// A random environment of up to eight declarations with varied kinds.
fn arb_env() -> impl Strategy<Value = TypeEnv> {
    vec((arb_ty(), 0u8..3), 1..8).prop_map(|decls| {
        decls
            .into_iter()
            .enumerate()
            .map(|(i, (ty, kind))| {
                let kind = match kind {
                    0 => DeclKind::Local,
                    1 => DeclKind::Class,
                    _ => DeclKind::Imported,
                };
                Declaration::simple(format!("d{i}"), ty, kind).with_frequency((i as u64) * 17)
            })
            .collect()
    })
}

/// Byte-precise fingerprint of a query result: rendered and raw terms, the
/// exact weight bit patterns, and the cache-replayed search statistics.
fn result_key(result: &SynthesisResult) -> Vec<(String, String, u64, usize, usize)> {
    result
        .snippets
        .iter()
        .map(|s| {
            (
                s.term.to_string(),
                s.raw_term.to_string(),
                s.weight.value().to_bits(),
                s.depth,
                s.coercions,
            )
        })
        .collect()
}

fn stats_key(result: &SynthesisResult) -> (usize, usize, usize, usize, bool, bool) {
    (
        result.stats.requests_processed,
        result.stats.patterns,
        result.stats.reachability_terms,
        result.stats.reconstruction_steps,
        result.stats.astar,
        result.stats.truncated,
    )
}

fn arb_goal() -> impl Strategy<Value = Ty> {
    prop_oneof![
        prop::sample::select(BASE_TYPES.to_vec()).prop_map(Ty::base),
        (
            prop::sample::select(BASE_TYPES.to_vec()),
            prop::sample::select(BASE_TYPES.to_vec())
        )
            .prop_map(|(a, b)| Ty::fun(vec![Ty::base(a)], Ty::base(b))),
    ]
}

proptest! {
    // Deterministic CI: the case count and the RNG seed are pinned, so every
    // run generates the identical sequence of environments and goals. The
    // vendored proptest stand-in derives each case's stream from
    // (rng_seed, test name, case index) and keeps no failure-persistence
    // file, so there is nothing machine-local to flake on.
    #![proptest_config(ProptestConfig { cases: 48, rng_seed: 0x0001_5eed, ..ProptestConfig::default() })]

    #[test]
    fn every_synthesized_term_type_checks(env in arb_env(), goal in arb_goal()) {
        let config = SynthesisConfig::unbounded().with_max_depth(4);
        let result = Engine::new(config)
            .prepare(&env)
            .query(&Query::new(goal.clone()).with_n(50));
        let bindings = env.to_bindings();
        for snippet in &result.snippets {
            prop_assert!(check(&bindings, &snippet.raw_term, &goal).is_ok(),
                "term {} of weight {:?} does not check", snippet.raw_term, snippet.weight);
        }
    }

    #[test]
    fn ranking_is_sorted_by_weight(env in arb_env(), goal in arb_goal()) {
        let result = Engine::new(SynthesisConfig::default().with_max_depth(4))
            .prepare(&env)
            .query(&Query::new(goal.clone()).with_n(30));
        prop_assert!(result.snippets.windows(2).all(|w| w[0].weight <= w[1].weight));
    }

    #[test]
    fn engine_matches_rcn_up_to_depth_three(env in arb_env(), goal in arb_goal()) {
        let depth = 3;
        let reference: HashSet<Term> =
            rcn(&env, &goal, depth).iter().map(Term::alpha_normalize).collect();
        let config = SynthesisConfig::unbounded().with_max_depth(depth);
        let result = Engine::new(config)
            .prepare(&env)
            .query(&Query::new(goal.clone()).with_n(50_000));
        let engine: HashSet<Term> = result
            .snippets
            .iter()
            .map(|s| s.raw_term.alpha_normalize())
            .collect();
        prop_assert_eq!(engine, reference);
    }

    #[test]
    fn inhabitation_verdicts_agree_across_engine_reference_and_provers(
        env in arb_env(),
        goal in arb_goal(),
    ) {
        let expected = is_inhabited_ref(&env, &goal);

        let session = Engine::new(SynthesisConfig::default()).prepare(&env);
        prop_assert_eq!(session.is_inhabited(&goal), expected);

        let (hyps, formula) = inhabitation_query(&env, &goal);
        let limits = ProverLimits::default();
        prop_assert_eq!(forward::prove(&hyps, &formula, &limits), Some(expected));
        prop_assert_eq!(g4ip::prove(&hyps, &formula, &limits), Some(expected));
    }

    #[test]
    fn sigma_ignores_argument_order_and_duplicates(args in vec(arb_ty(), 1..4), ret in prop::sample::select(BASE_TYPES.to_vec())) {
        let mut store = SuccinctStore::new();
        let forward_ty = Ty::fun(args.clone(), Ty::base(ret));
        let mut reversed_args = args.clone();
        reversed_args.reverse();
        let mut duplicated = args.clone();
        duplicated.extend(args.clone());
        let reversed_ty = Ty::fun(reversed_args, Ty::base(ret));
        let duplicated_ty = Ty::fun(duplicated, Ty::base(ret));

        let a = store.sigma(&forward_ty);
        let b = store.sigma(&reversed_ty);
        let c = store.sigma(&duplicated_ty);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, c);
    }

    #[test]
    fn graph_walk_is_byte_identical_to_unindexed_reconstruction(env in arb_env(), goal in arb_goal()) {
        // The tentpole contract: compiling the pattern set into a derivation
        // graph and walking it must return exactly the RankedTerm list of the
        // pre-refactor pipeline — same terms, same order, same weight bits.
        use insynth::succinct::TypeStore;

        let weights = WeightConfig::default();
        let prepared = std::sync::Arc::new(PreparedEnv::prepare(&env, &weights));
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let limits = GenerateLimits { max_depth: Some(4), ..GenerateLimits::default() };

        let reference = generate_terms_unindexed(
            &prepared, &mut store, &patterns, &env, &weights, &goal, 64, &limits,
        );
        let graph = DerivationGraph::build(&prepared, &mut store, &patterns, &env, &weights, &goal);
        let walked = generate_terms(&graph, &env, 64, &limits);

        let key = |terms: &[insynth::core::RankedTerm]| -> Vec<(String, u64)> {
            terms
                .iter()
                .map(|r| (r.term.to_string(), r.weight.value().to_bits()))
                .collect()
        };
        prop_assert_eq!(key(&walked.terms), key(&reference.terms));
    }

    #[test]
    fn astar_fallback_matches_unindexed_under_negative_weight_overrides(
        env in arb_env(),
        goal in arb_goal(),
    ) {
        // Negative overrides break weight monotonicity: the graph must skip
        // the heuristic, fall back to the plain best-first walk, and still
        // match the unindexed oracle byte for byte.
        use insynth::succinct::TypeStore;

        let env: TypeEnv = env
            .iter()
            .enumerate()
            .map(|(i, decl)| {
                let decl = decl.clone();
                if i % 3 == 0 {
                    decl.with_weight(-1.5 - i as f64)
                } else {
                    decl
                }
            })
            .collect();
        let weights = WeightConfig::default();
        let prepared = std::sync::Arc::new(PreparedEnv::prepare(&env, &weights));
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let limits = GenerateLimits { max_depth: Some(3), ..GenerateLimits::default() };

        let reference = generate_terms_unindexed(
            &prepared, &mut store, &patterns, &env, &weights, &goal, 32, &limits,
        );
        let graph = DerivationGraph::build(&prepared, &mut store, &patterns, &env, &weights, &goal);
        prop_assert!(!graph.has_heuristic(), "negative overrides must disable the heuristic");
        let walked = generate_terms(&graph, &env, 32, &limits);
        prop_assert!(!walked.astar);

        let key = |terms: &[insynth::core::RankedTerm]| -> Vec<(String, u64)> {
            terms
                .iter()
                .map(|r| (r.term.to_string(), r.weight.value().to_bits()))
                .collect()
        };
        prop_assert_eq!(key(&walked.terms), key(&reference.terms));
    }

    #[test]
    fn graph_walk_matches_unindexed_for_tiny_n(
        env in arb_env(),
        goal in arb_goal(),
        n in 0usize..2,
    ) {
        // The degenerate request sizes: n = 0 must short-circuit identically,
        // n = 1 exercises the branch-and-bound from the very first candidate.
        use insynth::succinct::TypeStore;

        let weights = WeightConfig::default();
        let prepared = std::sync::Arc::new(PreparedEnv::prepare(&env, &weights));
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let limits = GenerateLimits { max_depth: Some(4), ..GenerateLimits::default() };

        let reference = generate_terms_unindexed(
            &prepared, &mut store, &patterns, &env, &weights, &goal, n, &limits,
        );
        let graph = DerivationGraph::build(&prepared, &mut store, &patterns, &env, &weights, &goal);
        let walked = generate_terms(&graph, &env, n, &limits);

        let key = |terms: &[insynth::core::RankedTerm]| -> Vec<(String, u64)> {
            terms
                .iter()
                .map(|r| (r.term.to_string(), r.weight.value().to_bits()))
                .collect()
        };
        prop_assert_eq!(key(&walked.terms), key(&reference.terms));
        prop_assert!(walked.terms.len() <= n);
    }

    #[test]
    fn frontier_truncated_walk_emits_a_sorted_subset_of_the_enumeration(
        env in arb_env(),
        goal in arb_goal(),
    ) {
        // A tiny frontier cap drops successors, so the truncated walk cannot
        // promise the reference's exact list — but everything it does emit
        // must be a genuine member of the (untruncated) enumeration, with its
        // exact weight, in ascending weight order.
        use insynth::succinct::TypeStore;
        use std::collections::HashSet;

        let weights = WeightConfig::default();
        let prepared = std::sync::Arc::new(PreparedEnv::prepare(&env, &weights));
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        let graph = DerivationGraph::build(&prepared, &mut store, &patterns, &env, &weights, &goal);

        let full_limits = GenerateLimits { max_depth: Some(3), ..GenerateLimits::default() };
        let full = generate_terms(&graph, &env, 10_000, &full_limits);
        let full_set: HashSet<(String, u64)> = full
            .terms
            .iter()
            .map(|r| (r.term.to_string(), r.weight.value().to_bits()))
            .collect();

        let tiny_limits = GenerateLimits {
            max_depth: Some(3),
            max_frontier: 3,
            ..GenerateLimits::default()
        };
        let truncated = generate_terms(&graph, &env, 10_000, &tiny_limits);
        prop_assert!(truncated.terms.len() <= full.terms.len());
        for window in truncated.terms.windows(2) {
            prop_assert!(window[0].weight <= window[1].weight);
        }
        for ranked in &truncated.terms {
            prop_assert!(
                full_set.contains(&(ranked.term.to_string(), ranked.weight.value().to_bits())),
                "truncated walk emitted {} which the full enumeration never produces",
                ranked.term
            );
        }
    }

    #[test]
    fn equal_fingerprints_share_preparation_and_answer_byte_identically(
        env in arb_env(),
        goal in arb_goal(),
        rotation in 0usize..8,
    ) {
        // The content-addressing contract: structurally equal environments
        // (here: a rotation of the declaration list) fingerprint equal, σ
        // runs once, the derivation graph is built once, and every session
        // answers byte-identically — weight bits included.
        let config = SynthesisConfig::unbounded().with_max_depth(3);
        let decls: Vec<Declaration> = env.iter().cloned().collect();
        let k = rotation % decls.len().max(1);
        let rotated: TypeEnv = decls[k..].iter().chain(&decls[..k]).cloned().collect();

        let engine = Engine::new(config);
        prop_assert_eq!(engine.fingerprint(&env), engine.fingerprint(&rotated));

        let canonical = engine.prepare(&env);
        let permuted = engine.prepare(&rotated);
        prop_assert_eq!(engine.prepare_count(), 1, "one σ run for both points");
        prop_assert_eq!(canonical.fingerprint(), permuted.fingerprint());

        let query = Query::new(goal).with_n(32);
        let from_canonical = canonical.query(&query);
        let from_permuted = permuted.query(&query);
        prop_assert_eq!(engine.graph_build_count(), 1, "one graph for both points");
        prop_assert_eq!(result_key(&from_canonical), result_key(&from_permuted));
        prop_assert_eq!(stats_key(&from_canonical), stats_key(&from_permuted));
    }

    #[test]
    fn session_update_is_byte_identical_to_fresh_preparation(
        env in arb_env(),
        goal in arb_goal(),
        adds in vec((arb_ty(), 0u8..3), 0..3),
        removes in vec(0usize..8, 0..2),
        reweights in vec((0usize..8, 0u32..88), 0..3),
    ) {
        // The delta contract: updating a warm session must answer exactly
        // like an independent engine preparing the edited environment from
        // scratch — including negative reweights, which flip the walk into
        // its best-first fallback, and removals, which take the
        // fresh-prepare fallback internally.
        let config = SynthesisConfig::unbounded().with_max_depth(3);
        let engine = Engine::new(config.clone());
        let session = engine.prepare(&env);
        // Warm the artifact cache so update() has something to carry over
        // or invalidate.
        let query = Query::new(goal).with_n(24);
        let _ = session.query(&query);

        let mut delta = EnvDelta::new();
        for (i, (ty, kind)) in adds.into_iter().enumerate() {
            let kind = match kind {
                0 => DeclKind::Local,
                1 => DeclKind::Class,
                _ => DeclKind::Imported,
            };
            delta = delta.add(Declaration::simple(format!("new{i}"), ty, kind));
        }
        for idx in removes {
            delta = delta.remove(env.decls()[idx % env.len()].name.clone());
        }
        for (idx, weight) in reweights {
            // Mapped to the -4.0..40.0 range, negatives included (they flip
            // the monotonicity regime and force the best-first fallback).
            delta = delta.reweight(
                env.decls()[idx % env.len()].name.clone(),
                f64::from(weight) / 2.0 - 4.0,
            );
        }

        let edited = delta.apply(session.env());
        // Adversarial seeding: the engine may already hold a *permuted*
        // ordering of the edited environment. Equal-weight ties emit in
        // declaration order, so update must prepare the edited list itself
        // rather than adopt the permuted canonical point.
        if edited.len() > 1 {
            let rotated: TypeEnv = edited.decls()[1..]
                .iter()
                .chain(&edited.decls()[..1])
                .cloned()
                .collect();
            let _ = engine.prepare(&rotated);
        }

        let updated = session.update(&delta);
        let fresh = Engine::new(config).prepare(&edited);
        prop_assert_eq!(updated.fingerprint(), fresh.fingerprint());

        let from_updated = updated.query(&query);
        let from_fresh = fresh.query(&query);
        prop_assert_eq!(result_key(&from_updated), result_key(&from_fresh));
        prop_assert_eq!(stats_key(&from_updated), stats_key(&from_fresh));
    }

    #[test]
    fn resumed_pagination_is_byte_identical_to_one_shot_query(
        env in arb_env(),
        goal in arb_goal(),
        a in 0usize..10,
        b in 0usize..10,
        negative in 0u8..2,
    ) {
        // The resume contract: query(n=a) followed by query(n=a+b) on the
        // same session — which resumes the suspended walk and pops only the
        // delta — must answer exactly like a cold engine asking n=a+b in one
        // shot. Byte-identical terms and weights, and identical *cumulative*
        // search statistics, across random environments, random split
        // points, and both walk regimes (A* and, under negative weight
        // overrides, the non-monotone best-first fallback).
        let env: TypeEnv = if negative == 1 {
            env.iter()
                .enumerate()
                .map(|(i, decl)| {
                    let decl = decl.clone();
                    if i % 3 == 0 { decl.with_weight(-1.5 - i as f64) } else { decl }
                })
                .collect()
        } else {
            env
        };
        let config = SynthesisConfig::unbounded().with_max_depth(3);
        let query = |n: usize| Query::new(goal.clone()).with_n(n);

        let engine = Engine::new(config.clone());
        let session = engine.prepare(&env);
        let first = session.query(&query(a));
        prop_assert!(!first.stats.resumed);
        let resumed = session.query(&query(a + b));
        prop_assert!(resumed.stats.resumed, "the second query must resume the parked walk");
        prop_assert_eq!(engine.graph_build_count(), 1, "resume must not rebuild the graph");

        let oneshot = Engine::new(config).prepare(&env).query(&query(a + b));
        prop_assert!(!oneshot.stats.resumed);
        prop_assert_eq!(result_key(&resumed), result_key(&oneshot));
        prop_assert_eq!(stats_key(&resumed), stats_key(&oneshot));
        prop_assert_eq!(resumed.stats.has_more, oneshot.stats.has_more);
        if negative == 1 {
            prop_assert!(!resumed.stats.astar, "negative overrides must exercise the fallback");
        }

        // The first page is a prefix of the one-shot enumeration.
        let prefix_len = first.snippets.len();
        prop_assert_eq!(result_key(&first), result_key(&oneshot)[..prefix_len].to_vec());
    }

    #[test]
    fn no_weights_mode_finds_a_superset_of_goals(env in arb_env(), goal in arb_goal()) {
        // Whether *some* snippet exists must not depend on the weight mode.
        use insynth::core::WeightMode;
        let full = Engine::new(SynthesisConfig::unbounded().with_max_depth(3))
            .prepare(&env)
            .query(&Query::new(goal.clone()).with_n(1000));
        let none = Engine::new(
            SynthesisConfig::unbounded()
                .with_max_depth(3)
                .with_weights(WeightConfig::new(WeightMode::NoWeights)),
        )
        .prepare(&env)
        .query(&Query::new(goal.clone()).with_n(1000));
        prop_assert_eq!(full.snippets.is_empty(), none.snippets.is_empty());
    }
}

/// Deterministic companion to the frontier proptest: a frontier cap of one
/// entry on the `a : A, s : A → A` chain forces truncation immediately, and
/// the walk still drains what it managed to enqueue.
#[test]
fn frontier_cap_of_one_truncates_but_still_emits_enqueued_terms() {
    use insynth::succinct::TypeStore;

    let env: TypeEnv = vec![
        Declaration::simple("a", Ty::base("A"), DeclKind::Local),
        Declaration::simple(
            "s",
            Ty::fun(vec![Ty::base("A")], Ty::base("A")),
            DeclKind::Local,
        ),
    ]
    .into_iter()
    .collect();
    let goal = Ty::base("A");
    let weights = WeightConfig::default();
    let prepared = std::sync::Arc::new(PreparedEnv::prepare(&env, &weights));
    let mut store = prepared.scratch();
    let goal_succ = store.sigma(&goal);
    let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
    let patterns = generate_patterns(&mut store, &space);
    let graph = DerivationGraph::build(&prepared, &mut store, &patterns, &env, &weights, &goal);

    let limits = GenerateLimits {
        max_frontier: 1,
        ..GenerateLimits::default()
    };
    let outcome = generate_terms(&graph, &env, 10, &limits);
    assert!(outcome.truncated, "a one-entry frontier must truncate");
    // The root expansion enqueues `a` (weight 5) and then hits the cap before
    // `s([])`; the drain still emits the enqueued completion.
    let rendered: Vec<String> = outcome.terms.iter().map(|r| r.term.to_string()).collect();
    assert_eq!(rendered, vec!["a"]);

    // The unindexed reference behaves identically under the same cap.
    let reference = generate_terms_unindexed(
        &prepared, &mut store, &patterns, &env, &weights, &goal, 10, &limits,
    );
    assert!(reference.truncated);
    let reference_rendered: Vec<String> =
        reference.terms.iter().map(|r| r.term.to_string()).collect();
    assert_eq!(reference_rendered, rendered);
}
