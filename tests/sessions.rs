//! Integration tests of the session API: prepare once / query many, batched
//! execution, and concurrent use of a shared session.
//!
//! The determinism contract under test: `Engine::query_batch` must return,
//! in input order, results byte-identical to running every query sequentially
//! through `Session::query`, no matter how the thread pool schedules them;
//! and a single `Arc<Session>` must serve identical answers from any number
//! of threads.

use std::sync::Arc;
use std::thread;

use insynth::apimodel::{extract, javaapi, ProgramPoint};
use insynth::core::{
    BatchRequest, DeclKind, Declaration, Engine, EnvDelta, Query, Session, SynthesisConfig,
    SynthesisResult, TypeEnv,
};
use insynth::corpus::synthetic_corpus;
use insynth::lambda::Ty;

fn motivating_env(point: ProgramPoint) -> TypeEnv {
    let model = javaapi::standard_model();
    let mut env = extract(&model, &point);
    let corpus = synthetic_corpus(&model, 42);
    corpus.apply(&mut env);
    env
}

fn io_point_env() -> TypeEnv {
    motivating_env(
        ProgramPoint::new()
            .with_local("body", Ty::base("String"))
            .with_local("sig", Ty::base("String"))
            .with_import("java.io")
            .with_import("java.lang"),
    )
}

fn tree_point_env() -> TypeEnv {
    motivating_env(
        ProgramPoint::new()
            .with_local("tree", Ty::base("Tree"))
            .with_local("p", Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")))
            .with_import("scala.tools.eclipse.javaelements")
            .with_import("java.lang"),
    )
}

fn tiny_env() -> TypeEnv {
    vec![
        Declaration::simple("a", Ty::base("A"), DeclKind::Local),
        Declaration::simple(
            "s",
            Ty::fun(vec![Ty::base("A")], Ty::base("A")),
            DeclKind::Local,
        ),
    ]
    .into_iter()
    .collect()
}

/// Byte-precise fingerprint of a result: rendered terms, raw terms, and the
/// exact bit patterns of the ranking weights.
fn fingerprint(result: &SynthesisResult) -> Vec<(String, String, u64, usize, usize)> {
    result
        .snippets
        .iter()
        .map(|s| {
            (
                s.term.to_string(),
                s.raw_term.to_string(),
                s.weight.value().to_bits(),
                s.depth,
                s.coercions,
            )
        })
        .collect()
}

#[test]
fn session_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<Engine>();
    assert_send_sync::<Arc<Session>>();
}

#[test]
fn query_batch_matches_sequential_queries_over_mixed_environments() {
    let engine = Engine::new(SynthesisConfig::default());
    let io = io_point_env();
    let tree = tree_point_env();
    let tiny = tiny_env();

    // Mixed program points, interleaved, with repeated points and varying N —
    // the grouping must prepare each distinct point once and still return
    // results in input order.
    let requests = vec![
        BatchRequest::new(
            io.clone(),
            Query::new(Ty::base("SequenceInputStream")).with_n(10),
        ),
        BatchRequest::new(tiny.clone(), Query::new(Ty::base("A")).with_n(7)),
        BatchRequest::new(
            tree.clone(),
            Query::new(Ty::base("FilterTypeTreeTraverser")).with_n(5),
        ),
        BatchRequest::new(io.clone(), Query::new(Ty::base("BufferedReader")).with_n(8)),
        BatchRequest::new(
            tiny.clone(),
            Query::new(Ty::base("A")).with_n(3).with_max_depth(2),
        ),
        BatchRequest::new(
            io.clone(),
            Query::new(Ty::base("FileInputStream")).with_n(4),
        ),
        BatchRequest::new(tree.clone(), Query::new(Ty::base("Boolean")).with_n(6)),
    ];

    let batched = engine.query_batch(&requests);
    assert_eq!(batched.len(), requests.len());

    for (i, request) in requests.iter().enumerate() {
        let sequential = engine.prepare(&request.env).query(&request.query);
        assert_eq!(
            fingerprint(&batched[i]),
            fingerprint(&sequential),
            "batched result {i} diverged from the sequential query"
        );
    }

    // Re-running the batch is deterministic too.
    let again = engine.query_batch(&requests);
    for (first, second) in batched.iter().zip(&again) {
        assert_eq!(fingerprint(first), fingerprint(second));
    }
}

#[test]
fn one_arc_session_serves_identical_results_from_many_threads() {
    let engine = Engine::new(SynthesisConfig::default());
    let session = Arc::new(engine.prepare(&io_point_env()));

    let reference = session.query(&Query::new(Ty::base("SequenceInputStream")).with_n(10));
    let expected = fingerprint(&reference);

    let handles: Vec<_> = (0..6)
        .map(|worker| {
            let session = Arc::clone(&session);
            thread::spawn(move || {
                // Each thread issues several queries, including a goal of its
                // own, to interleave scratch interning across threads.
                let shared = session.query(&Query::new(Ty::base("SequenceInputStream")).with_n(10));
                let own_goal = if worker % 2 == 0 {
                    Ty::base("BufferedReader")
                } else {
                    Ty::base("FileInputStream")
                };
                let own = session.query(&Query::new(own_goal).with_n(5));
                (fingerprint(&shared), fingerprint(&own))
            })
        })
        .collect();

    for handle in handles {
        let (shared, own) = handle.join().expect("worker thread must not panic");
        assert_eq!(shared, expected, "concurrent query diverged");
        assert!(!own.is_empty());
    }
}

#[test]
fn batch_with_a_single_request_equals_the_direct_query() {
    let engine = Engine::new(SynthesisConfig::default());
    let env = tiny_env();
    let query = Query::new(Ty::base("A")).with_n(4);
    let batched = engine.query_batch(&[BatchRequest::new(env.clone(), query.clone())]);
    let direct = engine.prepare(&env).query(&query);
    assert_eq!(fingerprint(&batched[0]), fingerprint(&direct));
}

#[test]
fn repeated_queries_reuse_the_cached_graph_and_return_identical_results() {
    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&io_point_env());
    assert_eq!(session.cached_graph_count(), 0);

    let query = Query::new(Ty::base("SequenceInputStream")).with_n(10);
    let first = session.query(&query);
    assert_eq!(
        session.cached_graph_count(),
        1,
        "first query builds the graph"
    );
    let second = session.query(&query);
    assert_eq!(session.cached_graph_count(), 1, "repeat query reuses it");

    // Identical snippets, weights and search statistics on the cached path.
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert_eq!(
        first.stats.requests_processed,
        second.stats.requests_processed
    );
    assert_eq!(first.stats.patterns, second.stats.patterns);
    assert_eq!(
        first.stats.reconstruction_steps,
        second.stats.reconstruction_steps
    );

    // A different n on the same goal shares the graph and returns a prefix.
    let top3 = session.query(&Query::new(Ty::base("SequenceInputStream")).with_n(3));
    assert_eq!(session.cached_graph_count(), 1);
    assert_eq!(fingerprint(&top3), fingerprint(&first)[..3].to_vec());

    // A new goal builds (and caches) its own graph.
    let _ = session.query(&Query::new(Ty::base("BufferedReader")).with_n(5));
    assert_eq!(session.cached_graph_count(), 2);
}

#[test]
fn structurally_equal_points_share_preparation_and_graphs_across_a_batch() {
    // The cross-point contract at paper scale: a batch over clones and a
    // permutation of one program point runs σ once and builds each queried
    // goal's graph once, while answering byte-identically to sequential
    // queries.
    let engine = Engine::new(SynthesisConfig::default());
    let env = io_point_env();
    let reversed: TypeEnv = env.iter().rev().cloned().collect();

    let goal = || Query::new(Ty::base("SequenceInputStream")).with_n(10);
    let requests = vec![
        BatchRequest::new(env.clone(), goal()),
        BatchRequest::new(reversed.clone(), goal()),
        BatchRequest::new(env.clone(), goal()),
        BatchRequest::new(env.clone(), goal().with_n(4)),
    ];
    let batched = engine.query_batch(&requests);

    assert_eq!(engine.prepare_count(), 1, "one σ run for four requests");
    assert_eq!(
        engine.graph_build_count(),
        1,
        "one derivation graph for four requests over one goal"
    );
    for result in &batched[1..3] {
        assert_eq!(fingerprint(result), fingerprint(&batched[0]));
    }
    assert_eq!(fingerprint(&batched[3]), fingerprint(&batched[0])[..4]);

    // Sequential preparation of the permuted environment also reuses the
    // canonical point.
    let session = engine.prepare(&reversed);
    assert_eq!(engine.prepare_count(), 1);
    assert_eq!(
        fingerprint(&session.query(&goal())),
        fingerprint(&batched[0])
    );
}

#[test]
fn interactive_edit_loop_updates_incrementally_and_matches_fresh_preparation() {
    // The paper's interactive loop: prepare, query, the user edits, query
    // again. The updated session must answer exactly like a from-scratch
    // preparation of the edited environment.
    let engine = Engine::new(SynthesisConfig::default());
    let env = io_point_env();
    let session = engine.prepare(&env);
    let query = Query::new(Ty::base("SequenceInputStream")).with_n(10);
    let before = session.query(&query);

    // Edit 1: a new String local appears (its type is already in Γ).
    let delta = EnvDelta::new().add(Declaration::simple(
        "header",
        Ty::base("String"),
        DeclKind::Local,
    ));
    let edited_session = session.update(&delta);
    let after = edited_session.query(&query);
    // The new local is cheap and shows up in the suggestions.
    assert!(
        after
            .snippets
            .iter()
            .any(|s| s.term.to_string().contains("header")),
        "the added local must appear in the edited point's suggestions"
    );

    let fresh = Engine::new(SynthesisConfig::default())
        .prepare(&delta.apply(session.env()))
        .query(&query);
    assert_eq!(fingerprint(&after), fingerprint(&fresh));

    // Edit 2: remove it again — the session round-trips back to the
    // original point's fingerprint and results.
    let back = edited_session.update(&EnvDelta::new().remove("header"));
    assert_eq!(back.fingerprint(), session.fingerprint());
    assert_eq!(fingerprint(&back.query(&query)), fingerprint(&before));

    // The original session was never disturbed.
    assert_eq!(fingerprint(&session.query(&query)), fingerprint(&before));
}

#[test]
fn prepare_time_is_paid_once_per_session() {
    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&io_point_env());
    let prepare_once = session.prepare_time();

    // Many queries later, the session reports the same one-off prepare cost.
    for _ in 0..3 {
        let _ = session.query(&Query::new(Ty::base("FileInputStream")).with_n(5));
    }
    assert_eq!(session.prepare_time(), prepare_once);
}

#[test]
fn sessions_prepared_from_one_engine_are_independent() {
    let engine = Engine::new(SynthesisConfig::default());
    let io = engine.prepare(&io_point_env());
    let tiny = engine.prepare(&tiny_env());

    let io_result = io.query(&Query::new(Ty::base("FileInputStream")).with_n(5));
    let tiny_result = tiny.query(&Query::new(Ty::base("A")).with_n(5));

    assert!(io_result
        .snippets
        .iter()
        .any(|s| s.term.to_string().contains("FileInputStream")));
    assert_eq!(tiny_result.snippets[0].term.to_string(), "a");
    // Distinct program points, distinct prepared sizes.
    assert_ne!(
        io_result.stats.initial_declarations,
        tiny_result.stats.initial_declarations
    );
}

#[test]
fn growing_n_resumes_the_suspended_walk_without_replaying() {
    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&io_point_env());
    let query = |n| Query::new(Ty::base("SequenceInputStream")).with_n(n);

    let ten = session.query(&query(10));
    assert!(!ten.stats.resumed, "first query starts from scratch");
    assert_eq!(
        ten.stats.reconstruction_new_steps,
        ten.stats.reconstruction_steps
    );
    assert!(
        ten.stats.has_more,
        "the IO point offers more than ten terms"
    );
    assert_eq!(engine.suspended_walk_count(), 1);

    let twenty = session.query(&query(20));
    assert!(
        twenty.stats.resumed,
        "the grown query resumes the parked walk"
    );
    assert_eq!(engine.graph_build_count(), 1, "resume rebuilds nothing");
    assert!(
        twenty.stats.reconstruction_new_steps < twenty.stats.reconstruction_steps,
        "a resumed walk pays only the delta"
    );

    // Byte-identical to a from-scratch n=20 on a cold engine, cumulative
    // search statistics included.
    let scratch = Engine::new(SynthesisConfig::default())
        .prepare(&io_point_env())
        .query(&query(20));
    assert!(!scratch.stats.resumed);
    assert_eq!(fingerprint(&twenty), fingerprint(&scratch));
    assert_eq!(
        twenty.stats.reconstruction_steps,
        scratch.stats.reconstruction_steps
    );
    assert_eq!(fingerprint(&ten), fingerprint(&scratch)[..10].to_vec());
}

#[test]
fn term_streams_paginate_deterministically_and_match_query() {
    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&io_point_env());
    let query = Query::new(Ty::base("SequenceInputStream")).with_n(4);

    let first: Vec<_> = session.query_stream(&query).take(4).collect();
    assert_eq!(first.len(), 4);

    // A second stream resumes the suspended walk and replays the identical
    // prefix; dropping streams mid-iteration never perturbs later answers.
    let mut second_stream = session.query_stream(&query);
    assert!(second_stream.resumed());
    assert!(second_stream.has_more());
    let second: Vec<_> = second_stream.by_ref().take(4).collect();
    assert_eq!(first, second);
    assert!(
        second_stream.has_more(),
        "the IO point offers more than four terms"
    );
    drop(second_stream);

    // The classic API sees the same terms, weights and order.
    let result = session.query(&query);
    assert_eq!(result.snippets.len(), 4);
    for (ranked, snippet) in first.iter().zip(&result.snippets) {
        assert_eq!(ranked.term.to_string(), snippet.raw_term.to_string());
        assert_eq!(
            ranked.weight.value().to_bits(),
            snippet.weight.value().to_bits()
        );
    }
    assert!(result.stats.resumed);
    assert_eq!(
        result.stats.reconstruction_new_steps, 0,
        "a fully warmed walk serves n=4 from its emission log"
    );
}

#[test]
fn unrelated_edit_carries_the_suspended_walk_across_update() {
    let mut env = tiny_env();
    env.push(Declaration::simple(
        "gadget",
        Ty::base("Gadget"),
        DeclKind::Local,
    ));
    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&env);
    let query = Query::new(Ty::base("A")).with_n(6);
    let before = session.query(&query);
    assert!(!before.stats.resumed);
    assert_eq!(engine.graph_build_count(), 1);
    assert_eq!(engine.suspended_walk_count(), 1);

    // Appending another Gadget cannot reach the A-walk: the A exploration
    // never requests Gadget, so the graph — suspended walk included —
    // carries over to the edited point.
    let delta = EnvDelta::new().add(Declaration::simple(
        "gadget2",
        Ty::base("Gadget"),
        DeclKind::Imported,
    ));
    let updated = session.update(&delta);
    let after = updated.query(&query);
    assert_eq!(engine.graph_build_count(), 1, "graph carried, not rebuilt");
    assert!(
        after.stats.resumed,
        "the suspended walk rode along with the carried graph"
    );
    assert_eq!(
        after.stats.reconstruction_new_steps, 0,
        "same n: the resumed walk serves its emission log without popping"
    );
    assert_eq!(fingerprint(&after), fingerprint(&before));

    // Identical to a fresh preparation of the edited environment.
    let fresh = Engine::new(SynthesisConfig::default())
        .prepare(&delta.apply(session.env()))
        .query(&query);
    assert_eq!(fingerprint(&after), fingerprint(&fresh));
}

#[test]
fn reaching_edit_drops_the_suspended_walk() {
    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&tiny_env());
    let query = Query::new(Ty::base("A")).with_n(5);
    let before = session.query(&query);
    assert_eq!(engine.graph_build_count(), 1);
    assert_eq!(engine.suspended_walk_count(), 1);

    // A new producer of the walk's goal type reaches the graph: the edited
    // session must rebuild and must NOT resume the stale frontier.
    let delta = EnvDelta::new().add(Declaration::simple(
        "t",
        Ty::fun(vec![Ty::base("A")], Ty::base("A")),
        DeclKind::Local,
    ));
    let updated = session.update(&delta);
    let after = updated.query(&query);
    assert_eq!(
        engine.graph_build_count(),
        2,
        "the reaching edit forces a rebuild"
    );
    assert!(
        !after.stats.resumed,
        "no stale resume across a reaching edit"
    );
    let fresh = Engine::new(SynthesisConfig::default())
        .prepare(&delta.apply(session.env()))
        .query(&query);
    assert_eq!(fingerprint(&after), fingerprint(&fresh));
    assert_ne!(
        fingerprint(&after),
        fingerprint(&before),
        "the new producer changes the suggestions"
    );

    // The original session's walk is untouched and still resumes.
    let again = session.query(&query);
    assert!(again.stats.resumed);
    assert_eq!(fingerprint(&again), fingerprint(&before));
}
