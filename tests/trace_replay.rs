//! Property tests for the editor-trace replay harness.
//!
//! These pin the determinism contract of the trace subsystem on arbitrary
//! generator knobs:
//!
//! * generation — the same seed and knobs always yield a byte-identical
//!   trace, and the text codec round-trips every generated trace exactly,
//! * replay identity — replaying a trace through the library path
//!   (`Engine`/`Session` calls), the live server path (`handle_line` per
//!   event), and a scripted-server transcript (`serve_script` over the
//!   rendered request lines) produces the same result digest and, at one
//!   worker, the same engine counters — including traces whose updates
//!   remove declarations, which exercise the fresh-prepare fallback,
//! * schedule independence — adding workers changes only the interleaving,
//!   never the digest or the completion counts.

use proptest::prelude::*;

use insynth::bench::replay::{
    digest_responses, render_server_script, replay_config, replay_library, replay_server,
    replay_server_config, trace_environment,
};
use insynth::core::Engine;
use insynth::corpus::trace::{generate_trace, Trace, TraceEnvSpec, TraceGenConfig};
use insynth::server::{serve_script, Server};

/// Random generator knobs over the small Figure-1 environment (filler 0, so
/// each replay case stays fast). Fractions are drawn as integer percentages
/// because the vendored proptest stand-in only implements range strategies
/// for unsigned integers; `remove_fraction` ranges up to 90% so a healthy
/// share of cases drive the removal (fresh-prepare) path.
fn arb_gen_config() -> impl Strategy<Value = TraceGenConfig> {
    (
        (1u64..1_000_000, 1u32..6, 40u64..140, 1u32..5),
        (0u32..41, 0u32..91, 0u32..51, 0u32..11),
        (60u32..220, 1usize..8),
    )
        .prop_map(
            |(
                (seed, points, events, burst),
                (update_pct, remove_pct, page_pct, close_pct),
                (zipf_centi, max_n),
            )| TraceGenConfig {
                seed,
                points,
                events,
                env: TraceEnvSpec::Figure1 { filler: 0 },
                zipf_exponent: f64::from(zipf_centi) / 100.0,
                update_fraction: f64::from(update_pct) / 100.0,
                remove_fraction: f64::from(remove_pct) / 100.0,
                page_fraction: f64::from(page_pct) / 100.0,
                close_fraction: f64::from(close_pct) / 100.0,
                burst,
                max_n,
                ..TraceGenConfig::default()
            },
        )
}

proptest! {
    // Deterministic CI, same contract as tests/properties.rs: pinned case
    // count and RNG seed, so every run replays the identical knob sequence.
    #![proptest_config(ProptestConfig { cases: 40, rng_seed: 0x7ace_5eed, ..ProptestConfig::default() })]

    /// The generator is a pure function of its config, and the text codec
    /// loses nothing: parse(to_text(t)) == t, byte-for-byte on re-render.
    #[test]
    fn generation_is_deterministic_and_text_codec_roundtrips(config in arb_gen_config()) {
        let trace = generate_trace(&config);
        let again = generate_trace(&config);
        prop_assert_eq!(&trace, &again);
        let text = trace.to_text();
        prop_assert_eq!(&again.to_text(), &text);

        let parsed = Trace::parse(&text)
            .unwrap_or_else(|e| panic!("generated trace failed to parse: {e}"));
        prop_assert_eq!(&parsed, &trace);
        prop_assert_eq!(parsed.to_text(), text);

        // The summary agrees with the event list it was computed from.
        let summary = trace.summary();
        prop_assert_eq!(summary.events as u64, config.events);
        prop_assert!(summary.points <= config.points as usize);
    }
}

proptest! {
    // Replay cases each run the full trace three ways against real engines,
    // so the case count stays low; the knob strategy above still covers
    // removal-heavy and page-heavy mixes within these cases.
    #![proptest_config(ProptestConfig { cases: 8, rng_seed: 0x7ace_5eed, ..ProptestConfig::default() })]

    /// One trace, three execution paths, one digest: direct library calls,
    /// the live server loop, and a pre-rendered scripted transcript all
    /// produce identical result digests, and at one worker the engine
    /// counters (prepares, graph builds) match across paths exactly.
    #[test]
    fn replay_paths_digest_identically(config in arb_gen_config()) {
        let trace = generate_trace(&config);
        let ambient = trace_environment(trace.env);

        let lib = replay_library(&trace, &ambient, 1);
        prop_assert_eq!(lib.errors, 0, "library replay hit errors");

        let srv = replay_server(&trace, &ambient, 1);
        prop_assert_eq!(srv.errors, 0, "server replay hit errors");
        prop_assert_eq!(&srv.digest_hex(), &lib.digest_hex());
        prop_assert_eq!(srv.completions, lib.completions);
        prop_assert_eq!(srv.values, lib.values);
        prop_assert_eq!(srv.prepares, lib.prepares);
        prop_assert_eq!(srv.graph_builds, lib.graph_builds);

        // Scripted transcript: render every request up front, feed the batch
        // through `serve_script`, digest the response lines.
        let script = render_server_script(&trace, &ambient);
        let server = Server::new(Engine::new(replay_config(&trace)), replay_server_config(&trace));
        let responses = serve_script(&server, &script);
        let digest = digest_responses(&trace, &responses).expect("transcript digests cleanly");
        prop_assert_eq!(format!("{digest:016x}"), lib.digest_hex());

        // Re-running the library path is byte-identical down to the
        // counters-only JSON report.
        let again = replay_library(&trace, &ambient, 1);
        prop_assert_eq!(again.to_json(true), lib.to_json(true));

        // Extra workers reshuffle the schedule, never the answers.
        let wide = replay_library(&trace, &ambient, 2);
        prop_assert_eq!(wide.digest_hex(), lib.digest_hex());
        prop_assert_eq!(wide.completions, lib.completions);
        prop_assert_eq!(wide.values, lib.values);
    }
}
