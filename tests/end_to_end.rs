//! Cross-crate integration tests: API model → engine → renderer on the
//! paper's motivating examples, plus completeness and prover cross-checks.

use insynth::apimodel::{extract, javaapi, render_snippet, ProgramPoint};
use insynth::core::{
    is_inhabited_ref, rcn, DeclKind, Declaration, Engine, Query, SynthesisConfig, TypeEnv,
};
use insynth::corpus::synthetic_corpus;
use insynth::lambda::{Term, Ty};
use insynth::provers::{forward, g4ip, inhabitation_query, ProverLimits};
use std::collections::HashSet;

fn motivating_env(point: ProgramPoint) -> TypeEnv {
    let model = javaapi::standard_model();
    let mut env = extract(&model, &point);
    let corpus = synthetic_corpus(&model, 42);
    corpus.apply(&mut env);
    env
}

#[test]
fn figure1_sequence_of_streams_is_suggested() {
    let env = motivating_env(
        ProgramPoint::new()
            .with_local("body", Ty::base("String"))
            .with_local("sig", Ty::base("String"))
            .with_import("java.io")
            .with_import("java.lang"),
    );
    let session = Engine::new(SynthesisConfig::default()).prepare(&env);
    let result = session.query(&Query::new(Ty::base("SequenceInputStream")));
    let rendered: Vec<String> = result.snippets.iter().map(render_snippet).collect();
    let expected = "new SequenceInputStream(new FileInputStream(body), new FileInputStream(sig))";
    let rank = rendered.iter().position(|s| s == expected).map(|i| i + 1);
    assert!(rank.is_some(), "expected snippet missing; got {rendered:?}");
    assert!(rank.unwrap() <= 5, "rank was {rank:?}");
}

#[test]
fn section22_higher_order_completion_is_rank_one() {
    let env = motivating_env(
        ProgramPoint::new()
            .with_local("tree", Ty::base("Tree"))
            .with_local("p", Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")))
            .with_import("scala.tools.eclipse.javaelements")
            .with_import("java.lang"),
    );
    let session = Engine::new(SynthesisConfig::default()).prepare(&env);
    let result = session.query(&Query::new(Ty::base("FilterTypeTreeTraverser")).with_n(5));
    let rendered: Vec<String> = result.snippets.iter().map(render_snippet).collect();
    assert_eq!(rendered[0], "new FilterTypeTreeTraverser(var1 => p(var1))");
}

#[test]
fn section23_subtyping_completion_uses_coercions() {
    let env = motivating_env(
        ProgramPoint::new()
            .with_local("panel", Ty::base("Panel"))
            .with_import("java.awt")
            .with_import("java.lang"),
    );
    let session = Engine::new(SynthesisConfig::default()).prepare(&env);
    let result = session.query(&Query::new(Ty::base("LayoutManager")));
    let rendered: Vec<String> = result.snippets.iter().map(render_snippet).collect();
    let rank = rendered
        .iter()
        .position(|s| s == "panel.getLayout()")
        .map(|i| i + 1)
        .expect("panel.getLayout() must be suggested");
    assert!(rank <= 5, "rank was {rank}, suggestions {rendered:?}");
    // The snippet that used the coercion reports it.
    let snippet = &result.snippets[rank - 1];
    assert!(snippet.coercions >= 1);
}

#[test]
fn every_suggestion_for_the_motivating_examples_type_checks() {
    let env = motivating_env(
        ProgramPoint::new()
            .with_local("body", Ty::base("String"))
            .with_local("sig", Ty::base("String"))
            .with_import("java.io")
            .with_import("java.lang"),
    );
    let goal = Ty::base("BufferedReader");
    let session = Engine::new(SynthesisConfig::default()).prepare(&env);
    let result = session.query(&Query::new(goal.clone()).with_n(20));
    assert!(!result.snippets.is_empty());
    for snippet in &result.snippets {
        assert!(
            env.admits(&snippet.raw_term, &goal),
            "{} does not type check at {goal}",
            snippet.raw_term
        );
    }
}

#[test]
fn engine_is_complete_with_respect_to_rcn_on_a_library_like_environment() {
    // A small but representative slice: constructor chains plus a local.
    let env: TypeEnv = vec![
        Declaration::simple("name", Ty::base("String"), DeclKind::Local),
        Declaration::simple(
            "fis",
            Ty::fun(vec![Ty::base("String")], Ty::base("InputStream")),
            DeclKind::Imported,
        ),
        Declaration::simple(
            "bis",
            Ty::fun(vec![Ty::base("InputStream")], Ty::base("InputStream")),
            DeclKind::Imported,
        ),
        Declaration::simple(
            "reader",
            Ty::fun(
                vec![Ty::base("InputStream"), Ty::base("String")],
                Ty::base("Reader"),
            ),
            DeclKind::Imported,
        ),
    ]
    .into_iter()
    .collect();
    let goal = Ty::base("Reader");
    let depth = 4;

    let reference: HashSet<Term> = rcn(&env, &goal, depth)
        .iter()
        .map(Term::alpha_normalize)
        .collect();
    let config = SynthesisConfig::unbounded().with_max_depth(depth);
    let result = Engine::new(config)
        .prepare(&env)
        .query(&Query::new(goal.clone()).with_n(100_000));
    let engine: HashSet<Term> = result
        .snippets
        .iter()
        .map(|s| s.raw_term.alpha_normalize())
        .collect();

    assert_eq!(engine, reference);
    assert!(!reference.is_empty());
}

#[test]
fn provers_and_engine_agree_on_benchmark_style_queries() {
    let cases = vec![
        (
            ProgramPoint::new()
                .with_local("name", Ty::base("String"))
                .with_import("java.io"),
            Ty::base("BufferedInputStream"),
            true,
        ),
        (
            ProgramPoint::new().with_import("java.net"),
            Ty::base("DatagramSocket"),
            true,
        ),
        (
            ProgramPoint::new().with_import("java.net"),
            Ty::base("NoSuchClass"),
            false,
        ),
    ];

    for (point, goal, expected) in cases {
        let env = motivating_env(point);
        let session = Engine::new(SynthesisConfig::default()).prepare(&env);
        assert_eq!(session.is_inhabited(&goal), expected, "engine on {goal}");
        assert_eq!(
            is_inhabited_ref(&env, &goal),
            expected,
            "reference on {goal}"
        );

        let (hyps, formula) = inhabitation_query(&env, &goal);
        let limits = ProverLimits::default();
        assert_eq!(
            forward::prove(&hyps, &formula, &limits),
            Some(expected),
            "forward on {goal}"
        );
        assert_eq!(
            g4ip::prove(&hyps, &formula, &limits),
            Some(expected),
            "g4ip on {goal}"
        );
    }
}

#[test]
fn weight_variants_change_ranking_but_not_soundness() {
    use insynth::core::{WeightConfig, WeightMode};
    let env = motivating_env(
        ProgramPoint::new()
            .with_local("fileName", Ty::base("String"))
            .with_import("java.io")
            .with_import("java.lang"),
    );
    let goal = Ty::base("FileInputStream");
    for mode in [
        WeightMode::NoWeights,
        WeightMode::NoCorpus,
        WeightMode::Full,
    ] {
        let config = SynthesisConfig::default().with_weights(WeightConfig::new(mode));
        let result = Engine::new(config)
            .prepare(&env)
            .query(&Query::new(goal.clone()));
        assert!(!result.snippets.is_empty(), "{mode:?} found nothing");
        for snippet in &result.snippets {
            assert!(
                env.admits(&snippet.raw_term, &goal),
                "{} fails",
                snippet.raw_term
            );
        }
        // Ranking is monotone in weight for every variant.
        assert!(result
            .snippets
            .windows(2)
            .all(|w| w[0].weight <= w[1].weight));
    }
}
