//! Differential tests for the static-analysis pass (`insynth_analysis`).
//!
//! Two contracts, each checked on random environments:
//!
//! * producibility — the analyzer's goal-independent producibility fixpoint
//!   over `E_max` agrees *exactly* with the explore phase: a base type is
//!   producible iff the pattern index proves it inhabited when every `E_max`
//!   member is available as a goal binder. The explore pipeline never reads
//!   the analyzer, so this is a genuine two-implementation comparison.
//! * answer preservation — `SynthesisConfig::prune_dead_decls` (dropping
//!   declarations the analyzer proves dead before the graph build) returns
//!   byte-identical ranked snippets to the unpruned engine: same terms, same
//!   raw terms, same weight bit patterns — including under negative weight
//!   overrides, where the walk runs in its best-first fallback regime.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use insynth::analysis::Reachability;
use insynth::core::{
    explore, generate_patterns, DeclKind, Declaration, Engine, ExploreLimits, PreparedEnv, Query,
    SynthesisConfig, SynthesisResult, TypeEnv, WeightConfig,
};
use insynth::intern::Symbol;
use insynth::lambda::Ty;
use insynth::succinct::{SuccinctTyId, TypeStore};

const BASE_TYPES: &[&str] = &["A", "B", "C", "D"];

fn arb_ty() -> impl Strategy<Value = Ty> {
    let leaf = prop::sample::select(BASE_TYPES.to_vec()).prop_map(Ty::base);
    leaf.prop_recursive(2, 6, 2, |inner| {
        (vec(inner.clone(), 1..3), inner).prop_map(|(args, ret)| Ty::fun(args, ret))
    })
}

fn arb_env() -> impl Strategy<Value = TypeEnv> {
    vec((arb_ty(), 0u8..3), 1..8).prop_map(|decls| {
        decls
            .into_iter()
            .enumerate()
            .map(|(i, (ty, kind))| {
                let kind = match kind {
                    0 => DeclKind::Local,
                    1 => DeclKind::Class,
                    _ => DeclKind::Imported,
                };
                Declaration::simple(format!("d{i}"), ty, kind).with_frequency((i as u64) * 17)
            })
            .collect()
    })
}

fn arb_goal() -> impl Strategy<Value = Ty> {
    prop_oneof![
        prop::sample::select(BASE_TYPES.to_vec()).prop_map(Ty::base),
        (
            prop::sample::select(BASE_TYPES.to_vec()),
            prop::sample::select(BASE_TYPES.to_vec())
        )
            .prop_map(|(a, b)| Ty::fun(vec![Ty::base(a)], Ty::base(b))),
    ]
}

/// Negative weight overrides on every third declaration: they flip the walk
/// into the non-monotone best-first fallback but must not affect either
/// producibility or the pruned/unpruned answer identity.
fn with_negative_overrides(env: TypeEnv) -> TypeEnv {
    env.iter()
        .enumerate()
        .map(|(i, decl)| {
            let decl = decl.clone();
            if i % 3 == 0 {
                decl.with_weight(-1.5 - i as f64)
            } else {
                decl
            }
        })
        .collect()
}

/// Byte-precise fingerprint of a query result. Search statistics are
/// deliberately excluded: the pruned engine explores a smaller space, so its
/// counters legitimately differ — only the *answer* must be identical.
fn result_key(result: &SynthesisResult) -> Vec<(String, String, u64, usize, usize)> {
    result
        .snippets
        .iter()
        .map(|s| {
            (
                s.term.to_string(),
                s.raw_term.to_string(),
                s.weight.value().to_bits(),
                s.depth,
                s.coercions,
            )
        })
        .collect()
}

proptest! {
    // Deterministic CI: pinned case count and RNG seed, same rationale as
    // tests/properties.rs.
    #![proptest_config(ProptestConfig { cases: 48, rng_seed: 0x000a_5eed, ..ProptestConfig::default() })]

    #[test]
    fn producibility_matches_the_explore_phase(env in arb_env(), negative in 0u8..2) {
        let env = if negative == 1 { with_negative_overrides(env) } else { env };
        let weights = WeightConfig::default();
        let prepared = Arc::new(PreparedEnv::prepare(&env, &weights));
        let mut store = prepared.scratch();
        let reach = Reachability::compute(&store, &prepared.decl_succ);

        // Every base symbol the analysis can say anything about: returns of
        // members and requestables, plus the full generator alphabet (which
        // covers symbols the environment never mentions at all).
        let mut candidates: BTreeSet<Symbol> = BTreeSet::new();
        for &member in reach.members() {
            candidates.insert(store.ret_of(member));
        }
        for &request in reach.requestable() {
            candidates.insert(store.ret_of(request));
        }
        for name in BASE_TYPES {
            let id = store.sigma(&Ty::base(*name));
            candidates.insert(store.ret_of(id));
        }

        // Oracle: ask the explore phase whether `v` is inhabited when every
        // E_max member is in scope as a goal binder. That extension is
        // exactly the closure the analyzer reasons over, and inhabitation is
        // decided by the pattern index, which shares no code with the
        // analyzer's Horn fixpoint.
        let members: Vec<SuccinctTyId> = reach.members().to_vec();
        for v in candidates {
            let goal_succ = store.mk_ty(members.clone(), v);
            let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
            let patterns = generate_patterns(&mut store, &space);
            let goal_args = store.args_of(goal_succ).to_vec();
            let extended = store.env_union(prepared.init_env, &goal_args);
            prop_assert_eq!(
                reach.is_producible(v),
                patterns.is_inhabited(v, extended),
                "analyzer and explore phase disagree on `{}`",
                store.base_name(v)
            );
        }
    }

    #[test]
    fn pruning_dead_decls_preserves_answers_byte_for_byte(
        env in arb_env(),
        goal in arb_goal(),
        negative in 0u8..2,
    ) {
        let env = if negative == 1 { with_negative_overrides(env) } else { env };
        let config = SynthesisConfig::unbounded().with_max_depth(3);
        let mut pruning = config.clone();
        pruning.prune_dead_decls = true;

        let query = Query::new(goal).with_n(64);
        let plain = Engine::new(config).prepare(&env).query(&query);
        let pruned = Engine::new(pruning).prepare(&env).query(&query);
        prop_assert_eq!(result_key(&pruned), result_key(&plain));
    }
}

/// The degenerate environments the proptest generator cannot reach: the
/// empty environment, and a one-declaration environment whose single entry
/// is dead (pruning must cope with the everything-pruned case).
#[test]
fn degenerate_environments_prune_cleanly() {
    let empty: TypeEnv = Vec::<Declaration>::new().into_iter().collect();
    let dead_only: TypeEnv = vec![Declaration::simple(
        "f",
        Ty::fun(vec![Ty::base("Missing")], Ty::base("A")),
        DeclKind::Local,
    )]
    .into_iter()
    .collect();

    for env in [&empty, &dead_only] {
        let report = Engine::new(SynthesisConfig::default()).analyze(env);
        assert_eq!(report.decl_count, env.len());

        let config = SynthesisConfig::unbounded().with_max_depth(3);
        let mut pruning = config.clone();
        pruning.prune_dead_decls = true;
        let query = Query::new(Ty::base("A")).with_n(16);
        let plain = Engine::new(config).prepare(env).query(&query);
        let pruned = Engine::new(pruning).prepare(env).query(&query);
        assert_eq!(result_key(&pruned), result_key(&plain));
        assert!(pruned.snippets.is_empty());
    }

    let report = Engine::new(SynthesisConfig::default()).analyze(&dead_only);
    assert_eq!(report.dead_decls, vec![0]);
}

/// A declaration that is dead relative to the bare environment but revived
/// by the goal's own binders must survive pruning: `f : B -> A` is unusable
/// on its own, yet the goal `B -> A` brings a `B` into scope.
#[test]
fn goal_binders_revive_decls_the_environment_alone_cannot_feed() {
    let env: TypeEnv = vec![Declaration::simple(
        "f",
        Ty::fun(vec![Ty::base("B")], Ty::base("A")),
        DeclKind::Local,
    )]
    .into_iter()
    .collect();

    // Goal-independent analysis calls `f` dead…
    let report = Engine::new(SynthesisConfig::default()).analyze(&env);
    assert_eq!(report.dead_decls, vec![0]);

    // …but the goal-directed prune keeps it, and answers match the
    // unpruned engine exactly.
    let goal = Ty::fun(vec![Ty::base("B")], Ty::base("A"));
    let config = SynthesisConfig::unbounded().with_max_depth(3);
    let mut pruning = config.clone();
    pruning.prune_dead_decls = true;
    let query = Query::new(goal).with_n(16);
    let plain = Engine::new(config).prepare(&env).query(&query);
    let pruned = Engine::new(pruning).prepare(&env).query(&query);
    assert_eq!(result_key(&pruned), result_key(&plain));
    assert!(
        !pruned.snippets.is_empty(),
        "the goal binder must revive `f`"
    );
}
