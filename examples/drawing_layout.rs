//! The §2.3 drawing-layout example: completion through subtyping.
//!
//! Run with `cargo run --release --example drawing_layout`.
//!
//! ```scala
//! import java.awt._
//! class Drawing(panel: Panel) {
//!   def getLayout: LayoutManager = <cursor>
//! }
//! ```
//!
//! `getLayout()` is declared on `Container`, and `Panel <: Container`, so the
//! engine must use the coercion introduced for that subtype edge; the coercion
//! is erased before the suggestion is shown, yielding `panel.getLayout()`.

use insynth::apimodel::{extract, javaapi, render_snippet, ProgramPoint};
use insynth::core::{Engine, Query, SynthesisConfig};
use insynth::corpus::synthetic_corpus;
use insynth::lambda::Ty;

fn main() {
    let model = javaapi::standard_model();

    let point = ProgramPoint::new()
        .with_local("panel", Ty::base("Panel"))
        .with_import("java.awt")
        .with_import("java.lang")
        .with_import("java.util")
        .with_import("lib.generated0")
        .with_import("lib.generated1")
        .with_import("lib.generated2");

    let mut env = extract(&model, &point);
    let corpus = synthetic_corpus(&model, 42);
    corpus.apply(&mut env);

    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&env);
    let result = session.query(&Query::new(Ty::base("LayoutManager")).with_n(5));

    println!("InSynth suggestions for `def getLayout: LayoutManager = ?`");
    println!(
        "({} visible declarations; prepared once in {} ms, queried in {} ms; paper reports 4965 declarations, 426 ms)",
        result.stats.initial_declarations,
        session.prepare_time().as_millis(),
        result.timings.total().as_millis()
    );
    println!();
    for (i, snippet) in result.snippets.iter().enumerate() {
        println!(
            "  {}. {:<40} (coercions erased: {})",
            i + 1,
            render_snippet(snippet),
            snippet.coercions
        );
    }

    let rank = result
        .snippets
        .iter()
        .position(|s| render_snippet(s) == "panel.getLayout()")
        .map(|i| i + 1);
    println!();
    match rank {
        Some(r) => println!("`panel.getLayout()` found at rank {r} (paper: rank 2)"),
        None => println!("`panel.getLayout()` not found in the top 5"),
    }
}
