//! The §2.1 / Figure 1 motivating example: sequence of streams.
//!
//! Run with `cargo run --release --example sequence_streams`.
//!
//! ```scala
//! import java.io._
//! class Streams {
//!   def getInputStreams(body: String, sig: String): SequenceInputStream = <cursor>
//! }
//! ```
//!
//! InSynth is invoked at the cursor with goal type `SequenceInputStream`; the
//! expected suggestion is
//! `new SequenceInputStream(new FileInputStream(body), new FileInputStream(sig))`.

use insynth::apimodel::{extract, javaapi, render_snippet, ProgramPoint};
use insynth::core::{Engine, Query, SynthesisConfig};
use insynth::corpus::synthetic_corpus;
use insynth::lambda::Ty;

fn main() {
    let model = javaapi::standard_model();

    // The completion context: the two method parameters are local values and
    // java.io._ is imported (plus java.lang/java.util, always visible).
    let point = ProgramPoint::new()
        .with_local("body", Ty::base("String"))
        .with_local("sig", Ty::base("String"))
        .with_import("java.io")
        .with_import("java.lang")
        .with_import("java.util")
        .with_import("lib.generated0")
        .with_import("lib.generated1");

    let mut env = extract(&model, &point);
    let corpus = synthetic_corpus(&model, 42);
    corpus.apply(&mut env);

    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&env);
    let result = session.query(&Query::new(Ty::base("SequenceInputStream")).with_n(5));

    println!("InSynth suggestions for `def getInputStreams(body: String, sig: String): SequenceInputStream`");
    println!(
        "({} visible declarations, {} succinct types; prepared once in {} ms, queried in {} ms)",
        result.stats.initial_declarations,
        result.stats.distinct_succinct_types,
        session.prepare_time().as_millis(),
        result.timings.total().as_millis()
    );
    println!();
    for (i, snippet) in result.snippets.iter().enumerate() {
        println!("  {}. {}", i + 1, render_snippet(snippet));
    }

    let expected = "new SequenceInputStream(new FileInputStream(body), new FileInputStream(sig))";
    let rank = result
        .snippets
        .iter()
        .position(|s| render_snippet(s) == expected)
        .map(|i| i + 1);
    println!();
    match rank {
        Some(r) => println!("expected snippet found at rank {r}"),
        None => println!("expected snippet not in the top 5 (try increasing N)"),
    }
}
