//! Quickstart: synthesize ranked expressions from a hand-built environment.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This example does not use the API model at all; it shows the lowest-level
//! workflow with the session API: declare what is in scope (a type
//! environment Γ), prepare it once with [`Engine::prepare`], and ask the
//! session for the best-ranked expressions of one or more goal types.
//!
//! Under the hood each query compiles its goal into a *derivation graph*
//! (explore → patterns → graph) that the session caches: the first query for
//! a goal pays for the graph, repeats of that goal go straight to best-first
//! reconstruction over it.

use insynth::core::{DeclKind, Declaration, Engine, Query, SynthesisConfig, TypeEnv};
use insynth::lambda::Ty;

fn main() {
    // The program point: a local `path`, plus a few imported API functions.
    let env: TypeEnv = vec![
        Declaration::simple("path", Ty::base("String"), DeclKind::Local),
        Declaration::simple(
            "openFile",
            Ty::fun(vec![Ty::base("String")], Ty::base("File")),
            DeclKind::Imported,
        )
        .with_frequency(800),
        Declaration::simple(
            "readAll",
            Ty::fun(vec![Ty::base("File")], Ty::base("String")),
            DeclKind::Imported,
        )
        .with_frequency(350),
        Declaration::simple(
            "parseConfig",
            Ty::fun(vec![Ty::base("String")], Ty::base("Config")),
            DeclKind::Imported,
        )
        .with_frequency(40),
        Declaration::simple("defaultConfig", Ty::base("Config"), DeclKind::Imported)
            .with_frequency(5),
    ]
    .into_iter()
    .collect();

    // The declared type left of the cursor: we want a Config.
    let goal = Ty::base("Config");

    // Prepare the program point once; the session answers any number of
    // queries against it without re-running σ.
    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&env);
    let result = session.query(&Query::new(goal.clone()).with_n(5));

    println!("goal type: {goal}");
    println!(
        "{} declarations, {} succinct types, {} patterns; prepared in {} ms, queried in {} ms",
        result.stats.initial_declarations,
        result.stats.distinct_succinct_types,
        result.stats.patterns,
        session.prepare_time().as_millis(),
        result.timings.total().as_millis()
    );
    println!();
    for (i, snippet) in result.snippets.iter().enumerate() {
        println!(
            "  {}. {:<45} weight {:>7.1}  depth {}",
            i + 1,
            snippet.term.to_string(),
            snippet.weight.value(),
            snippet.depth
        );
    }

    // The same session answers further goals without re-preparing.
    let files = session.query(&Query::new(Ty::base("File")).with_n(3));
    println!();
    println!(
        "same session, goal File: best suggestion is `{}` ({} ms)",
        files.snippets[0].term,
        files.timings.total().as_millis()
    );

    // Repeating a goal reuses the session's cached derivation graph: no
    // exploration or pattern generation the second time, identical results.
    let again = session.query(&Query::new(goal.clone()).with_n(5));
    assert_eq!(again.snippets.len(), result.snippets.len());
    println!(
        "repeat query served from {} cached derivation graph(s)",
        session.cached_graph_count()
    );

    // The ranking prefers the frequent `parseConfig(path)` over the rarely
    // used `defaultConfig`, and both over deeper compositions such as
    // `parseConfig(readAll(openFile(path)))`.
    assert!(result.rank_of("parseConfig(path)").is_some());
    assert!(result
        .rank_of("parseConfig(readAll(openFile(path)))")
        .is_some());
    assert_eq!(files.snippets[0].term.to_string(), "openFile(path)");
}
