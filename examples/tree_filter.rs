//! The §2.2 TreeFilter example: synthesizing a higher-order argument.
//!
//! Run with `cargo run --release --example tree_filter`.
//!
//! ```scala
//! class TreeWrapper(tree: Tree) {
//!   def filter(p: Tree => Boolean): List[Tree] = {
//!     val ft: FilterTypeTreeTraverser = <cursor>
//!     ft.traverse(tree)
//!     ft.hits.toList
//!   }
//! }
//! ```
//!
//! The goal type is `FilterTypeTreeTraverser`, whose constructor takes a
//! function `Tree => Boolean`; the expected top suggestion wraps the local
//! predicate `p` in a lambda: `new FilterTypeTreeTraverser(var1 => p(var1))`.

use insynth::apimodel::{extract, javaapi, render_snippet, ProgramPoint};
use insynth::core::{Engine, Query, SynthesisConfig};
use insynth::corpus::synthetic_corpus;
use insynth::lambda::Ty;

fn main() {
    let model = javaapi::standard_model();

    let point = ProgramPoint::new()
        .with_local("tree", Ty::base("Tree"))
        .with_local("p", Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")))
        .with_import("scala.tools.eclipse.javaelements")
        .with_import("java.lang")
        .with_import("java.util")
        .with_import("lib.generated0")
        .with_import("lib.generated1")
        .with_import("lib.generated2");

    let mut env = extract(&model, &point);
    let corpus = synthetic_corpus(&model, 42);
    corpus.apply(&mut env);

    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&env);
    let result = session.query(&Query::new(Ty::base("FilterTypeTreeTraverser")).with_n(5));

    println!("InSynth suggestions for `val ft: FilterTypeTreeTraverser = ?`");
    println!(
        "({} visible declarations; prepared once in {} ms, queried in {} ms)",
        result.stats.initial_declarations,
        session.prepare_time().as_millis(),
        result.timings.total().as_millis()
    );
    println!();
    for (i, snippet) in result.snippets.iter().enumerate() {
        println!("  {}. {}", i + 1, render_snippet(snippet));
    }

    let expected = "new FilterTypeTreeTraverser(var1 => p(var1))";
    let rank = result
        .snippets
        .iter()
        .position(|s| render_snippet(s) == expected)
        .map(|i| i + 1);
    println!();
    match rank {
        Some(r) => println!("expected higher-order snippet found at rank {r} (paper: rank 1)"),
        None => println!("expected snippet not found in the top 5"),
    }
}
