//! The 50 benchmarks of Table 2.
//!
//! Each benchmark reconstructs one removed goal expression. Program points are
//! modelled after the original java2s examples: the locals named in the
//! benchmark id are in scope, the packages the example imports are imported
//! wholesale, and the environment is padded with filler packages so that the
//! number of visible declarations approximates the `#Initial` column of the
//! paper.
//!
//! Two deliberate simplifications (documented in EXPERIMENTS.md):
//!
//! * literal constructor arguments are replaced by a single local of the right
//!   type (the paper itself compares snippets modulo literal constants), and
//! * benchmarks whose constructors take several arguments of the same type use
//!   one shared local for those arguments, because permutations of same-typed
//!   locals are weight-equivalent and would make the "expected snippet" an
//!   arbitrary choice among ties.

use insynth_lambda::Ty;

/// The numbers the paper reports for one benchmark (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct PaperRow {
    /// Snippet size "with coercions / without coercions".
    pub size: &'static str,
    /// Number of initial declarations (`#Initial`).
    pub initial: usize,
    /// Rank under the no-weights variant (`None` means "> 10").
    pub rank_no_weights: Option<usize>,
    /// Rank under the weights-without-corpus variant.
    pub rank_no_corpus: Option<usize>,
    /// Rank under the full algorithm.
    pub rank_all: Option<usize>,
    /// Total synthesis time of the full algorithm, in milliseconds.
    pub total_all_ms: u64,
    /// Imogen prover time on the same query, in milliseconds.
    pub imogen_ms: u64,
}

/// One completion benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// 1-based ordinal in Table 2.
    pub id: usize,
    /// Benchmark name as printed in Table 2.
    pub name: &'static str,
    /// The desired (goal) type at the completion point.
    pub goal: Ty,
    /// The expected snippet in the renderer's surface syntax.
    pub expected: String,
    /// Local values in scope, in declaration order.
    pub locals: Vec<(&'static str, Ty)>,
    /// Literal placeholders in scope.
    pub literals: Vec<(&'static str, Ty)>,
    /// Imported (hand-modelled) packages.
    pub imports: Vec<&'static str>,
    /// The paper's reported numbers.
    pub paper: PaperRow,
}

impl Benchmark {
    /// How many filler packages the harness should import so that the
    /// environment size approximates the paper's `#Initial` column. Each
    /// filler package contributes roughly 520 declarations.
    pub fn filler_packages(&self) -> usize {
        self.paper.initial.saturating_sub(450) / 520
    }
}

fn b(name: &str) -> Ty {
    Ty::base(name)
}

#[allow(clippy::too_many_arguments)]
fn row(
    size: &'static str,
    initial: usize,
    rank_no_weights: Option<usize>,
    rank_no_corpus: Option<usize>,
    rank_all: Option<usize>,
    total_all_ms: u64,
    imogen_ms: u64,
) -> PaperRow {
    PaperRow {
        size,
        initial,
        rank_no_weights,
        rank_no_corpus,
        rank_all,
        total_all_ms,
        imogen_ms,
    }
}

const IO: &[&str] = &["java.io", "java.lang", "java.util"];
const AWT: &[&str] = &["java.awt", "java.lang", "java.util"];
const SWING: &[&str] = &["javax.swing", "java.awt", "java.awt.event", "java.lang"];
const NET: &[&str] = &["java.net", "java.io", "java.lang"];

/// Builds all 50 benchmarks in Table 2 order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut out = Vec::with_capacity(50);
    let mut add = |name: &'static str,
                   goal: Ty,
                   expected: &str,
                   locals: Vec<(&'static str, Ty)>,
                   literals: Vec<(&'static str, Ty)>,
                   imports: &[&'static str],
                   paper: PaperRow| {
        out.push(Benchmark {
            id: out.len() + 1,
            name,
            goal,
            expected: expected.to_owned(),
            locals,
            literals,
            imports: imports.to_vec(),
            paper,
        });
    };

    add(
        "AWTPermissionStringname",
        b("AWTPermission"),
        "new AWTPermission(name)",
        vec![("name", b("String"))],
        vec![],
        AWT,
        row("2/2", 5615, None, Some(1), Some(1), 133, 127),
    );
    add(
        "BufferedInputStreamFileInputStream",
        b("BufferedInputStream"),
        "new BufferedInputStream(new FileInputStream(fileName))",
        vec![("fileName", b("String"))],
        vec![],
        IO,
        row("3/2", 3364, None, Some(1), Some(1), 53, 44),
    );
    add(
        "BufferedOutputStream",
        b("BufferedOutputStream"),
        "new BufferedOutputStream(new FileOutputStream(fileName))",
        vec![("fileName", b("String"))],
        vec![],
        IO,
        row("3/2", 3367, None, Some(1), Some(1), 19, 44),
    );
    add(
        "BufferedReaderFileReaderfileReader",
        b("BufferedReader"),
        "new BufferedReader(new FileReader(fileName))",
        vec![("fileName", b("String"))],
        vec![],
        IO,
        row("4/2", 3364, None, Some(2), Some(1), 50, 44),
    );
    add(
        "BufferedReaderInputStreamReader",
        b("BufferedReader"),
        "new BufferedReader(new InputStreamReader(in))",
        vec![("in", b("InputStream"))],
        vec![],
        IO,
        row("4/2", 3364, None, Some(2), Some(1), 49, 44),
    );
    add(
        "BufferedReaderReaderin",
        b("BufferedReader"),
        "new BufferedReader(in)",
        vec![("in", b("Reader"))],
        vec![],
        IO,
        row("5/4", 4094, None, None, Some(6), 244, 61),
    );
    add(
        "ByteArrayInputStreambytebuf",
        b("ByteArrayInputStream"),
        "new ByteArrayInputStream(buf)",
        vec![("buf", b("ByteArray"))],
        vec![],
        IO,
        row("4/4", 3366, None, Some(3), None, 22, 44),
    );
    add(
        "ByteArrayOutputStreamintsize",
        b("ByteArrayOutputStream"),
        "new ByteArrayOutputStream(size)",
        vec![("size", b("Int"))],
        vec![],
        IO,
        row("2/2", 3363, None, Some(2), Some(2), 70, 44),
    );
    add(
        "DatagramSocket",
        b("DatagramSocket"),
        "new DatagramSocket()",
        vec![],
        vec![],
        NET,
        row("1/1", 3246, None, Some(1), Some(1), 88, 38),
    );
    add(
        "DataInputStreamFileInput",
        b("DataInputStream"),
        "new DataInputStream(new FileInputStream(fileName))",
        vec![("fileName", b("String"))],
        vec![],
        IO,
        row("3/2", 3364, None, Some(1), Some(1), 52, 44),
    );
    add(
        "DataOutputStreamFileOutput",
        b("DataOutputStream"),
        "new DataOutputStream(new FileOutputStream(fileName))",
        vec![("fileName", b("String"))],
        vec![],
        IO,
        row("3/2", 3364, None, Some(1), Some(1), 45, 44),
    );
    add(
        "DefaultBoundedRangeModel",
        b("DefaultBoundedRangeModel"),
        "new DefaultBoundedRangeModel()",
        vec![],
        vec![],
        SWING,
        row("1/1", 6673, None, Some(1), Some(1), 266, 193),
    );
    add(
        "DisplayModeintwidthintheightintbit",
        b("DisplayMode"),
        "new DisplayMode(width, width, width, width)",
        vec![("width", b("Int"))],
        vec![],
        AWT,
        row("2/2", 4999, None, Some(1), Some(1), 154, 99),
    );
    add(
        "FileInputStreamFileDescriptorfdObj",
        b("FileInputStream"),
        "new FileInputStream(fdObj)",
        vec![("fdObj", b("FileDescriptor"))],
        vec![],
        IO,
        row("2/2", 3366, None, Some(3), Some(2), 23, 44),
    );
    add(
        "FileInputStreamStringname",
        b("FileInputStream"),
        "new FileInputStream(name)",
        vec![("name", b("String"))],
        vec![],
        IO,
        row("2/2", 3363, None, Some(1), Some(1), 109, 44),
    );
    add(
        "FileOutputStreamFilefile",
        b("FileOutputStream"),
        "new FileOutputStream(file)",
        vec![("file", b("File"))],
        vec![],
        IO,
        row("2/2", 3364, None, Some(1), Some(1), 60, 44),
    );
    add(
        "FileReaderFilefile",
        b("FileReader"),
        "new FileReader(file)",
        vec![("file", b("File"))],
        vec![],
        IO,
        row("2/2", 3365, None, Some(2), Some(2), 20, 44),
    );
    add(
        "FileStringname",
        b("File"),
        "new File(name)",
        vec![("name", b("String"))],
        vec![],
        IO,
        row("2/2", 3363, None, Some(1), Some(1), 163, 44),
    );
    add(
        "FileWriterFilefile",
        b("FileWriter"),
        "new FileWriter(file)",
        vec![("file", b("File"))],
        vec![],
        IO,
        row("2/2", 3366, None, Some(1), Some(1), 36, 45),
    );
    add(
        "FileWriterLPT1",
        b("FileWriter"),
        "new FileWriter(\"LPT1\")",
        vec![],
        vec![("\"LPT1\"", b("String"))],
        IO,
        row("2/2", 3363, Some(6), Some(1), Some(1), 96, 44),
    );
    add(
        "GridBagConstraints",
        b("GridBagConstraints"),
        "new GridBagConstraints()",
        vec![],
        vec![],
        AWT,
        row("1/1", 8402, None, Some(1), Some(1), 342, 290),
    );
    add(
        "GridBagLayout",
        b("GridBagLayout"),
        "new GridBagLayout()",
        vec![],
        vec![],
        AWT,
        row("1/1", 8401, None, Some(1), Some(1), 1, 290),
    );
    add(
        "GroupLayoutContainerhost",
        b("GroupLayout"),
        "new GroupLayout(host)",
        vec![("host", b("Container"))],
        vec![],
        SWING,
        row("4/2", 6436, None, Some(1), Some(1), 36, 190),
    );
    add(
        "ImageIconStringfilename",
        b("ImageIcon"),
        "new ImageIcon(filename)",
        vec![("filename", b("String"))],
        vec![],
        SWING,
        row("2/2", 8277, None, Some(2), Some(1), 167, 300),
    );
    add(
        "InputStreamReaderInputStreamin",
        b("InputStreamReader"),
        "new InputStreamReader(in)",
        vec![("in", b("InputStream"))],
        vec![],
        IO,
        row("3/3", 3363, None, Some(8), Some(4), 184, 44),
    );
    add(
        "JButtonStringtext",
        b("JButton"),
        "new JButton(text)",
        vec![("text", b("String"))],
        vec![],
        SWING,
        row("2/2", 6434, None, Some(2), Some(1), 95, 184),
    );
    add(
        "JCheckBoxStringtext",
        b("JCheckBox"),
        "new JCheckBox(text)",
        vec![("text", b("String"))],
        vec![],
        SWING,
        row("2/2", 8401, None, Some(3), Some(2), 68, 188),
    );
    add(
        "JformattedTextFieldAbstractFormatter",
        b("JFormattedTextField"),
        "new JFormattedTextField(new DefaultFormatter())",
        vec![],
        vec![],
        SWING,
        row("3/2", 10700, None, Some(2), Some(4), 122, 520),
    );
    add(
        "JFormattedTextFieldFormatterformatter",
        b("JFormattedTextField"),
        "new JFormattedTextField(formatter)",
        vec![("formatter", b("AbstractFormatter"))],
        vec![],
        SWING,
        row("2/2", 9783, None, Some(2), Some(2), 100, 419),
    );
    add(
        "JTableObjectnameObjectdata",
        b("JTable"),
        "new JTable(data, name)",
        vec![("data", b("ObjectMatrix")), ("name", b("ObjectArray"))],
        vec![],
        SWING,
        row("3/3", 8280, None, Some(2), Some(2), 142, 300),
    );
    add(
        "JTextAreaStringtext",
        b("JTextArea"),
        "new JTextArea(text)",
        vec![("text", b("String"))],
        vec![],
        SWING,
        row("2/2", 6433, None, Some(2), None, 302, 183),
    );
    add(
        "JToggleButtonStringtext",
        b("JToggleButton"),
        "new JToggleButton(text)",
        vec![("text", b("String"))],
        vec![],
        SWING,
        row("2/2", 8277, None, Some(2), Some(2), 135, 299),
    );
    add(
        "JTree",
        b("JTree"),
        "new JTree()",
        vec![],
        vec![],
        SWING,
        row("1/1", 8278, Some(2), Some(1), Some(1), 2039, 298),
    );
    add(
        "JViewport",
        b("JViewport"),
        "new JViewport()",
        vec![],
        vec![],
        SWING,
        row("1/1", 8282, Some(8), Some(1), Some(8), 19, 298),
    );
    add(
        "JWindow",
        b("JWindow"),
        "new JWindow()",
        vec![],
        vec![],
        SWING,
        row("1/1", 6434, Some(3), Some(1), Some(1), 434, 194),
    );
    add(
        "LineNumberReaderReaderin",
        b("LineNumberReader"),
        "new LineNumberReader(in)",
        vec![("in", b("Reader"))],
        vec![],
        IO,
        row("5/4", 3363, None, None, Some(9), 239, 44),
    );
    add(
        "ObjectInputStreamInputStreamin",
        b("ObjectInputStream"),
        "new ObjectInputStream(in)",
        vec![("in", b("InputStream"))],
        vec![],
        IO,
        row("3/2", 3367, None, Some(1), Some(1), 35, 44),
    );
    add(
        "ObjectOutputStreamOutputStreamout",
        b("ObjectOutputStream"),
        "new ObjectOutputStream(out)",
        vec![("out", b("OutputStream"))],
        vec![],
        IO,
        row("3/2", 3364, None, Some(1), Some(1), 54, 44),
    );
    add(
        "PipedReaderPipedWritersrc",
        b("PipedReader"),
        "new PipedReader(src)",
        vec![("src", b("PipedWriter"))],
        vec![],
        IO,
        row("2/2", 3364, None, Some(2), Some(2), 68, 44),
    );
    add(
        "PipedWriter",
        b("PipedWriter"),
        "new PipedWriter()",
        vec![],
        vec![],
        IO,
        row("1/1", 3359, None, Some(1), Some(1), 139, 44),
    );
    add(
        "Pointintxinty",
        b("Point"),
        "new Point(x, x)",
        vec![("x", b("Int"))],
        vec![],
        AWT,
        row("3/1", 4997, None, Some(5), Some(2), 103, 101),
    );
    add(
        "PrintStreamOutputStreamout",
        b("PrintStream"),
        "new PrintStream(out)",
        vec![("out", b("OutputStream"))],
        vec![],
        IO,
        row("3/2", 3365, None, Some(6), Some(1), 27, 44),
    );
    add(
        "PrintWriterBufferedWriter",
        b("PrintWriter"),
        "new PrintWriter(new BufferedWriter(new FileWriter(fileName)))",
        vec![("fileName", b("String"))],
        vec![],
        IO,
        row("4/3", 3365, None, Some(4), Some(4), 44, 44),
    );
    add(
        "SequenceInputStreamInputStreams",
        b("SequenceInputStream"),
        "new SequenceInputStream(new FileInputStream(body), new FileInputStream(sig))",
        vec![("body", b("String")), ("sig", b("String"))],
        vec![],
        IO,
        row("5/3", 3365, None, Some(2), Some(2), 28, 44),
    );
    add(
        "ServerSocketintport",
        b("ServerSocket"),
        "new ServerSocket(port)",
        vec![("port", b("Int"))],
        vec![],
        NET,
        row("2/2", 4094, None, Some(2), Some(1), 63, 61),
    );
    add(
        "StreamTokenizerFileReaderfileReader",
        b("StreamTokenizer"),
        "new StreamTokenizer(fileReader)",
        vec![("fileReader", b("FileReader"))],
        vec![],
        IO,
        row("3/2", 3365, None, Some(1), Some(1), 65, 44),
    );
    add(
        "StringReaderStrings",
        b("StringReader"),
        "new StringReader(s)",
        vec![("s", b("String"))],
        vec![],
        IO,
        row("2/2", 3363, None, Some(1), Some(1), 43, 45),
    );
    add(
        "TimerintvalueActionListeneract",
        b("Timer"),
        "new Timer(value, act)",
        vec![("value", b("Int")), ("act", b("ActionListener"))],
        vec![],
        SWING,
        row("3/3", 6665, None, Some(1), Some(1), 199, 186),
    );
    add(
        "TransferHandlerStringproperty",
        b("TransferHandler"),
        "new TransferHandler(property)",
        vec![("property", b("String"))],
        vec![],
        SWING,
        row("2/2", 8648, None, Some(1), Some(1), 31, 319),
    );
    add(
        "URLStringspecthrows",
        b("URL"),
        "new URL(spec)",
        vec![("spec", b("String"))],
        vec![],
        NET,
        row("3/3", 4093, None, Some(6), Some(1), 183, 60),
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_fifty_benchmarks() {
        let benchmarks = all_benchmarks();
        assert_eq!(benchmarks.len(), 50);
        for (i, bench) in benchmarks.iter().enumerate() {
            assert_eq!(bench.id, i + 1);
        }
    }

    #[test]
    fn names_are_unique_and_match_table2() {
        let benchmarks = all_benchmarks();
        let mut names: Vec<&str> = benchmarks.iter().map(|b| b.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 50);
        assert!(benchmarks
            .iter()
            .any(|b| b.name == "SequenceInputStreamInputStreams"));
        assert!(benchmarks.iter().any(|b| b.name == "GridBagLayout"));
    }

    #[test]
    fn paper_initial_sizes_are_in_the_reported_range() {
        for bench in all_benchmarks() {
            assert!(
                bench.paper.initial >= 3246 && bench.paper.initial <= 10700,
                "{}",
                bench.name
            );
        }
    }

    #[test]
    fn filler_count_scales_with_paper_environment_size() {
        let benchmarks = all_benchmarks();
        let small = benchmarks.iter().find(|b| b.paper.initial == 3363).unwrap();
        let large = benchmarks
            .iter()
            .find(|b| b.paper.initial == 10700)
            .unwrap();
        assert!(small.filler_packages() < large.filler_packages());
        assert!(large.filler_packages() >= 15);
    }

    #[test]
    fn full_algorithm_finds_48_of_50_in_the_paper() {
        let found = all_benchmarks()
            .iter()
            .filter(|b| b.paper.rank_all.is_some())
            .count();
        assert_eq!(found, 48);
        let rank_one = all_benchmarks()
            .iter()
            .filter(|b| b.paper.rank_all == Some(1))
            .count();
        assert_eq!(rank_one, 32);
    }

    #[test]
    fn no_weights_variant_finds_only_four_in_the_paper() {
        let found = all_benchmarks()
            .iter()
            .filter(|b| b.paper.rank_no_weights.is_some())
            .count();
        assert_eq!(found, 4);
    }

    #[test]
    fn every_benchmark_imports_java_lang() {
        for bench in all_benchmarks() {
            assert!(bench.imports.contains(&"java.lang"), "{}", bench.name);
        }
    }
}
