//! The evaluation benchmark suite (paper §7).
//!
//! Table 2 evaluates InSynth on 50 completion tasks constructed from API-usage
//! examples: each task removes a goal expression from a program, records the
//! declared type at that position, and asks the tool to re-synthesize the
//! expression. This crate contains:
//!
//! * [`all_benchmarks`] — the 50 tasks, each with its program point (locals,
//!   literals, imports), goal type, expected snippet (in the renderer's
//!   surface syntax) and the numbers the paper reports for it,
//! * [`run_benchmark`] — the harness: build the environment (API model +
//!   filler to reach the paper's environment size + corpus frequencies),
//!   prepare a session and run the query under a chosen weight mode, and
//!   report the rank of the expected snippet together with the preparation
//!   time (once per program point) and the query phase timings,
//! * [`run_benchmark_repeated`] — the amortization experiment: one prepared
//!   session answering the same query many times (§7.5's interactive
//!   deployment), with preparation counted once,
//! * [`run_provers`] — the same inhabitation query handed to the two baseline
//!   intuitionistic provers (the Imogen / fCube stand-ins),
//! * [`report`] — Table 2 row formatting and the §7.5 summary statistics.
//!
//! # Example
//!
//! ```
//! use insynth_benchsuite::{all_benchmarks, run_benchmark, HarnessConfig};
//! use insynth_core::WeightMode;
//!
//! let benchmarks = all_benchmarks();
//! assert_eq!(benchmarks.len(), 50);
//! let outcome = run_benchmark(&benchmarks[14], WeightMode::Full, &HarnessConfig::default());
//! assert_eq!(outcome.rank, Some(1)); // new FileInputStream(name)
//! ```

mod benchmarks;
mod harness;
mod report;

pub use benchmarks::{all_benchmarks, Benchmark, PaperRow};
pub use harness::{
    build_environment, run_benchmark, run_benchmark_repeated, run_provers, BenchmarkOutcome,
    HarnessConfig, ProverOutcome, RepeatedOutcome,
};
pub use report::{summarize, table2_header, table2_row, Summary};
