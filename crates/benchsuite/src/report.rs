//! Table 2 row formatting and the §7.5 summary statistics.

use std::time::Duration;

use crate::benchmarks::Benchmark;
use crate::harness::{BenchmarkOutcome, ProverOutcome};

/// Aggregate statistics over a set of benchmark outcomes (the quantities the
/// paper reports in §7.5).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of benchmarks whose expected snippet appeared in the top N.
    pub found: usize,
    /// Number of benchmarks whose expected snippet ranked first.
    pub rank_one: usize,
    /// Number of benchmarks evaluated.
    pub total: usize,
    /// Mean environment preparation time across benchmarks (paid once per
    /// program point).
    pub mean_prepare: Duration,
    /// Mean total query time (prove + reconstruction) across benchmarks.
    pub mean_total: Duration,
}

impl Summary {
    /// Percentage of benchmarks found, 0–100.
    pub fn found_percent(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.found as f64 / self.total as f64
    }

    /// Percentage of benchmarks ranked first, 0–100.
    pub fn rank_one_percent(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.rank_one as f64 / self.total as f64
    }
}

/// Summarizes a set of outcomes.
pub fn summarize(outcomes: &[BenchmarkOutcome]) -> Summary {
    let total = outcomes.len();
    let found = outcomes.iter().filter(|o| o.rank.is_some()).count();
    let rank_one = outcomes.iter().filter(|o| o.rank == Some(1)).count();
    let total_time: Duration = outcomes.iter().map(|o| o.timings.total()).sum();
    let prepare_time: Duration = outcomes.iter().map(|o| o.prepare_time).sum();
    let (mean_total, mean_prepare) = if total == 0 {
        (Duration::ZERO, Duration::ZERO)
    } else {
        (total_time / total as u32, prepare_time / total as u32)
    };
    Summary {
        found,
        rank_one,
        total,
        mean_prepare,
        mean_total,
    }
}

/// The header line of the regenerated Table 2.
///
/// `Prep` is the once-per-program-point preparation time (σ + index
/// construction); the `Prove`/`Recon`/`Tall` columns cover only the query
/// itself, which is what repeats in the interactive deployment.
pub fn table2_header() -> String {
    format!(
        "{:>2} {:<38} {:>5} {:>8} | {:>4} {:>8} | {:>4} {:>8} | {:>4} {:>6} {:>6} {:>6} {:>8} | {:>9} {:>9}",
        "#",
        "Benchmark",
        "Size",
        "#Initial",
        "Rnw",
        "Tnw(ms)",
        "Rnc",
        "Tnc(ms)",
        "Rall",
        "Prep",
        "Prove",
        "Recon",
        "Tall(ms)",
        "Fwd(ms)",
        "G4ip(ms)"
    )
}

fn rank_str(rank: Option<usize>) -> String {
    match rank {
        Some(r) => r.to_string(),
        None => ">10".to_owned(),
    }
}

/// Formats one regenerated Table 2 row from the three weight-mode outcomes and
/// the baseline prover outcome.
pub fn table2_row(
    bench: &Benchmark,
    no_weights: &BenchmarkOutcome,
    no_corpus: &BenchmarkOutcome,
    all: &BenchmarkOutcome,
    provers: &ProverOutcome,
) -> String {
    format!(
        "{:>2} {:<38} {:>5} {:>8} | {:>4} {:>8} | {:>4} {:>8} | {:>4} {:>6} {:>6} {:>6} {:>8} | {:>9} {:>9}",
        bench.id,
        bench.name,
        bench.paper.size,
        all.initial_declarations,
        rank_str(no_weights.rank),
        no_weights.timings.total().as_millis(),
        rank_str(no_corpus.rank),
        no_corpus.timings.total().as_millis(),
        rank_str(all.rank),
        all.prepare_time.as_millis(),
        all.timings.prove().as_millis(),
        all.timings.reconstruction.as_millis(),
        all.timings.total().as_millis(),
        provers.forward_time.as_millis(),
        provers.g4ip_time.as_millis(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use insynth_core::{PhaseTimings, SynthesisStats};

    fn outcome(rank: Option<usize>, total_ms: u64) -> BenchmarkOutcome {
        BenchmarkOutcome {
            rank,
            initial_declarations: 1000,
            prepare_time: Duration::from_millis(7),
            timings: PhaseTimings {
                explore: Duration::from_millis(total_ms / 2),
                patterns: Duration::ZERO,
                reconstruction: Duration::from_millis(total_ms / 2),
            },
            stats: SynthesisStats::default(),
            suggestions: vec![],
        }
    }

    #[test]
    fn summary_counts_found_and_rank_one() {
        let outcomes = vec![
            outcome(Some(1), 100),
            outcome(Some(3), 50),
            outcome(None, 10),
        ];
        let summary = summarize(&outcomes);
        assert_eq!(summary.total, 3);
        assert_eq!(summary.found, 2);
        assert_eq!(summary.rank_one, 1);
        assert!((summary.found_percent() - 66.666).abs() < 0.1);
        assert!((summary.rank_one_percent() - 33.333).abs() < 0.1);
    }

    #[test]
    fn empty_summary_has_zero_percentages() {
        let summary = summarize(&[]);
        assert_eq!(summary.found_percent(), 0.0);
        assert_eq!(summary.rank_one_percent(), 0.0);
        assert_eq!(summary.mean_total, Duration::ZERO);
        assert_eq!(summary.mean_prepare, Duration::ZERO);
    }

    #[test]
    fn summary_reports_prepare_separately_from_query_time() {
        let outcomes = vec![outcome(Some(1), 100), outcome(Some(2), 100)];
        let summary = summarize(&outcomes);
        assert_eq!(summary.mean_prepare, Duration::from_millis(7));
        assert_eq!(summary.mean_total, Duration::from_millis(100));
    }

    #[test]
    fn row_formatting_includes_ranks_and_times() {
        let bench = crate::benchmarks::all_benchmarks().remove(0);
        let provers = ProverOutcome {
            forward_verdict: Some(true),
            forward_time: Duration::from_millis(12),
            g4ip_verdict: Some(true),
            g4ip_time: Duration::from_millis(340),
        };
        let row = table2_row(
            &bench,
            &outcome(None, 800),
            &outcome(Some(2), 90),
            &outcome(Some(1), 60),
            &provers,
        );
        assert!(row.contains("AWTPermissionStringname"));
        assert!(row.contains(">10"));
        assert!(row.contains(" 1 "));
        // Header and row have the same number of columns when split on '|'.
        assert_eq!(
            row.matches('|').count(),
            table2_header().matches('|').count()
        );
    }
}
