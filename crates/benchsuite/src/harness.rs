//! The evaluation harness: environment construction, synthesis runs, prover
//! runs.
//!
//! The harness uses the session API so that environment preparation (σ and
//! index construction, paid once per program point) is measured separately
//! from query time (prove + reconstruction, paid per query) — the split the
//! paper's Table 2 reports, and the one that matters for the interactive
//! deployment of §7.5 where one point serves many queries.

use std::time::{Duration, Instant};

use insynth_apimodel::{extract, javaapi, render_term, ApiModel, ProgramPoint};
use insynth_core::{
    Engine, PhaseTimings, Query, SynthesisConfig, SynthesisStats, TypeEnv, WeightConfig, WeightMode,
};
use insynth_corpus::{synthetic_corpus, Corpus};
use insynth_provers::{forward, g4ip, inhabitation_query, ProverLimits};

use crate::benchmarks::Benchmark;

/// Configuration of a harness run.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Number of snippets to request (`N`; the paper uses 10).
    pub n: usize,
    /// Prover (exploration + pattern generation) time limit.
    pub prover_time_limit: Duration,
    /// Reconstruction time limit.
    pub reconstruction_time_limit: Duration,
    /// Seed of the synthetic corpus.
    pub corpus_seed: u64,
    /// Scale factor applied to the benchmark's filler-package count. `1.0`
    /// reproduces the paper's environment sizes; smaller values make debug
    /// runs and unit tests faster.
    pub filler_scale: f64,
    /// Time limit for each baseline prover.
    pub baseline_time_limit: Duration,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            n: 10,
            prover_time_limit: Duration::from_millis(500),
            reconstruction_time_limit: Duration::from_secs(7),
            corpus_seed: 42,
            filler_scale: 1.0,
            baseline_time_limit: Duration::from_secs(10),
        }
    }
}

impl HarnessConfig {
    /// A configuration suitable for unit tests: small environments (no
    /// filler) so that debug builds stay fast.
    pub fn fast() -> Self {
        HarnessConfig {
            filler_scale: 0.0,
            ..HarnessConfig::default()
        }
    }
}

/// The outcome of running one benchmark under one weight mode.
#[derive(Debug, Clone)]
pub struct BenchmarkOutcome {
    /// 1-based rank of the expected snippet among the returned suggestions.
    pub rank: Option<usize>,
    /// Number of declarations in the constructed environment.
    pub initial_declarations: usize,
    /// Time to prepare the environment (σ-lowering plus `Select`/weight index
    /// construction) — paid once per program point, not per query.
    pub prepare_time: Duration,
    /// Phase timings of the query itself (prove + reconstruction).
    pub timings: PhaseTimings,
    /// Engine statistics of the run.
    pub stats: SynthesisStats,
    /// The rendered top suggestions (up to `N`).
    pub suggestions: Vec<String>,
}

/// The outcome of running one benchmark's query several times against one
/// prepared session — the amortization experiment: preparation is paid once,
/// each query only pays prove + reconstruction.
#[derive(Debug, Clone)]
pub struct RepeatedOutcome {
    /// Environment preparation time, paid once for the whole series.
    pub prepare_time: Duration,
    /// Per-query wall-clock times (prove + reconstruction), one per query.
    pub query_times: Vec<Duration>,
    /// The outcome of the final query (every repetition is identical).
    pub outcome: BenchmarkOutcome,
}

impl RepeatedOutcome {
    /// Total wall-clock across the series, preparation included.
    pub fn total_time(&self) -> Duration {
        self.prepare_time + self.query_times.iter().sum::<Duration>()
    }

    /// Mean per-query time, preparation excluded.
    pub fn mean_query_time(&self) -> Duration {
        if self.query_times.is_empty() {
            return Duration::ZERO;
        }
        self.query_times.iter().sum::<Duration>() / self.query_times.len() as u32
    }
}

/// Timing/verdict of the two baseline provers on a benchmark's inhabitation
/// query.
#[derive(Debug, Clone)]
pub struct ProverOutcome {
    /// Forward (inverse-method style, "Imogen-like") prover verdict; `None`
    /// means the limits were hit.
    pub forward_verdict: Option<bool>,
    /// Forward prover wall-clock time.
    pub forward_time: Duration,
    /// Backward G4ip ("fCube-like") prover verdict.
    pub g4ip_verdict: Option<bool>,
    /// G4ip prover wall-clock time.
    pub g4ip_time: Duration,
}

/// Builds the API model for a benchmark: every hand-modelled package plus the
/// benchmark's share of filler packages.
fn build_model(bench: &Benchmark, config: &HarnessConfig) -> (ApiModel, Vec<String>) {
    let mut model = ApiModel::new();
    model.add_package(javaapi::java_lang());
    model.add_package(javaapi::java_io());
    model.add_package(javaapi::java_awt());
    model.add_package(javaapi::java_awt_event());
    model.add_package(javaapi::javax_swing());
    model.add_package(javaapi::java_net());
    model.add_package(javaapi::java_util());
    model.add_package(javaapi::scala_ide());

    let filler = (bench.filler_packages() as f64 * config.filler_scale).round() as usize;
    let mut filler_names = Vec::with_capacity(filler);
    for i in 0..filler {
        let package = javaapi::filler_package(i, 40, 12);
        filler_names.push(package.name.clone());
        model.add_package(package);
    }
    (model, filler_names)
}

/// Builds the environment (declaration list with corpus frequencies) a
/// benchmark sees.
pub fn build_environment(bench: &Benchmark, config: &HarnessConfig) -> TypeEnv {
    let (model, filler_names) = build_model(bench, config);

    let mut point = ProgramPoint::new();
    for (name, ty) in &bench.locals {
        point = point.with_local(*name, ty.clone());
    }
    for (text, ty) in &bench.literals {
        point = point.with_literal(*text, ty.clone());
    }
    for import in &bench.imports {
        point = point.with_import(*import);
    }
    for filler in &filler_names {
        point = point.with_import(filler.clone());
    }

    let mut env = extract(&model, &point);
    let corpus: Corpus = synthetic_corpus(&model, config.corpus_seed);
    corpus.apply(&mut env);
    env
}

/// The engine a benchmark runs under: the weight mode plus the harness's time
/// budgets.
fn benchmark_engine(mode: WeightMode, config: &HarnessConfig) -> Engine {
    Engine::new(SynthesisConfig {
        weights: WeightConfig::new(mode),
        prover_time_limit: Some(config.prover_time_limit),
        reconstruction_time_limit: Some(config.reconstruction_time_limit),
        ..SynthesisConfig::default()
    })
}

fn outcome_from(
    env: &TypeEnv,
    bench: &Benchmark,
    prepare_time: Duration,
    result: &insynth_core::SynthesisResult,
) -> BenchmarkOutcome {
    let suggestions: Vec<String> = result
        .snippets
        .iter()
        .map(|s| render_term(&s.term))
        .collect();
    let rank = suggestions
        .iter()
        .position(|s| s == &bench.expected)
        .map(|i| i + 1);

    BenchmarkOutcome {
        rank,
        initial_declarations: env.len(),
        prepare_time,
        timings: result.timings,
        stats: result.stats,
        suggestions,
    }
}

/// Runs one benchmark under the given weight mode and returns the rank of the
/// expected snippet plus timings (preparation reported separately from the
/// query).
pub fn run_benchmark(
    bench: &Benchmark,
    mode: WeightMode,
    config: &HarnessConfig,
) -> BenchmarkOutcome {
    let env = build_environment(bench, config);
    let engine = benchmark_engine(mode, config);
    let session = engine.prepare(&env);
    let result = session.query(&Query::new(bench.goal.clone()).with_n(config.n));
    outcome_from(&env, bench, session.prepare_time(), &result)
}

/// Runs one benchmark's query `repeats` times against a single prepared
/// session. Preparation happens exactly once — the per-query times cover only
/// prove + reconstruction, demonstrating the amortization the session API
/// exists for. The first repetition additionally builds (and caches) the
/// goal's derivation graph; later repetitions skip exploration and pattern
/// generation entirely, so expect `query_times[0]` to dominate the rest.
///
/// `repeats` is clamped to at least 1 (the final query's outcome is always
/// reported); `query_times.len()` equals the clamped count. Results are
/// identical across repetitions, cached or not.
pub fn run_benchmark_repeated(
    bench: &Benchmark,
    mode: WeightMode,
    config: &HarnessConfig,
    repeats: usize,
) -> RepeatedOutcome {
    let env = build_environment(bench, config);
    let engine = benchmark_engine(mode, config);
    let session = engine.prepare(&env);
    let query = Query::new(bench.goal.clone()).with_n(config.n);

    let repeats = repeats.max(1);
    let mut query_times = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let started = Instant::now();
        let result = session.query(&query);
        query_times.push(started.elapsed());
        last = Some(result);
    }
    let result = last.expect("at least one query ran");

    RepeatedOutcome {
        prepare_time: session.prepare_time(),
        query_times,
        outcome: outcome_from(&env, bench, session.prepare_time(), &result),
    }
}

/// Runs the two baseline provers on the benchmark's inhabitation query.
pub fn run_provers(bench: &Benchmark, config: &HarnessConfig) -> ProverOutcome {
    let env = build_environment(bench, config);
    let (hyps, goal) = inhabitation_query(&env, &bench.goal);
    let limits = ProverLimits {
        time_limit: config.baseline_time_limit,
        ..ProverLimits::default()
    };

    let started = Instant::now();
    let forward_verdict = forward::prove(&hyps, &goal, &limits);
    let forward_time = started.elapsed();

    let started = Instant::now();
    let g4ip_verdict = g4ip::prove(&hyps, &goal, &limits);
    let g4ip_time = started.elapsed();

    ProverOutcome {
        forward_verdict,
        forward_time,
        g4ip_verdict,
        g4ip_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::all_benchmarks;

    fn benchmark(name: &str) -> Benchmark {
        all_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .expect("benchmark exists")
    }

    #[test]
    fn file_input_stream_benchmark_is_rank_one() {
        let bench = benchmark("FileInputStreamStringname");
        let outcome = run_benchmark(&bench, WeightMode::Full, &HarnessConfig::fast());
        assert_eq!(
            outcome.rank,
            Some(1),
            "suggestions: {:?}",
            outcome.suggestions
        );
    }

    #[test]
    fn nested_constructor_benchmark_is_found() {
        let bench = benchmark("BufferedInputStreamFileInputStream");
        let outcome = run_benchmark(&bench, WeightMode::Full, &HarnessConfig::fast());
        assert!(
            outcome.rank.is_some(),
            "suggestions: {:?}",
            outcome.suggestions
        );
        assert!(outcome.rank.unwrap() <= 10);
    }

    #[test]
    fn literal_benchmark_uses_the_literal() {
        let bench = benchmark("FileWriterLPT1");
        let outcome = run_benchmark(&bench, WeightMode::Full, &HarnessConfig::fast());
        assert!(
            outcome.rank.is_some(),
            "suggestions: {:?}",
            outcome.suggestions
        );
    }

    #[test]
    fn environment_size_scales_with_filler() {
        let bench = benchmark("GridBagConstraints");
        let small = build_environment(&bench, &HarnessConfig::fast());
        let full = build_environment(&bench, &HarnessConfig::default());
        assert!(full.len() > small.len());
        // The full environment approximates the paper's #Initial (8402) within ~25%.
        let target = bench.paper.initial as f64;
        assert!((full.len() as f64) > target * 0.75, "got {}", full.len());
        assert!((full.len() as f64) < target * 1.25, "got {}", full.len());
    }

    #[test]
    fn provers_agree_with_the_engine_on_inhabitation() {
        let bench = benchmark("DatagramSocket");
        let outcome = run_provers(&bench, &HarnessConfig::fast());
        assert_eq!(outcome.forward_verdict, Some(true));
        assert_eq!(outcome.g4ip_verdict, Some(true));
    }

    #[test]
    fn swing_benchmark_with_two_locals_is_found() {
        let bench = benchmark("TimerintvalueActionListeneract");
        let outcome = run_benchmark(&bench, WeightMode::Full, &HarnessConfig::fast());
        assert!(
            outcome.rank.is_some(),
            "suggestions: {:?}",
            outcome.suggestions
        );
    }

    #[test]
    fn prepare_time_is_reported_separately_from_query_time() {
        let bench = benchmark("FileInputStreamStringname");
        let outcome = run_benchmark(&bench, WeightMode::Full, &HarnessConfig::fast());
        // Preparation did real work and is not folded into the query phases.
        assert!(outcome.prepare_time > Duration::ZERO);
        assert_eq!(
            outcome.timings.total(),
            outcome.timings.prove() + outcome.timings.reconstruction
        );
    }

    #[test]
    fn repeated_runs_prepare_once_and_time_each_query() {
        let bench = benchmark("FileInputStreamStringname");
        let repeated = run_benchmark_repeated(&bench, WeightMode::Full, &HarnessConfig::fast(), 4);
        assert_eq!(repeated.query_times.len(), 4);
        assert_eq!(repeated.outcome.rank, Some(1));
        // One prepare for the whole series, surfaced consistently.
        assert_eq!(repeated.outcome.prepare_time, repeated.prepare_time);
        assert!(repeated.total_time() >= repeated.prepare_time);
        assert!(repeated.mean_query_time() > Duration::ZERO);
    }
}
