//! End-to-end test of the `insynth-server` binary: spawn it, drive the
//! scripted stdio session (open → complete → paginate → update → complete →
//! cancel → stats → close → malformed line), and hold the transcript to the
//! acceptance bar — byte-identical across runs, pagination resumes with
//! zero extra graph builds, and a cancelled request gets a well-formed
//! error reply while the loop keeps serving.

use std::io::Write;
use std::process::{Command, Stdio};

use insynth_server::{parse_json, Json};

const SCRIPT: &str = include_str!("data/script.jsonl");

/// Runs the binary over the script and returns raw stdout.
fn run_scripted_session(extra_args: &[&str]) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_insynth-server"))
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn insynth-server");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(SCRIPT.as_bytes())
        .expect("write script");
    // Dropping stdin (write_all's temporary) closes it; the server exits at
    // EOF once every response is flushed.
    let output = child.wait_with_output().expect("collect output");
    assert!(
        output.status.success(),
        "server exited with {:?}, stderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("responses are UTF-8")
}

fn field<'a>(response: &'a Json, path: &[&str]) -> &'a Json {
    let mut cur = response;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing {path:?} in {response}"));
    }
    cur
}

fn terms(result: &Json) -> Vec<String> {
    field(result, &["result", "values"])
        .as_arr()
        .expect("values array")
        .iter()
        .map(|v| {
            v.get("term")
                .and_then(Json::as_str)
                .expect("term")
                .to_string()
        })
        .collect()
}

#[test]
fn scripted_session_is_byte_stable_and_honors_the_protocol() {
    let first = run_scripted_session(&[]);
    let second = run_scripted_session(&[]);
    assert_eq!(first, second, "transcripts differ between runs");

    let responses: Vec<Json> = first
        .lines()
        .map(|l| parse_json(l).expect("response JSON"))
        .collect();
    assert_eq!(responses.len(), 12, "one response per script line");

    // Responses come back in request order; the malformed final line
    // answers with id null.
    for (i, response) in responses.iter().take(11).enumerate() {
        assert_eq!(
            field(response, &["id"]).as_u64(),
            Some(i as u64 + 1),
            "out-of-order response: {response}"
        );
    }

    // 1: env/open — session 1, both declarations, a stable fingerprint.
    assert_eq!(
        field(&responses[0], &["result", "session"]).as_u64(),
        Some(1)
    );
    assert_eq!(field(&responses[0], &["result", "decls"]).as_u64(), Some(2));
    let fingerprint = field(&responses[0], &["result", "fingerprint"])
        .as_str()
        .expect("fingerprint string");
    assert_eq!(fingerprint.len(), 32, "u128 hex fingerprint");

    // 2: first page — the three cheapest inhabitants of A, more available.
    assert_eq!(terms(&responses[1]), ["a", "s(a)", "s(s(a))"]);
    assert_eq!(
        field(&responses[1], &["result", "has_more"]).as_bool(),
        Some(true)
    );
    assert_eq!(
        field(&responses[1], &["result", "resumed"]).as_bool(),
        Some(false)
    );
    assert_eq!(
        field(&responses[1], &["result", "cursor"]).as_u64(),
        Some(3)
    );

    // 3: continuation — resumes the suspended walk, next two terms.
    assert_eq!(terms(&responses[2]), ["s(s(s(a)))", "s(s(s(s(a))))"]);
    assert_eq!(
        field(&responses[2], &["result", "resumed"]).as_bool(),
        Some(true)
    );
    assert_eq!(
        field(&responses[2], &["result", "cursor"]).as_u64(),
        Some(5)
    );

    // 4: stats after open + page + continuation — one σ run, one graph
    // build: the paginated continuation cost zero extra builds.
    let engine = field(&responses[3], &["result", "engine"]);
    assert_eq!(field(engine, &["prepare_count"]).as_u64(), Some(1));
    assert_eq!(field(engine, &["graph_build_count"]).as_u64(), Some(1));
    assert_eq!(field(engine, &["suspended_walk_count"]).as_u64(), Some(1));

    // 5: env/update — same session id, new fingerprint, three decls.
    assert_eq!(
        field(&responses[4], &["result", "session"]).as_u64(),
        Some(1)
    );
    assert_eq!(field(&responses[4], &["result", "decls"]).as_u64(), Some(3));
    assert_ne!(
        field(&responses[4], &["result", "fingerprint"]).as_str(),
        Some(fingerprint),
        "the edited point has a new content address"
    );

    // 6: the edited environment surfaces `b` on the first page.
    assert_eq!(terms(&responses[5]), ["a", "b", "s(a)"]);
    assert_eq!(
        field(&responses[5], &["result", "resumed"]).as_bool(),
        Some(false)
    );

    // 7: $/cancel for a not-yet-arrived id is remembered.
    assert_eq!(
        field(&responses[6], &["result", "cancelled"]).as_u64(),
        Some(8)
    );
    assert_eq!(
        field(&responses[6], &["result", "in_flight"]).as_bool(),
        Some(false)
    );

    // 8: the cancelled request gets a well-formed error reply...
    assert_eq!(
        field(&responses[7], &["error", "code"]).as_f64(),
        Some(-32001.0)
    );
    assert_eq!(
        field(&responses[7], &["error", "message"]).as_str(),
        Some("request cancelled")
    );

    // 9: ...and the loop keeps serving: the next completion resumes the
    // walk request 6 parked.
    assert_eq!(terms(&responses[8]), ["a"]);
    assert_eq!(
        field(&responses[8], &["result", "resumed"]).as_bool(),
        Some(true)
    );

    // 10: final counters — the whole session's economics, deterministic.
    let result = field(&responses[9], &["result"]);
    assert_eq!(field(result, &["sessions"]).as_u64(), Some(1));
    assert_eq!(
        field(result, &["engine", "prepare_count"]).as_u64(),
        Some(2)
    );
    assert_eq!(
        field(result, &["engine", "graph_build_count"]).as_u64(),
        Some(2)
    );
    assert_eq!(field(result, &["completions", "count"]).as_u64(), Some(4));
    assert_eq!(field(result, &["completions", "values"]).as_u64(), Some(9));
    assert_eq!(field(result, &["completions", "resumed"]).as_u64(), Some(2));
    assert_eq!(
        field(result, &["completions", "cancelled"]).as_u64(),
        Some(1)
    );
    assert_eq!(
        field(result, &["requests", "completion/complete"]).as_u64(),
        Some(5)
    );
    assert_eq!(field(result, &["requests", "$/cancel"]).as_u64(), Some(1));

    // 11: close.
    assert_eq!(
        field(&responses[10], &["result", "closed"]).as_u64(),
        Some(1)
    );

    // 12: the non-JSON line answers with a parse error and id null.
    assert!(field(&responses[11], &["id"]).is_null());
    assert_eq!(
        field(&responses[11], &["error", "code"]).as_f64(),
        Some(-32700.0)
    );
}

#[test]
fn pooled_server_still_answers_in_arrival_order() {
    // A 4-worker pool may interleave execution (so counters and even
    // individual outcomes can differ from the sequential run — a completion
    // can race ahead of the open it depends on), but the output sequencer
    // guarantees the *order* of replies always matches the order of
    // requests.
    let pooled = run_scripted_session(&["--workers", "4"]);
    let responses: Vec<Json> = pooled
        .lines()
        .map(|l| parse_json(l).expect("response JSON"))
        .collect();
    assert_eq!(responses.len(), 12);
    for (i, response) in responses.iter().take(11).enumerate() {
        assert_eq!(field(response, &["id"]).as_u64(), Some(i as u64 + 1));
    }
    assert!(field(&responses[11], &["id"]).is_null());
}
