//! In-process tests of the `env/analyze` method: the report's shape, its
//! determinism, dead-declaration detection over the wire, and the analysis
//! counters in `server/stats`.

use insynth_core::{Engine, SynthesisConfig};
use insynth_server::{Json, Server, ServerConfig};

fn server() -> Server {
    Server::new(
        Engine::new(SynthesisConfig::default()),
        ServerConfig::default(),
    )
}

fn field<'a>(response: &'a Json, path: &[&str]) -> &'a Json {
    let mut cur = response;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing {path:?} in {response}"));
    }
    cur
}

const OPEN: &str = r#"{"id":1,"method":"env/open","params":{"env":[
    {"name":"a","ty":"A","kind":"local"},
    {"name":"s","ty":{"args":["A"],"ret":"A"},"kind":"imported"},
    {"name":"dead","ty":{"args":["Missing"],"ret":"A"},"kind":"imported"}
]}}"#;

#[test]
fn env_analyze_reports_dead_decls_and_is_deterministic() {
    let server = server();
    let open = server.handle_line(&OPEN.replace('\n', " "));
    assert_eq!(field(&open, &["result", "session"]).as_u64(), Some(1));

    let request = r#"{"id":2,"method":"env/analyze","params":{"session":1}}"#;
    let first = server.handle_line(request);
    let second = server.handle_line(request);
    assert_eq!(
        first.to_string().replace("\"id\":2", ""),
        second.to_string().replace("\"id\":2", ""),
        "repeated analyses must be byte-identical"
    );

    let result = field(&first, &["result"]);
    assert_eq!(field(result, &["decl_count"]).as_u64(), Some(3));
    assert_eq!(field(result, &["weights_monotone"]).as_bool(), Some(true));
    // `dead : Missing -> A` is index 2 in the canonical declaration list.
    let dead: Vec<u64> = field(result, &["dead_decls"])
        .as_arr()
        .expect("dead_decls array")
        .iter()
        .map(|v| v.as_u64().expect("index"))
        .collect();
    assert_eq!(dead, [2]);
    let codes: Vec<&str> = field(result, &["diagnostics"])
        .as_arr()
        .expect("diagnostics array")
        .iter()
        .map(|d| d.get("code").and_then(Json::as_str).expect("code"))
        .collect();
    assert!(codes.contains(&"dead-decl"), "codes: {codes:?}");
    assert!(codes.contains(&"uninhabitable-type"), "codes: {codes:?}");

    // The second call was a cache hit: one analysis ran, two were served.
    let stats =
        server.handle_line(r#"{"id":4,"method":"server/stats","params":{"counters_only":true}}"#);
    let engine = field(&stats, &["result", "engine"]);
    assert_eq!(field(engine, &["analysis_count"]).as_u64(), Some(1));
    assert_eq!(field(engine, &["cached_analysis_count"]).as_u64(), Some(1));
    assert_eq!(
        field(&stats, &["result", "requests", "env/analyze"]).as_u64(),
        Some(2)
    );
}

#[test]
fn env_analyze_requires_an_open_session() {
    let server = server();
    let reply = server.handle_line(r#"{"id":1,"method":"env/analyze","params":{"session":7}}"#);
    assert_eq!(field(&reply, &["error", "code"]).as_f64(), Some(-32000.0));
}
