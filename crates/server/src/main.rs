//! The `insynth-server` binary: serve the InSynth engine over stdio.
//!
//! ```text
//! insynth-server [--workers N] [--max-sessions N] [--max-n N] [--max-queue N]
//! ```
//!
//! Reads one JSON request per line from stdin, writes one JSON response per
//! line to stdout, and exits cleanly at end-of-input. See the library docs
//! for the protocol reference.

use std::io;
use std::process::ExitCode;

use insynth_core::{Engine, SynthesisConfig};
use insynth_server::{run, Server, ServerConfig};

const USAGE: &str =
    "usage: insynth-server [--workers N] [--max-sessions N] [--max-n N] [--max-queue N]

A persistent completion server: line-delimited JSON requests on stdin,
one response per line on stdout. Methods: env/open, env/update,
completion/complete, session/close, server/stats, $/cancel.";

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--workers" | "--max-sessions" | "--max-n" | "--max-queue" => {
                let value = args
                    .next()
                    .ok_or_else(|| format!("{flag} needs a value"))?
                    .parse::<usize>()
                    .map_err(|_| format!("{flag} needs an unsigned integer"))?;
                match flag.as_str() {
                    "--workers" => config.workers = value.max(1),
                    "--max-sessions" => config.max_sessions = value,
                    "--max-n" => config.max_n = value,
                    "--max-queue" => config.max_queue_depth = value,
                    _ => unreachable!(),
                }
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let server = Server::new(Engine::new(SynthesisConfig::default()), config);
    let stdin = io::stdin().lock();
    // `Stdout` (unlike `StdoutLock`) is `Send`, which the sequencer thread
    // needs; it locks per write, and the sequencer is the only writer.
    match run(&server, stdin, io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("insynth-server: I/O error: {err}");
            ExitCode::FAILURE
        }
    }
}
