//! The dispatcher and handlers: a [`Server`] owns the engine, the session
//! table, the cancellation registry, and the metrics, and turns one parsed
//! request into one response object.
//!
//! Threading contract: every method takes `&self`; the transport may call
//! them from any worker. `$/cancel` and envelope errors are *resolved* at
//! parse time (on the transport's reader thread) via [`Server::parse_line`]
//! so a cancellation is never stuck in the queue behind the request it
//! targets — but the metrics they imply are deferred ([`Bookkeeping`],
//! applied via [`Server::record`] when the canned response is served in
//! arrival order, keeping scripted stats deterministic). Everything else
//! executes via [`Server::execute`].
//!
//! Admission control is deliberately boring: page sizes clamp to
//! [`ServerConfig::max_n`], per-request step/time budgets can only *lower*
//! the engine's configured caps (never raise them), and `env/open` beyond
//! [`ServerConfig::max_sessions`] is refused — so one pathological client
//! request cannot starve the loop or grow state without bound.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use insynth_core::{AnalysisReport, CancelToken, Engine, Query, Session};

use crate::json::{parse, Json};
use crate::metrics::{Method, Metrics};
use crate::protocol::{
    delta_from_json, env_from_json, parse_request, response_err, response_ok, ty_from_json,
    ProtocolError, Request, CANCELLED, METHOD_NOT_FOUND, PARSE_ERROR, SESSION_LIMIT,
    SESSION_NOT_FOUND,
};

/// Server-level admission limits. The engine's own [`SynthesisConfig`]
/// budgets stay the per-query ceiling; these bound the server around it.
///
/// [`SynthesisConfig`]: insynth_core::SynthesisConfig
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently open sessions (`env/open` refuses beyond it).
    pub max_sessions: usize,
    /// Maximum page size per `completion/complete`; larger `n`s clamp.
    pub max_n: usize,
    /// Maximum parsed-but-unserved requests before the transport refuses
    /// new work with an `OVERLOADED` error.
    pub max_queue_depth: usize,
    /// Worker threads serving requests. The default of 1 keeps scripted
    /// transcripts byte-stable (responses are sequenced in arrival order
    /// regardless, but single-flight also makes engine counters exact).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            max_n: 256,
            max_queue_depth: 256,
            workers: 1,
        }
    }
}

#[derive(Debug, Default)]
struct SessionTable {
    next_id: u64,
    open: HashMap<u64, Arc<Session>>,
}

/// In-flight cancellation state. Tokens register at parse time (reader
/// thread), so `$/cancel` can reach a request that is still queued; ids
/// cancelled before their request ever arrives are remembered and applied
/// on arrival.
#[derive(Debug, Default)]
struct CancelRegistry {
    active: HashMap<u64, CancelToken>,
    pre_cancelled: HashSet<u64>,
}

/// Metric bookkeeping a canned response implies. Recorded via
/// [`Server::record`] when the response is *served* (in arrival order, on a
/// worker), not when the line was parsed: the reader thread runs well ahead
/// of the workers, and counters bumped at parse time would race with the
/// `server/stats` requests a scripted session interleaves — the transcript
/// would no longer be byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bookkeeping {
    /// One protocol error (unparseable line or bad envelope).
    Error,
    /// One `$/cancel` request, acknowledged.
    Cancel,
    /// One `$/cancel` request that was itself malformed.
    CancelError,
}

/// What the reader thread got out of one input line.
#[derive(Debug)]
pub enum Parsed {
    /// A request to enqueue for a worker, with its pre-registered token.
    Job {
        request: Request,
        cancel: CancelToken,
    },
    /// A pre-computed response (envelope errors, `$/cancel` acks) — still
    /// sequenced into the output at this line's position, with its metrics
    /// applied via [`Server::record`] only when it is served.
    Immediate {
        response: Json,
        bookkeeping: Bookkeeping,
    },
}

/// The completion service: engine + sessions + cancellation + metrics.
#[derive(Debug)]
pub struct Server {
    engine: Engine,
    config: ServerConfig,
    metrics: Metrics,
    sessions: Mutex<SessionTable>,
    cancels: Mutex<CancelRegistry>,
    /// Queue depth, maintained by the transport (parse increments, worker
    /// pickup decrements); `parse_line` refuses work beyond the cap.
    queued: AtomicU64,
}

fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Server {
    pub fn new(engine: Engine, config: ServerConfig) -> Self {
        Server {
            engine,
            config,
            metrics: Metrics::new(),
            sessions: Mutex::new(SessionTable::default()),
            cancels: Mutex::new(CancelRegistry::default()),
            queued: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of requests parsed but not yet picked up by a worker.
    pub fn queue_depth(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    pub(crate) fn enqueue(&self) {
        self.queued.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn dequeue(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
    }

    /// Reader-thread entry point: parse one input line into either a job
    /// (with its cancellation token registered) or an immediate response.
    ///
    /// `$/cancel` is handled here, not in a worker: if the target request
    /// is registered its token fires at once (a worker mid-walk observes it
    /// at the next pop boundary); otherwise the id is remembered and the
    /// request is refused on arrival. Both are acknowledged with
    /// `{"cancelled": target, "in_flight": bool}`.
    pub fn parse_line(&self, line: &str) -> Parsed {
        let value = match parse(line) {
            Ok(value) => value,
            Err(err) => {
                return Parsed::Immediate {
                    response: response_err(
                        None,
                        &ProtocolError::new(PARSE_ERROR, format!("invalid JSON: {err}")),
                    ),
                    bookkeeping: Bookkeeping::Error,
                };
            }
        };
        let request = match parse_request(&value) {
            Ok(request) => request,
            Err(err) => {
                let id = value.get("id").and_then(Json::as_u64);
                return Parsed::Immediate {
                    response: response_err(id, &err),
                    bookkeeping: Bookkeeping::Error,
                };
            }
        };
        if request.method == Method::Cancel.name() {
            let (response, bookkeeping) = match request.params.get("id").and_then(Json::as_u64) {
                Some(target) => {
                    let in_flight = self.cancel_request(target);
                    (
                        response_ok(
                            request.id,
                            Json::object([
                                ("cancelled", Json::from(target)),
                                ("in_flight", Json::from(in_flight)),
                            ]),
                        ),
                        Bookkeeping::Cancel,
                    )
                }
                None => (
                    response_err(
                        Some(request.id),
                        &ProtocolError::invalid_params("$/cancel needs integer \"id\""),
                    ),
                    Bookkeeping::CancelError,
                ),
            };
            return Parsed::Immediate {
                response,
                bookkeeping,
            };
        }
        let cancel = self.register_cancel(request.id);
        Parsed::Job { request, cancel }
    }

    /// Applies the metric bookkeeping of a canned response. Called by
    /// whoever *serves* the response (a transport worker, or
    /// [`handle_line`](Server::handle_line)) so counter updates happen in
    /// arrival order, never racing ahead on the reader thread.
    pub fn record(&self, bookkeeping: Bookkeeping) {
        match bookkeeping {
            Bookkeeping::Error => self.metrics.record_error(),
            Bookkeeping::Cancel => self.metrics.record_request(Method::Cancel),
            Bookkeeping::CancelError => {
                self.metrics.record_request(Method::Cancel);
                self.metrics.record_error();
            }
        }
    }

    /// Fires the token of an in-flight request (returning `true`), or
    /// records the id for pre-arrival cancellation (returning `false`).
    pub fn cancel_request(&self, target: u64) -> bool {
        let mut registry = lock_recovering(&self.cancels);
        match registry.active.get(&target) {
            Some(token) => {
                token.cancel();
                true
            }
            None => {
                registry.pre_cancelled.insert(target);
                false
            }
        }
    }

    /// Registers a token for `request_id`, pre-fired if a `$/cancel` for
    /// that id already arrived.
    fn register_cancel(&self, request_id: u64) -> CancelToken {
        let token = CancelToken::new();
        let mut registry = lock_recovering(&self.cancels);
        if registry.pre_cancelled.remove(&request_id) {
            token.cancel();
        }
        registry.active.insert(request_id, token.clone());
        token
    }

    fn unregister_cancel(&self, request_id: u64) {
        lock_recovering(&self.cancels).active.remove(&request_id);
    }

    /// Worker entry point: dispatch one parsed request to its handler and
    /// package the response. Never panics on bad input — every failure is
    /// an error reply, and the loop keeps serving.
    pub fn execute(&self, request: &Request, cancel: &CancelToken) -> Json {
        let started = Instant::now();
        let outcome = match Method::from_name(&request.method) {
            None => Err(ProtocolError::new(
                METHOD_NOT_FOUND,
                format!("unknown method {:?}", request.method),
            )),
            Some(method) => {
                self.metrics.record_request(method);
                if cancel.is_cancelled() {
                    Err(ProtocolError::cancelled())
                } else {
                    match method {
                        Method::EnvOpen => self.env_open(&request.params),
                        Method::EnvUpdate => self.env_update(&request.params),
                        Method::EnvAnalyze => self.env_analyze(&request.params),
                        Method::Complete => self.complete(&request.params, cancel, started),
                        Method::SessionClose => self.session_close(&request.params),
                        Method::Stats => self.stats(&request.params),
                        Method::Cancel => unreachable!("$/cancel is handled at parse time"),
                    }
                }
            }
        };
        self.unregister_cancel(request.id);
        match outcome {
            Ok(result) => response_ok(request.id, result),
            Err(err) => {
                if err.code == CANCELLED {
                    self.metrics.record_cancelled();
                } else {
                    self.metrics.record_error();
                }
                response_err(Some(request.id), &err)
            }
        }
    }

    /// Convenience for tests and embedders: parse + execute one line.
    pub fn handle_line(&self, line: &str) -> Json {
        match self.parse_line(line) {
            Parsed::Immediate {
                response,
                bookkeeping,
            } => {
                self.record(bookkeeping);
                response
            }
            Parsed::Job { request, cancel } => self.execute(&request, &cancel),
        }
    }

    fn env_open(&self, params: &Json) -> Result<Json, ProtocolError> {
        let env = env_from_json(
            params
                .get("env")
                .ok_or_else(|| ProtocolError::invalid_params("env/open needs \"env\""))?,
        )?;
        {
            let table = lock_recovering(&self.sessions);
            if table.open.len() >= self.config.max_sessions {
                return Err(ProtocolError::new(
                    SESSION_LIMIT,
                    format!("session table full ({} open)", table.open.len()),
                ));
            }
        }
        // Prepare outside the table lock: σ can be the expensive part, and
        // other workers' lookups must not wait on it.
        let session = Arc::new(self.engine.prepare(&env));
        let mut table = lock_recovering(&self.sessions);
        table.next_id += 1;
        let id = table.next_id;
        table.open.insert(id, Arc::clone(&session));
        Ok(session_summary(id, &session))
    }

    fn env_update(&self, params: &Json) -> Result<Json, ProtocolError> {
        let id = session_id(params)?;
        let delta = delta_from_json(
            params
                .get("delta")
                .ok_or_else(|| ProtocolError::invalid_params("env/update needs \"delta\""))?,
        )?;
        let session = self.lookup(id)?;
        // The session id now addresses the edited point; the previous
        // point's preparation and graphs stay cached on the engine, so
        // reverting the edit later is again incremental.
        let updated = Arc::new(session.update(&delta));
        lock_recovering(&self.sessions)
            .open
            .insert(id, Arc::clone(&updated));
        Ok(session_summary(id, &updated))
    }

    fn env_analyze(&self, params: &Json) -> Result<Json, ProtocolError> {
        let id = session_id(params)?;
        let session = self.lookup(id)?;
        // Served from the engine's fingerprint-keyed report cache when this
        // point (or a structural twin) was analyzed before; diagnostics are
        // deterministic, so repeated calls are byte-identical.
        let report = session.analyze();
        Ok(report_to_json(&report))
    }

    fn complete(
        &self,
        params: &Json,
        cancel: &CancelToken,
        started: Instant,
    ) -> Result<Json, ProtocolError> {
        let id = session_id(params)?;
        let session = self.lookup(id)?;
        let goal =
            ty_from_json(params.get("goal").ok_or_else(|| {
                ProtocolError::invalid_params("completion/complete needs \"goal\"")
            })?)?;
        let n = optional_u64(params, "n")?
            .unwrap_or(10)
            .min(self.config.max_n as u64) as usize;
        let cursor = optional_u64(params, "cursor")?.unwrap_or(0) as usize;

        let mut query = Query::new(goal)
            .with_n(cursor.saturating_add(n))
            .with_cancel_token(cancel.clone());
        // Per-request budget overrides are admission-clamped: they can
        // lower the engine's configured caps but never raise them.
        let engine_config = self.engine.config();
        if let Some(steps) = optional_u64(params, "max_steps")? {
            query = query.with_max_reconstruction_steps(
                (steps as usize).min(engine_config.max_reconstruction_steps),
            );
        }
        if let Some(depth) = optional_u64(params, "max_depth")? {
            query = query.with_max_depth(depth as usize);
        }
        if let Some(ms) = optional_u64(params, "timeout_ms")? {
            let requested = Duration::from_millis(ms);
            let capped = match engine_config.reconstruction_time_limit {
                Some(limit) => requested.min(limit),
                None => requested,
            };
            query = query.with_reconstruction_time_limit(Some(capped));
        }

        let result = session.query(&query);
        if cancel.is_cancelled() {
            return Err(ProtocolError::cancelled());
        }

        let values: Vec<Json> = result
            .snippets
            .iter()
            .skip(cursor)
            .map(|snippet| {
                Json::object([
                    ("term", Json::from(snippet.term.to_string())),
                    ("weight", Json::from(snippet.weight.value())),
                    ("depth", Json::from(snippet.depth)),
                    ("coercions", Json::from(snippet.coercions)),
                ])
            })
            .collect();
        self.metrics
            .record_completion(values.len(), result.stats.resumed, started.elapsed());
        Ok(Json::object([
            ("values", Json::Arr(values)),
            ("total", Json::from(result.snippets.len())),
            ("has_more", Json::from(result.stats.has_more)),
            ("cursor", Json::from(result.snippets.len())),
            ("resumed", Json::from(result.stats.resumed)),
            ("truncated", Json::from(result.stats.truncated)),
            ("steps", Json::from(result.stats.reconstruction_new_steps)),
        ]))
    }

    fn session_close(&self, params: &Json) -> Result<Json, ProtocolError> {
        let id = session_id(params)?;
        match lock_recovering(&self.sessions).open.remove(&id) {
            Some(_) => Ok(Json::object([("closed", Json::from(id))])),
            None => Err(unknown_session(id)),
        }
    }

    fn stats(&self, params: &Json) -> Result<Json, ProtocolError> {
        let counters_only = params
            .get("counters_only")
            .map(|v| {
                v.as_bool()
                    .ok_or_else(|| ProtocolError::invalid_params("\"counters_only\" is a bool"))
            })
            .transpose()?
            .unwrap_or(false);
        let engine = self.engine.stats();
        let sessions_open = lock_recovering(&self.sessions).open.len();
        let requests = Json::Obj(
            Method::ALL
                .into_iter()
                .map(|m| {
                    (
                        m.name().to_string(),
                        Json::from(self.metrics.request_count(m)),
                    )
                })
                .collect(),
        );
        let mut fields = vec![
            ("sessions", Json::from(sessions_open)),
            ("requests", requests),
            (
                "completions",
                Json::object([
                    ("count", Json::from(self.metrics.completion_count())),
                    ("values", Json::from(self.metrics.values_served())),
                    ("resumed", Json::from(self.metrics.resumed_count())),
                    ("cancelled", Json::from(self.metrics.cancelled_count())),
                    ("errors", Json::from(self.metrics.error_count())),
                ]),
            ),
            (
                "engine",
                Json::object([
                    ("prepare_count", Json::from(engine.prepare_count)),
                    (
                        "sharded_prepare_count",
                        Json::from(engine.sharded_prepare_count),
                    ),
                    ("sigma_shards", Json::from(engine.sigma_shards)),
                    (
                        "graph_build_threads",
                        Json::from(engine.graph_build_threads),
                    ),
                    ("graph_build_count", Json::from(engine.graph_build_count)),
                    ("cached_point_count", Json::from(engine.cached_point_count)),
                    ("cached_graph_count", Json::from(engine.cached_graph_count)),
                    (
                        "suspended_walk_count",
                        Json::from(engine.suspended_walk_count),
                    ),
                    ("analysis_count", Json::from(engine.analysis_count)),
                    (
                        "cached_analysis_count",
                        Json::from(engine.cached_analysis_count),
                    ),
                ]),
            ),
        ];
        if !counters_only {
            // Wall-clock-derived figures: useful interactively, omitted in
            // counters_only mode so scripted transcripts stay byte-stable.
            let opens = self.metrics.request_count(Method::EnvOpen)
                + self.metrics.request_count(Method::EnvUpdate);
            let completions = self.metrics.completion_count();
            let (p50, p99, mean, count) = self.metrics.latency_summary_us();
            fields.push((
                "rates",
                Json::object([
                    (
                        "queries_per_sec",
                        Json::from(self.metrics.queries_per_sec()),
                    ),
                    (
                        "point_cache_hit_rate",
                        hit_rate(opens, engine.prepare_count as u64),
                    ),
                    (
                        "graph_cache_hit_rate",
                        hit_rate(completions, engine.graph_build_count as u64),
                    ),
                    (
                        "walk_resume_rate",
                        hit_rate(completions, completions - self.metrics.resumed_count()),
                    ),
                ]),
            ));
            fields.push((
                "latency_us",
                Json::object([
                    ("p50", Json::from(p50)),
                    ("p99", Json::from(p99)),
                    ("mean", Json::from(mean)),
                    ("count", Json::from(count)),
                ]),
            ));
            fields.push((
                "prepare_time_us",
                Json::object([
                    ("total", Json::from(engine.prepare_time_ns / 1_000)),
                    (
                        "sharded",
                        Json::from(engine.sharded_prepare_time_ns / 1_000),
                    ),
                ]),
            ));
        }
        Ok(Json::object(fields))
    }

    fn lookup(&self, id: u64) -> Result<Arc<Session>, ProtocolError> {
        lock_recovering(&self.sessions)
            .open
            .get(&id)
            .cloned()
            .ok_or_else(|| unknown_session(id))
    }
}

/// The fraction of `requests` served without paying `misses` (0 when no
/// requests happened yet).
fn hit_rate(requests: u64, misses: u64) -> Json {
    if requests == 0 {
        Json::from(0.0)
    } else {
        Json::from(1.0 - (misses.min(requests) as f64 / requests as f64))
    }
}

fn unknown_session(id: u64) -> ProtocolError {
    ProtocolError::new(SESSION_NOT_FOUND, format!("no open session {id}"))
}

fn session_id(params: &Json) -> Result<u64, ProtocolError> {
    params
        .get("session")
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtocolError::invalid_params("needs integer \"session\""))
}

fn optional_u64(params: &Json, key: &str) -> Result<Option<u64>, ProtocolError> {
    match params.get(key) {
        None => Ok(None),
        Some(value) => value
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtocolError::invalid_params(format!("\"{key}\" must be an integer"))),
    }
}

/// Serializes an [`AnalysisReport`] for the `env/analyze` reply. Field
/// order is fixed and the report itself is deterministically sorted, so the
/// wire form is byte-stable across runs. Public so the `insynth-envlint`
/// CLI's `--json` output is byte-identical to the server's reply.
pub fn report_to_json(report: &AnalysisReport) -> Json {
    let diagnostics: Vec<Json> = report
        .diagnostics
        .iter()
        .map(|d| {
            Json::object([
                ("severity", Json::from(d.severity.to_string())),
                ("code", Json::from(d.kind.code())),
                ("subject", Json::from(d.subject.clone())),
                ("message", Json::from(d.message.clone())),
                (
                    "decls",
                    Json::Arr(d.decls.iter().map(|&i| Json::from(i)).collect()),
                ),
            ])
        })
        .collect();
    Json::object([
        ("decl_count", Json::from(report.decl_count)),
        ("member_types", Json::from(report.member_types)),
        ("producible_types", Json::from(report.producible_types)),
        (
            "unproducible_types",
            Json::Arr(
                report
                    .unproducible_types
                    .iter()
                    .map(|name| Json::from(name.clone()))
                    .collect(),
            ),
        ),
        (
            "dead_decls",
            Json::Arr(report.dead_decls.iter().map(|&i| Json::from(i)).collect()),
        ),
        ("weights_monotone", Json::from(report.weights_monotone)),
        ("diagnostics", Json::Arr(diagnostics)),
    ])
}

fn session_summary(id: u64, session: &Session) -> Json {
    Json::object([
        ("session", Json::from(id)),
        (
            "fingerprint",
            Json::from(format!("{}", session.fingerprint())),
        ),
        ("decls", Json::from(session.env().len())),
    ])
}
