//! Server-side observability: per-method request counters, completion
//! accounting, and a latency histogram — everything `server/stats` reports
//! beyond the engine's own [`EngineStatsSnapshot`].
//!
//! Counters are lock-free atomics; the histogram sits behind a mutex that is
//! touched once per completion. All of it is plumbing for *reporting*:
//! nothing here feeds back into synthesis, so metrics can never perturb
//! results.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The protocol methods the server dispatches, in wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    EnvOpen,
    EnvUpdate,
    EnvAnalyze,
    Complete,
    SessionClose,
    Stats,
    Cancel,
}

impl Method {
    pub const ALL: [Method; 7] = [
        Method::EnvOpen,
        Method::EnvUpdate,
        Method::EnvAnalyze,
        Method::Complete,
        Method::SessionClose,
        Method::Stats,
        Method::Cancel,
    ];

    /// The wire name, also the key under `requests` in `server/stats`.
    pub fn name(self) -> &'static str {
        match self {
            Method::EnvOpen => "env/open",
            Method::EnvUpdate => "env/update",
            Method::EnvAnalyze => "env/analyze",
            Method::Complete => "completion/complete",
            Method::SessionClose => "session/close",
            Method::Stats => "server/stats",
            Method::Cancel => "$/cancel",
        }
    }

    pub fn from_name(name: &str) -> Option<Method> {
        Method::ALL.into_iter().find(|m| m.name() == name)
    }

    fn index(self) -> usize {
        match self {
            Method::EnvOpen => 0,
            Method::EnvUpdate => 1,
            Method::EnvAnalyze => 2,
            Method::Complete => 3,
            Method::SessionClose => 4,
            Method::Stats => 5,
            Method::Cancel => 6,
        }
    }
}

// The latency histogram lives in `insynth_stats` so the trace-replay harness
// in `insynth_bench` reports quantiles from the same buckets; re-exported
// here to keep `insynth_server::metrics::Histogram` a public name.
pub use insynth_stats::Histogram;

/// All server-level counters plus the completion latency histogram.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    per_method: [AtomicU64; 7],
    errors: AtomicU64,
    cancelled: AtomicU64,
    completions: AtomicU64,
    values_served: AtomicU64,
    resumed: AtomicU64,
    latency: Mutex<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            per_method: Default::default(),
            errors: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            completions: AtomicU64::new(0),
            values_served: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            latency: Mutex::new(Histogram::default()),
        }
    }
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    pub fn record_request(&self, method: Method) {
        self.per_method[method.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one served `completion/complete`: page size, whether the
    /// walk resumed a suspended state, and the observed round-trip latency.
    pub fn record_completion(&self, values: usize, resumed: bool, latency: Duration) {
        self.completions.fetch_add(1, Ordering::Relaxed);
        self.values_served
            .fetch_add(values as u64, Ordering::Relaxed);
        if resumed {
            self.resumed.fetch_add(1, Ordering::Relaxed);
        }
        self.latency
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .record(latency);
    }

    pub fn request_count(&self, method: Method) -> u64 {
        self.per_method[method.index()].load(Ordering::Relaxed)
    }

    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    pub fn cancelled_count(&self) -> u64 {
        self.cancelled.load(Ordering::Relaxed)
    }

    pub fn completion_count(&self) -> u64 {
        self.completions.load(Ordering::Relaxed)
    }

    pub fn values_served(&self) -> u64 {
        self.values_served.load(Ordering::Relaxed)
    }

    pub fn resumed_count(&self) -> u64 {
        self.resumed.load(Ordering::Relaxed)
    }

    /// Completions per wall-clock second since the server started.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completion_count() as f64 / secs
        }
    }

    /// `(p50, p99, mean, count)` of completion latency, in microseconds.
    pub fn latency_summary_us(&self) -> (u64, u64, u64, u64) {
        let hist = self
            .latency
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        (
            hist.quantile_us(0.50),
            hist.quantile_us(0.99),
            hist.mean_us(),
            hist.count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_roundtrip() {
        for method in Method::ALL {
            assert_eq!(Method::from_name(method.name()), Some(method));
        }
        assert_eq!(Method::from_name("no/such"), None);
    }

    #[test]
    fn completion_accounting_accumulates() {
        let metrics = Metrics::new();
        metrics.record_request(Method::Complete);
        metrics.record_completion(3, true, Duration::from_micros(100));
        metrics.record_completion(2, false, Duration::from_micros(200));
        assert_eq!(metrics.request_count(Method::Complete), 1);
        assert_eq!(metrics.completion_count(), 2);
        assert_eq!(metrics.values_served(), 5);
        assert_eq!(metrics.resumed_count(), 1);
        let (p50, p99, mean, count) = metrics.latency_summary_us();
        assert!(p50 >= 100 && p99 >= 200 && mean >= 100 && count == 2);
    }
}
