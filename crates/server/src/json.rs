//! A minimal JSON value with a hand-rolled parser and writer.
//!
//! The workspace has no JSON dependency (the vendor tree is
//! rand/proptest/criterion only), and the wire protocol needs exactly one
//! thing from JSON: a deterministic, order-preserving object model. Objects
//! are therefore a `Vec` of key/value pairs — serialization emits fields in
//! insertion order, which is what makes scripted server transcripts
//! byte-stable across runs.
//!
//! The writer is compact (no whitespace); the parser accepts any RFC 8259
//! document, including `\uXXXX` escapes with surrogate pairs, and reports
//! errors with a byte offset.

use std::fmt;

/// Nesting depth beyond which the parser refuses input — a stack-overflow
/// guard for pathological lines like ten thousand `[`s.
const MAX_DEPTH: usize = 128;

/// One JSON value. Numbers are `f64` (like JavaScript); object fields keep
/// insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.error("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow to form one supplementary character.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.error("unpaired surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are trustworthy; find the next one).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    /// Reads exactly four hex digits, returning their value; advances past
    /// them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = (self.bytes[self.pos] as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected digit after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected digit in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("number out of range"))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(n) => write_number(f, *n),
            Json::Str(s) => write_string(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_string(f, key)?;
                    f.write_str(":")?;
                    value.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Integral values within the f64-exact range print without a fractional
/// part; everything else uses Rust's shortest-roundtrip float formatting.
/// JSON has no NaN/Infinity, so non-finite values degrade to `null`.
fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        f.write_str("null")
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{0008}' => f.write_str("\\b")?,
            '\u{000C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        parse(text).expect("parse").to_string()
    }

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("2.5"), "2.5");
        assert_eq!(roundtrip("1e3"), "1000");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_roundtrip_preserving_order() {
        assert_eq!(roundtrip("[1, 2, [3]]"), "[1,2,[3]]");
        assert_eq!(
            roundtrip("{\"b\": 1, \"a\": {\"c\": []}}"),
            "{\"b\":1,\"a\":{\"c\":[]}}"
        );
        assert_eq!(roundtrip("{}"), "{}");
        assert_eq!(roundtrip("[]"), "[]");
    }

    #[test]
    fn string_escapes_roundtrip() {
        assert_eq!(roundtrip(r#""a\"b\\c\nd""#), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(roundtrip(r#""\u0041""#), "\"A\"");
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        // Control characters re-escape.
        assert_eq!(roundtrip(r#""\u0001""#), "\"\\u0001\"");
        // Non-ASCII passes through raw.
        assert_eq!(roundtrip("\"héllo\""), "\"héllo\"");
    }

    #[test]
    fn malformed_inputs_report_errors() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": }",
            "{a: 1}",
            "tru",
            "1.",
            "-",
            "1e",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"\\ud83d\"",
            "[1] trailing",
            "01x",
            "\u{0007}",
        ] {
            assert!(parse(bad).is_err(), "expected parse error for {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = parse(r#"{"n": 3, "flag": true, "name": "x", "items": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("items").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(2.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
