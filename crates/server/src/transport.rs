//! The stdio transport: a reader feeding a scoped worker pool, with an
//! output sequencer that writes responses in request-arrival order.
//!
//! Layering (tentpole shape): transport (this module) → dispatcher
//! ([`Server::parse_line`] / [`Server::execute`]) → handlers → engine. The
//! transport owns the threads; the [`Server`] owns all shared state, so the
//! whole pool borrows one `&Server` inside a `std::thread::scope` — no
//! `'static` bounds, no runtime dependency.
//!
//! Three roles:
//!
//! * **reader** (the calling thread): reads lines, lets the server parse
//!   each one — `$/cancel` tokens fire here, immediately, so a cancellation
//!   is never stuck behind the request it targets — and queues everything
//!   (requests and canned responses alike) as numbered jobs, so metric
//!   bookkeeping happens in arrival order on a worker, never racing ahead
//!   on this thread. Queue-depth admission control happens here too: beyond
//!   [`ServerConfig::max_queue_depth`] pending jobs, new requests are
//!   refused with an `OVERLOADED` error instead of piling up behind a slow
//!   query.
//! * **workers** (`config.workers` scoped threads): pull jobs, run
//!   [`Server::execute`], and hand the response to the sequencer.
//! * **sequencer** (one scoped thread): holds responses until every earlier
//!   line's response has been written, so output order always equals input
//!   order no matter how workers interleave — which is what makes scripted
//!   sessions byte-stable even with a pool.
//!
//! [`ServerConfig::max_queue_depth`]: crate::server::ServerConfig::max_queue_depth

use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

use insynth_core::CancelToken;

use crate::json::Json;
use crate::protocol::{response_err, ProtocolError, Request, OVERLOADED};
use crate::server::{Bookkeeping, Parsed, Server};

struct Job {
    seq: u64,
    work: Work,
}

enum Work {
    /// A full request to dispatch through [`Server::execute`].
    Request {
        request: Request,
        cancel: CancelToken,
    },
    /// A response the reader already computed (envelope error, `$/cancel`
    /// ack). It still flows through the queue so its metric bookkeeping is
    /// applied in arrival order — recording it on the reader thread would
    /// race with the stats requests workers are executing.
    Canned {
        response: Json,
        bookkeeping: Bookkeeping,
    },
}

/// Runs the serve loop until `input` reaches end-of-file, writing one
/// response line per request line. Blank lines are skipped. Returns when
/// every accepted request has been answered and flushed.
pub fn run<R: BufRead, W: Write + Send>(server: &Server, input: R, output: W) -> io::Result<()> {
    let workers = server.config().workers.max(1);
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let (out_tx, out_rx) = mpsc::channel::<(u64, String)>();
    // mpsc receivers are single-consumer; a mutex turns the job queue into
    // the shared work-stealing end of the pool.
    let job_rx = Mutex::new(job_rx);

    thread::scope(|scope| {
        let sequencer = scope.spawn(move || write_in_order(output, out_rx));

        for _ in 0..workers {
            let job_rx = &job_rx;
            let out_tx = out_tx.clone();
            scope.spawn(move || loop {
                let job = match job_rx.lock() {
                    Ok(rx) => rx.recv(),
                    Err(_) => break,
                };
                let Ok(job) = job else { break };
                let response = match job.work {
                    Work::Request { request, cancel } => {
                        server.dequeue();
                        server.execute(&request, &cancel)
                    }
                    Work::Canned {
                        response,
                        bookkeeping,
                    } => {
                        server.record(bookkeeping);
                        response
                    }
                };
                if out_tx.send((job.seq, response.to_string())).is_err() {
                    break;
                }
            });
        }

        // Read errors must not early-return: the scope joins every thread on
        // exit, and the workers only stop once `job_tx` drops. Remember the
        // error, fall through to the shutdown sequence, report it at the end.
        let mut read_error = None;
        let mut seq = 0u64;
        for line in input.lines() {
            let line = match line {
                Ok(line) => line,
                Err(err) => {
                    read_error = Some(err);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let slot = seq;
            seq += 1;
            if server.queue_depth() >= server.config().max_queue_depth as u64 {
                let refusal = response_err(
                    None,
                    &ProtocolError::new(OVERLOADED, "server overloaded, request dropped"),
                );
                let _ = out_tx.send((slot, refusal.to_string()));
                continue;
            }
            let work = match server.parse_line(&line) {
                Parsed::Immediate {
                    response,
                    bookkeeping,
                } => Work::Canned {
                    response,
                    bookkeeping,
                },
                Parsed::Job { request, cancel } => {
                    server.enqueue();
                    Work::Request { request, cancel }
                }
            };
            let _ = job_tx.send(Job { seq: slot, work });
        }
        // EOF: closing the job channel drains the workers; dropping the last
        // out_tx clone (workers' + ours) lets the sequencer finish.
        drop(job_tx);
        drop(out_tx);
        let written = sequencer.join().unwrap_or(Ok(()));
        match read_error {
            Some(err) => Err(err),
            None => written,
        }
    })
}

/// Emits `(seq, line)` pairs strictly by `seq`, holding out-of-order
/// arrivals until their turn. Flushes after every line — the peer is an
/// interactive editor waiting on each reply.
fn write_in_order(
    mut output: impl Write,
    responses: mpsc::Receiver<(u64, String)>,
) -> io::Result<()> {
    let mut pending: HashMap<u64, String> = HashMap::new();
    let mut next = 0u64;
    for (seq, line) in responses {
        pending.insert(seq, line);
        while let Some(line) = pending.remove(&next) {
            output.write_all(line.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
            next += 1;
        }
    }
    Ok(())
}

/// Serves a whole script (one request per line) and returns the response
/// lines, in arrival order. The test- and bench-facing wrapper around
/// [`run`]: the bench harness replays a scripted session through exactly
/// the production transport.
pub fn serve_script(server: &Server, script: &str) -> Vec<String> {
    let mut output = Vec::new();
    run(server, script.as_bytes(), &mut output).expect("in-memory transport cannot fail");
    String::from_utf8(output)
        .expect("responses are UTF-8")
        .lines()
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use insynth_core::{Engine, SynthesisConfig};

    fn test_server(workers: usize) -> Server {
        Server::new(
            Engine::new(SynthesisConfig::default()),
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
    }

    const OPEN: &str = r#"{"id": 1, "method": "env/open", "params": {"env": [{"name": "a", "ty": "A"}, {"name": "s", "ty": {"args": ["A"], "ret": "A"}}]}}"#;

    #[test]
    fn responses_come_back_in_arrival_order() {
        let server = test_server(1);
        let script = [
            OPEN,
            r#"{"id": 2, "method": "completion/complete", "params": {"session": 1, "goal": "A", "n": 2}}"#,
            r#"{"id": 3, "method": "server/stats", "params": {"counters_only": true}}"#,
            r#"{"id": 4, "method": "session/close", "params": {"session": 1}}"#,
        ]
        .join("\n");
        let responses = serve_script(&server, &script);
        assert_eq!(responses.len(), 4);
        for (i, response) in responses.iter().enumerate() {
            assert!(
                response.starts_with(&format!("{{\"id\":{}", i + 1)),
                "response {i} out of order: {response}"
            );
        }
        assert!(responses[1].contains("\"values\":[{\"term\":\"a\""));
        assert!(responses[3].contains("\"closed\":1"));
    }

    #[test]
    fn blank_lines_are_skipped_and_errors_answered_in_place() {
        let server = test_server(1);
        let script = format!("\n{OPEN}\n\nnot json\n{{\"id\": 9}}\n");
        let responses = serve_script(&server, &script);
        assert_eq!(responses.len(), 3);
        assert!(responses[1].contains("-32700"), "{}", responses[1]);
        assert!(responses[2].contains("-32600"), "{}", responses[2]);
    }

    #[test]
    fn a_worker_pool_preserves_output_order() {
        let server = test_server(4);
        let mut script = vec![OPEN.to_string()];
        for id in 2..=20u64 {
            script.push(format!(
                r#"{{"id": {id}, "method": "completion/complete", "params": {{"session": 1, "goal": "A", "n": 3}}}}"#
            ));
        }
        let responses = serve_script(&server, &script.join("\n"));
        assert_eq!(responses.len(), 20);
        for (i, response) in responses.iter().enumerate() {
            assert!(response.starts_with(&format!("{{\"id\":{}", i + 1)));
        }
    }

    #[test]
    fn queue_overflow_is_refused_not_buffered() {
        let server = test_server(1);
        // Artificially hold the queue over its limit: depth never drains
        // because we inflate it before the transport runs.
        for _ in 0..server.config().max_queue_depth {
            server.enqueue();
        }
        let responses = serve_script(&server, OPEN);
        assert_eq!(responses.len(), 1);
        assert!(responses[0].contains("-32002"), "{}", responses[0]);
    }
}
