//! The wire protocol: request envelopes, error codes, and the JSON codecs
//! for the engine's domain types.
//!
//! One request object per line in, one response object per line out:
//!
//! ```text
//! {"id": 1, "method": "env/open", "params": {"env": [...]}}
//! {"id": 1, "result": {"session": 1, ...}}
//! ```
//!
//! Responses are `{"id", "result"}` or `{"id", "error": {"code", "message"}}`.
//! Error codes follow JSON-RPC's reserved ranges where a standard code
//! exists; server-specific conditions use the `-32000..=-32099` band.
//!
//! The `completion/complete` result deliberately mirrors MCP's
//! `completion/complete` shape (`values`, `total`, `hasMore` — spelled
//! `has_more` here): a page of values plus a continuation signal, with the
//! cursor addressing the suspended-walk resume path.

use insynth_core::{DeclKind, Declaration, EnvDelta, TypeEnv};
use insynth_lambda::Ty;

use crate::json::Json;

/// The line was not valid JSON.
pub const PARSE_ERROR: i64 = -32700;
/// The line was JSON but not a valid request envelope.
pub const INVALID_REQUEST: i64 = -32600;
/// Unknown `method`.
pub const METHOD_NOT_FOUND: i64 = -32601;
/// Missing or ill-typed `params` member.
pub const INVALID_PARAMS: i64 = -32602;
/// The named session id is not open.
pub const SESSION_NOT_FOUND: i64 = -32000;
/// The request was cancelled via `$/cancel` (before or during execution).
pub const CANCELLED: i64 = -32001;
/// Admission control refused the request (queue depth exceeded).
pub const OVERLOADED: i64 = -32002;
/// `env/open` beyond the configured session-table capacity.
pub const SESSION_LIMIT: i64 = -32003;

/// A protocol-level failure, rendered as the `error` member of a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    pub code: i64,
    pub message: String,
}

impl ProtocolError {
    pub fn new(code: i64, message: impl Into<String>) -> Self {
        ProtocolError {
            code,
            message: message.into(),
        }
    }

    pub fn invalid_params(message: impl Into<String>) -> Self {
        ProtocolError::new(INVALID_PARAMS, message)
    }

    pub fn cancelled() -> Self {
        ProtocolError::new(CANCELLED, "request cancelled")
    }
}

/// A structurally valid request: integer id, method name, optional params.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub id: u64,
    pub method: String,
    pub params: Json,
}

/// Validates the request envelope. Absent `params` decodes as an empty
/// object so handlers can uniformly `get` optional fields.
pub fn parse_request(value: &Json) -> Result<Request, ProtocolError> {
    let id = value
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtocolError::new(INVALID_REQUEST, "missing integer \"id\""))?;
    let method = value
        .get("method")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new(INVALID_REQUEST, "missing string \"method\""))?
        .to_string();
    let params = match value.get("params") {
        None => Json::Obj(Vec::new()),
        Some(p @ Json::Obj(_)) => p.clone(),
        Some(_) => {
            return Err(ProtocolError::new(
                INVALID_REQUEST,
                "\"params\" must be an object",
            ))
        }
    };
    Ok(Request { id, method, params })
}

/// Builds a success response line.
pub fn response_ok(id: u64, result: Json) -> Json {
    Json::object([("id", Json::from(id)), ("result", result)])
}

/// Builds an error response line. `id` is `None` when the failing line
/// never yielded a usable id (parse errors).
pub fn response_err(id: Option<u64>, error: &ProtocolError) -> Json {
    let id = id.map(Json::from).unwrap_or(Json::Null);
    Json::object([
        ("id", id),
        (
            "error",
            Json::object([
                ("code", Json::Num(error.code as f64)),
                ("message", Json::from(error.message.as_str())),
            ]),
        ),
    ])
}

/// Encodes a type: base types as their name, arrows as
/// `{"args": [...], "ret": ...}` with the argument list in source order.
pub fn ty_to_json(ty: &Ty) -> Json {
    match ty {
        Ty::Base(name) => Json::from(name.as_str()),
        Ty::Arrow(..) => {
            let mut args = Vec::new();
            let mut cur = ty;
            while let Ty::Arrow(arg, rest) = cur {
                args.push(ty_to_json(arg));
                cur = rest;
            }
            Json::object([("args", Json::Arr(args)), ("ret", ty_to_json(cur))])
        }
    }
}

/// Decodes a type from the wire shape produced by [`ty_to_json`].
pub fn ty_from_json(value: &Json) -> Result<Ty, ProtocolError> {
    match value {
        Json::Str(name) if !name.is_empty() => Ok(Ty::base(name.as_str())),
        Json::Obj(_) => {
            let args = value
                .get("args")
                .and_then(Json::as_arr)
                .ok_or_else(|| ProtocolError::invalid_params("arrow type needs \"args\" array"))?
                .iter()
                .map(ty_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            let ret = ty_from_json(
                value
                    .get("ret")
                    .ok_or_else(|| ProtocolError::invalid_params("arrow type needs \"ret\""))?,
            )?;
            Ok(Ty::fun(args, ret))
        }
        _ => Err(ProtocolError::invalid_params(
            "type must be a name or {\"args\", \"ret\"}",
        )),
    }
}

fn kind_from_str(s: &str) -> Result<DeclKind, ProtocolError> {
    Ok(match s {
        "lambda" => DeclKind::Lambda,
        "local" => DeclKind::Local,
        "coercion" => DeclKind::Coercion,
        "class" => DeclKind::Class,
        "package" => DeclKind::Package,
        "literal" => DeclKind::Literal,
        "imported" => DeclKind::Imported,
        other => {
            return Err(ProtocolError::invalid_params(format!(
                "unknown declaration kind {other:?}"
            )))
        }
    })
}

/// Encodes one declaration in the shape [`decl_from_json`] reads — the
/// client-side half of the codec, used by the bench harness to drive the
/// server with programmatic environments.
pub fn decl_to_json(decl: &Declaration) -> Json {
    let mut fields = vec![
        ("name", Json::from(decl.name.as_str())),
        ("ty", ty_to_json(&decl.ty)),
        ("kind", Json::from(decl.kind.to_string())),
    ];
    if let Some(frequency) = decl.frequency {
        fields.push(("frequency", Json::from(frequency)));
    }
    if let Some(weight) = decl.weight_override {
        fields.push(("weight", Json::from(weight)));
    }
    Json::object(fields)
}

/// Encodes an environment as the array `env/open` expects.
pub fn env_to_json(env: &TypeEnv) -> Json {
    Json::Arr(env.iter().map(decl_to_json).collect())
}

/// Decodes one declaration:
/// `{"name", "ty", "kind"?, "frequency"?, "weight"?}`. `kind` defaults to
/// `"local"`; `weight` is an absolute per-declaration override.
pub fn decl_from_json(value: &Json) -> Result<Declaration, ProtocolError> {
    let name = value
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::invalid_params("declaration needs string \"name\""))?;
    let ty = ty_from_json(
        value
            .get("ty")
            .ok_or_else(|| ProtocolError::invalid_params("declaration needs \"ty\""))?,
    )?;
    let kind = match value.get("kind") {
        None => DeclKind::Local,
        Some(k) => kind_from_str(k.as_str().ok_or_else(|| {
            ProtocolError::invalid_params("declaration \"kind\" must be a string")
        })?)?,
    };
    let mut decl = Declaration::new(name, ty, kind);
    if let Some(freq) = value.get("frequency") {
        decl = decl
            .with_frequency(freq.as_u64().ok_or_else(|| {
                ProtocolError::invalid_params("\"frequency\" must be an integer")
            })?);
    }
    if let Some(weight) = value.get("weight") {
        decl = decl.with_weight(
            weight
                .as_f64()
                .ok_or_else(|| ProtocolError::invalid_params("\"weight\" must be a number"))?,
        );
    }
    Ok(decl)
}

/// Decodes an environment: an array of declarations.
pub fn env_from_json(value: &Json) -> Result<TypeEnv, ProtocolError> {
    value
        .as_arr()
        .ok_or_else(|| ProtocolError::invalid_params("\"env\" must be an array of declarations"))?
        .iter()
        .map(decl_from_json)
        .collect()
}

/// Decodes an environment delta:
/// `{"add": [decl...]?, "remove": [name...]?, "reweight": [{"name", "weight"}...]?}`.
pub fn delta_from_json(value: &Json) -> Result<EnvDelta, ProtocolError> {
    let mut delta = EnvDelta::new();
    if let Some(add) = value.get("add") {
        for decl in add
            .as_arr()
            .ok_or_else(|| ProtocolError::invalid_params("\"add\" must be an array"))?
        {
            delta = delta.add(decl_from_json(decl)?);
        }
    }
    if let Some(remove) = value.get("remove") {
        for name in remove
            .as_arr()
            .ok_or_else(|| ProtocolError::invalid_params("\"remove\" must be an array"))?
        {
            delta = delta
                .remove(name.as_str().ok_or_else(|| {
                    ProtocolError::invalid_params("\"remove\" entries are names")
                })?);
        }
    }
    if let Some(reweight) = value.get("reweight") {
        for entry in reweight
            .as_arr()
            .ok_or_else(|| ProtocolError::invalid_params("\"reweight\" must be an array"))?
        {
            let name = entry
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtocolError::invalid_params("reweight entry needs \"name\""))?;
            let weight = entry
                .get("weight")
                .and_then(Json::as_f64)
                .ok_or_else(|| ProtocolError::invalid_params("reweight entry needs \"weight\""))?;
            delta = delta.reweight(name, weight);
        }
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn ty_codec_roundtrips() {
        let cases = [
            Ty::base("A"),
            Ty::fun(vec![Ty::base("A")], Ty::base("B")),
            Ty::fun(
                vec![Ty::fun(vec![Ty::base("A")], Ty::base("B")), Ty::base("C")],
                Ty::base("D"),
            ),
        ];
        for ty in cases {
            let encoded = ty_to_json(&ty);
            assert_eq!(ty_from_json(&encoded).unwrap(), ty);
        }
        assert_eq!(ty_to_json(&Ty::base("A")).to_string(), "\"A\"");
        assert_eq!(
            ty_to_json(&Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C"))).to_string(),
            "{\"args\":[\"A\",\"B\"],\"ret\":\"C\"}"
        );
    }

    #[test]
    fn decl_codec_reads_kinds_and_optionals() {
        let v = parse(r#"{"name": "f", "ty": {"args": ["A"], "ret": "B"}, "kind": "imported", "frequency": 9, "weight": 1.5}"#)
            .unwrap();
        let decl = decl_from_json(&v).unwrap();
        assert_eq!(decl.name, "f");
        assert_eq!(decl.kind, DeclKind::Imported);
        assert_eq!(decl.frequency, Some(9));
        assert_eq!(decl.weight_override, Some(1.5));

        let minimal = parse(r#"{"name": "x", "ty": "A"}"#).unwrap();
        let decl = decl_from_json(&minimal).unwrap();
        assert_eq!(decl.kind, DeclKind::Local);

        let bad_kind = parse(r#"{"name": "x", "ty": "A", "kind": "alien"}"#).unwrap();
        assert_eq!(decl_from_json(&bad_kind).unwrap_err().code, INVALID_PARAMS);
    }

    #[test]
    fn env_codec_roundtrips() {
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "s",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Imported,
            )
            .with_frequency(3)
            .with_weight(0.5),
        ]
        .into_iter()
        .collect();
        let decoded = env_from_json(&env_to_json(&env)).unwrap();
        assert_eq!(decoded.len(), env.len());
        for (a, b) in env.iter().zip(decoded.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn envelope_validation_catches_malformed_requests() {
        let ok = parse(r#"{"id": 7, "method": "server/stats"}"#).unwrap();
        let req = parse_request(&ok).unwrap();
        assert_eq!((req.id, req.method.as_str()), (7, "server/stats"));
        assert_eq!(req.params, Json::Obj(vec![]));

        for bad in [
            r#"{"method": "x"}"#,
            r#"{"id": "seven", "method": "x"}"#,
            r#"{"id": 1}"#,
            r#"{"id": 1, "method": "x", "params": 3}"#,
        ] {
            let v = parse(bad).unwrap();
            assert_eq!(parse_request(&v).unwrap_err().code, INVALID_REQUEST);
        }
    }

    #[test]
    fn delta_codec_builds_all_three_edit_kinds() {
        let v = parse(
            r#"{"add": [{"name": "x", "ty": "A"}], "remove": ["y"], "reweight": [{"name": "z", "weight": 2}]}"#,
        )
        .unwrap();
        let delta = delta_from_json(&v).unwrap();
        assert!(!delta.is_empty());
        let empty = delta_from_json(&parse("{}").unwrap()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn responses_serialize_with_stable_field_order() {
        assert_eq!(
            response_ok(3, Json::object([("x", Json::from(1u64))])).to_string(),
            "{\"id\":3,\"result\":{\"x\":1}}"
        );
        assert_eq!(
            response_err(None, &ProtocolError::new(PARSE_ERROR, "bad json")).to_string(),
            "{\"id\":null,\"error\":{\"code\":-32700,\"message\":\"bad json\"}}"
        );
    }
}
