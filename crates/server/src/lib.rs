//! The InSynth completion server: a persistent JSON-over-stdio front-end
//! for the [`insynth_core`] engine.
//!
//! The paper's premise is *interactive* completion — synthesis answers at
//! keystroke latency — and this crate is the piece that turns the
//! library's `Engine`/`Session`/`query_stream` stack into a long-running
//! service an editor can talk to: one JSON request object per line on
//! stdin, one JSON response per line on stdout.
//!
//! # Protocol
//!
//! | method                | purpose                                                    |
//! |-----------------------|------------------------------------------------------------|
//! | `env/open`            | declare a program point, get a session id                  |
//! | `env/update`          | apply an [`EnvDelta`] to a session (incremental re-prepare)|
//! | `env/analyze`         | static-analysis report for a session's environment         |
//! | `completion/complete` | query a goal type; paginate with `cursor`                  |
//! | `session/close`       | drop a session                                             |
//! | `server/stats`        | counters, cache sizes, hit rates, latency quantiles        |
//! | `$/cancel`            | abort an in-flight (or not-yet-arrived) request by id      |
//!
//! The `completion/complete` result (`values`, `total`, `has_more`)
//! deliberately mirrors MCP's `completion/complete` shape; the `cursor`
//! continuation rides the engine's suspended-walk resume path, so asking
//! for the next page costs only the new walk steps — no re-exploration, no
//! graph rebuild, no replayed pops.
//!
//! # Layering
//!
//! [`transport`] (reader → scoped worker pool → output sequencer) →
//! [`server`] (dispatch, sessions, admission control, cancellation) →
//! handlers → engine. Everything is `std` threads over the `Send + Sync`
//! engine — no async runtime. [`json`] is a small hand-rolled JSON
//! parser/writer (the workspace deliberately has no JSON dependency), and
//! [`metrics`] keeps the counters and latency histogram that
//! `server/stats` reports.
//!
//! [`EnvDelta`]: insynth_core::EnvDelta

pub mod json;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod transport;

pub use json::{parse as parse_json, Json, JsonError};
pub use metrics::{Method, Metrics};
pub use protocol::{decl_to_json, env_to_json, ty_to_json, ProtocolError, Request};
pub use server::{report_to_json, Bookkeeping, Parsed, Server, ServerConfig};
pub use transport::{run, serve_script};
