//! Shared observability primitives.
//!
//! One implementation of the latency histogram, used by both the completion
//! server's metrics (`insynth_server::metrics`) and the editor-trace replay
//! harness (`insynth_bench::replay`), so the two report quantiles from the
//! same buckets — no copy-paste drift between the service path and the
//! benchmark path.
//!
//! Everything here is *reporting* plumbing: nothing feeds back into
//! synthesis, so recording a sample can never perturb results.

use std::time::Duration;

/// A fixed-bucket log2 latency histogram over microseconds: bucket `i`
/// holds samples in `[2^(i-1), 2^i)` µs (bucket 0 is exactly 0 µs), so 40
/// buckets span sub-microsecond to ~6 days. Quantiles come back as the
/// upper bound of the covering bucket — a ≤2× overestimate, plenty for
/// p50/p90/p99 reporting.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 40],
    count: u64,
    sum_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 40],
            count: 0,
            sum_us: 0,
        }
    }
}

impl Histogram {
    pub fn record(&mut self, sample: Duration) {
        let us = sample.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// The latency below which a `q` fraction of samples fall, as the upper
    /// bound of the covering bucket (0 when empty).
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (self.buckets.len() - 1)
    }

    /// Folds another histogram into this one (bucket-wise addition). The
    /// replay harness records per-worker histograms without contention and
    /// merges them into one report at the end.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_cover_samples() {
        let mut hist = Histogram::default();
        assert_eq!(hist.quantile_us(0.5), 0);
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            hist.record(Duration::from_micros(us));
        }
        assert_eq!(hist.count(), 10);
        // p50 lands in the 10µs bucket [8,16), p99 in 5000's [4096,8192).
        assert_eq!(hist.quantile_us(0.5), 16);
        assert_eq!(hist.quantile_us(0.99), 8192);
        assert_eq!(hist.mean_us(), 509);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for us in [10u64, 12, 14] {
            a.record(Duration::from_micros(us));
        }
        for us in [5000u64, 6000] {
            b.record(Duration::from_micros(us));
        }
        let mut whole = Histogram::default();
        for us in [10u64, 12, 14, 5000, 6000] {
            whole.record(Duration::from_micros(us));
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean_us(), whole.mean_us());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(a.quantile_us(q), whole.quantile_us(q));
        }
    }
}
