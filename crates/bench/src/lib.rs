//! Benchmark and table-regeneration crate.
//!
//! This crate hosts:
//!
//! * binaries that regenerate every table and figure of the paper's
//!   evaluation (`table1`, `table2`, `table3`, `figure1`, `compression`),
//! * Criterion micro-benchmarks for the phase breakdown, the prover
//!   comparison, the succinct-type compression and session amortization
//!   (`cargo bench -p insynth_bench`), and
//! * the `baseline` binary, which re-measures the `env_scaling` and
//!   `sigma_prepare` benchmarks outside the criterion harness and writes the
//!   reference numbers to `BENCH_BASELINE.json` at the workspace root.
//!
//! See `EXPERIMENTS.md` at the workspace root for the mapping from paper
//! tables/figures to these targets and for recorded paper-vs-measured results.

use insynth_apimodel::{extract, javaapi, ApiModel, ProgramPoint};
use insynth_core::TypeEnv;
use insynth_corpus::synthetic_corpus;
use insynth_lambda::Ty;

/// Re-exported so the binaries share one definition of the default corpus
/// seed used across all regenerated tables.
pub const DEFAULT_CORPUS_SEED: u64 = 42;

/// The Figure-1-style environment used by the `phases` benches
/// (`env_scaling`, phase breakdown, session amortization): java.lang +
/// java.io + java.util plus `filler` generated packages, with the two string
/// locals of the motivating example and corpus frequencies applied.
pub fn phases_environment(filler: usize) -> TypeEnv {
    let mut model = ApiModel::new();
    model.add_package(javaapi::java_lang());
    model.add_package(javaapi::java_io());
    model.add_package(javaapi::java_util());
    for i in 0..filler {
        model.add_package(javaapi::filler_package(i, 40, 12));
    }
    let mut point = ProgramPoint::new()
        .with_local("body", Ty::base("String"))
        .with_local("sig", Ty::base("String"));
    for package in model.packages() {
        point = point.with_import(package.name.clone());
    }
    let mut env = extract(&model, &point);
    let corpus = synthetic_corpus(&model, DEFAULT_CORPUS_SEED);
    corpus.apply(&mut env);
    env
}

/// The environment used by the `compression` bench (`sigma_prepare`):
/// java.lang + java.io + javax.swing + java.awt plus `filler` generated
/// packages, everything imported, no locals and no corpus.
pub fn compression_environment(filler: usize) -> TypeEnv {
    let mut model = ApiModel::new();
    model.add_package(javaapi::java_lang());
    model.add_package(javaapi::java_io());
    model.add_package(javaapi::javax_swing());
    model.add_package(javaapi::java_awt());
    for i in 0..filler {
        model.add_package(javaapi::filler_package(i, 40, 12));
    }
    let mut point = ProgramPoint::new();
    for package in model.packages() {
        point = point.with_import(package.name.clone());
    }
    extract(&model, &point)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_environments_grow_with_filler() {
        assert!(phases_environment(2).len() > phases_environment(0).len());
        assert!(compression_environment(4).len() > compression_environment(0).len());
    }
}
