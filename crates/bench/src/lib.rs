//! Benchmark and table-regeneration crate.
//!
//! This crate hosts:
//!
//! * binaries that regenerate every table and figure of the paper's
//!   evaluation (`table1`, `table2`, `table3`, `figure1`, `compression`),
//! * Criterion micro-benchmarks for the phase breakdown, the prover
//!   comparison, the succinct-type compression and session amortization
//!   (`cargo bench -p insynth_bench`), and
//! * the `baseline` binary, which re-measures the `env_scaling` and
//!   `sigma_prepare` benchmarks outside the criterion harness and writes the
//!   reference numbers to `BENCH_BASELINE.json` at the workspace root.
//!
//! See `EXPERIMENTS.md` at the workspace root for the mapping from paper
//! tables/figures to these targets and for recorded paper-vs-measured results.

pub mod replay;

use insynth_apimodel::{extract, javaapi, ApiModel, ProgramPoint};
use insynth_core::{
    explore, generate_patterns, DerivationGraph, ExploreLimits, PreparedEnv, TypeEnv, WeightConfig,
};
use insynth_corpus::synthetic_corpus;
use insynth_lambda::Ty;
use insynth_succinct::TypeStore;

/// Re-exported so the binaries share one definition of the default corpus
/// seed used across all regenerated tables.
pub const DEFAULT_CORPUS_SEED: u64 = 42;

/// The Figure-1-style environment used by the `phases` benches
/// (`env_scaling`, phase breakdown, session amortization): java.lang +
/// java.io + java.util plus `filler` generated packages, with the two string
/// locals of the motivating example and corpus frequencies applied.
pub fn phases_environment(filler: usize) -> TypeEnv {
    let mut model = ApiModel::new();
    model.add_package(javaapi::java_lang());
    model.add_package(javaapi::java_io());
    model.add_package(javaapi::java_util());
    for i in 0..filler {
        model.add_package(javaapi::filler_package(i, 40, 12));
    }
    let mut point = ProgramPoint::new()
        .with_local("body", Ty::base("String"))
        .with_local("sig", Ty::base("String"));
    for package in model.packages() {
        point = point.with_import(package.name.clone());
    }
    let mut env = extract(&model, &point);
    let corpus = synthetic_corpus(&model, DEFAULT_CORPUS_SEED);
    corpus.apply(&mut env);
    env
}

/// Prepares `env` and compiles the derivation graph for `goal` — the
/// explore → patterns → graph build (incl. heuristic) pipeline a session
/// runs on a cache miss. One definition shared by the `baseline` binary,
/// the walk-ablation benches and the tests, so they all measure the same
/// graph.
pub fn build_graph(env: &TypeEnv, weights: &WeightConfig, goal: &Ty) -> DerivationGraph {
    let prepared = std::sync::Arc::new(PreparedEnv::prepare(env, weights));
    let mut store = prepared.scratch();
    let goal_succ = store.sigma(goal);
    let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
    let patterns = generate_patterns(&mut store, &space);
    DerivationGraph::build(&prepared, &mut store, &patterns, env, weights, goal)
}

/// The IDE-scale environment used by the upper `env_scaling` rungs and the
/// parallel-prepare benchmarks: the standard model grown with synthetic API
/// tiers ([`javaapi::scaled_model`]) until it holds at least `target_decls`
/// declarations, everything imported, with the same two string locals and
/// corpus frequencies as [`phases_environment`]. Deterministic in
/// `target_decls`; the extracted environment is slightly larger than the
/// model's declaration count (imports add package/class declarations).
pub fn scaled_environment(target_decls: usize) -> TypeEnv {
    let model = javaapi::scaled_model(target_decls);
    let mut point = ProgramPoint::new()
        .with_local("body", Ty::base("String"))
        .with_local("sig", Ty::base("String"));
    for package in model.packages() {
        point = point.with_import(package.name.clone());
    }
    let mut env = extract(&model, &point);
    let corpus = synthetic_corpus(&model, DEFAULT_CORPUS_SEED);
    corpus.apply(&mut env);
    env
}

/// Least-squares fit of the growth exponent `k` in `time ≈ c · size^k` over a
/// benchmark ladder of `(size, nanoseconds)` rungs — the slope of log(time)
/// against log(size). Rungs with zero size or time are skipped; fewer than
/// two usable rungs fit no line and return 0. The `env_scaling` baseline
/// records the exponent fitted over the ladder up to each rung, and
/// `baseline --check` gates on the full-ladder fit staying near-linear.
pub fn growth_exponent(rungs: &[(usize, u128)]) -> f64 {
    let points: Vec<(f64, f64)> = rungs
        .iter()
        .filter(|(size, ns)| *size > 0 && *ns > 0)
        .map(|(size, ns)| ((*size as f64).ln(), (*ns as f64).ln()))
        .collect();
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let cov: f64 = points
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let var: f64 = points.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    if var == 0.0 {
        return 0.0;
    }
    cov / var
}

/// The environment used by the `compression` bench (`sigma_prepare`):
/// java.lang + java.io + javax.swing + java.awt plus `filler` generated
/// packages, everything imported, no locals and no corpus.
pub fn compression_environment(filler: usize) -> TypeEnv {
    let mut model = ApiModel::new();
    model.add_package(javaapi::java_lang());
    model.add_package(javaapi::java_io());
    model.add_package(javaapi::javax_swing());
    model.add_package(javaapi::java_awt());
    for i in 0..filler {
        model.add_package(javaapi::filler_package(i, 40, 12));
    }
    let mut point = ProgramPoint::new();
    for package in model.packages() {
        point = point.with_import(package.name.clone());
    }
    extract(&model, &point)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insynth_core::{generate_terms, generate_terms_best_first, GenerateLimits};

    #[test]
    fn bench_environments_grow_with_filler() {
        assert!(phases_environment(2).len() > phases_environment(0).len());
        assert!(compression_environment(4).len() > compression_environment(0).len());
    }

    #[test]
    fn scaled_environment_reaches_ide_scale() {
        let env = scaled_environment(12_000);
        assert!(env.len() >= 12_000, "got {}", env.len());
        // Deterministic: two extractions are byte-equal declaration lists.
        let again = scaled_environment(12_000);
        assert_eq!(env.decls(), again.decls());
    }

    #[test]
    fn growth_exponent_fits_known_power_laws() {
        let linear: Vec<(usize, u128)> = (1..=6).map(|i| (i * 1000, (i * 700) as u128)).collect();
        assert!((growth_exponent(&linear) - 1.0).abs() < 1e-9);
        let quadratic: Vec<(usize, u128)> =
            (1..=6).map(|i| (i * 1000, (i * i * 9) as u128)).collect();
        assert!((growth_exponent(&quadratic) - 2.0).abs() < 1e-9);
        // Degenerate ladders fit no line.
        assert_eq!(growth_exponent(&[]), 0.0);
        assert_eq!(growth_exponent(&[(1000, 5)]), 0.0);
        assert_eq!(growth_exponent(&[(1000, 5), (1000, 7)]), 0.0);
    }

    /// Builds the derivation graph the session benches walk, on the filler
    /// environment used across the paper-scale benchmarks.
    fn filler_graph(filler: usize) -> (TypeEnv, DerivationGraph) {
        let env = phases_environment(filler);
        let goal = Ty::base("SequenceInputStream");
        let graph = build_graph(&env, &WeightConfig::default(), &goal);
        (env, graph)
    }

    /// The A* heuristic is admissible on the paper-scale filler-4
    /// environment: the completion bound at the root never exceeds the
    /// weight of the best term the walk actually emits.
    #[test]
    fn astar_heuristic_is_admissible_on_the_filler_env() {
        let (env, graph) = filler_graph(4);
        assert!(graph.has_heuristic());
        let bound = graph
            .completion_bound()
            .expect("monotone graph has a bound");
        assert!(bound.is_finite(), "the benchmark goal is inhabited");
        let outcome = generate_terms(&graph, &env, 10, &GenerateLimits::default());
        assert!(!outcome.terms.is_empty());
        assert!(
            bound <= outcome.terms[0].weight,
            "h(root) = {:?} must not exceed the best emitted weight {:?}",
            bound,
            outcome.terms[0].weight
        );
    }

    /// The A* walk pops at least 2x fewer queue entries than the plain
    /// best-first walk on the filler-4 environment — the tentpole's perf
    /// contract, also enforced by `baseline --check` in CI — while emitting
    /// byte-identical terms.
    #[test]
    fn astar_walk_halves_queue_pops_on_filler4() {
        let (env, graph) = filler_graph(4);
        let limits = GenerateLimits::default();
        let astar = generate_terms(&graph, &env, 10, &limits);
        let best_first = generate_terms_best_first(&graph, &env, 10, &limits);
        assert!(astar.astar);
        assert!(!best_first.astar);
        let render = |o: &insynth_core::GenerateOutcome| {
            o.terms
                .iter()
                .map(|r| (r.term.to_string(), r.weight.value().to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&astar), render(&best_first));
        assert!(
            astar.steps * 2 <= best_first.steps,
            "A* pops {} vs best-first {}: expected at least a 2x reduction",
            astar.steps,
            best_first.steps
        );
    }
}
