//! Benchmark and table-regeneration crate.
//!
//! This crate contains no library logic of its own; it hosts:
//!
//! * binaries that regenerate every table and figure of the paper's
//!   evaluation (`table1`, `table2`, `table3`, `figure1`, `compression`), and
//! * Criterion micro-benchmarks for the phase breakdown, the prover
//!   comparison and the succinct-type compression (`cargo bench -p
//!   insynth-bench`).
//!
//! See `EXPERIMENTS.md` at the workspace root for the mapping from paper
//! tables/figures to these targets and for recorded paper-vs-measured results.

/// Re-exported so the binaries share one definition of the default corpus
/// seed used across all regenerated tables.
pub const DEFAULT_CORPUS_SEED: u64 = 42;
