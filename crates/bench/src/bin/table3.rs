//! Regenerates Table 3: the corpus projects and the §7.3 corpus statistics.
//!
//! Run with `cargo run -p insynth-bench --bin table3`.

use insynth_apimodel::javaapi;
use insynth_bench::DEFAULT_CORPUS_SEED;
use insynth_corpus::{synthetic_corpus, table3_projects};

fn main() {
    println!("Table 3: Scala open-source projects used for the corpus extraction");
    println!("{:<26} Description", "Project");
    for project in table3_projects() {
        println!("{:<26} {}", project.name, project.description);
    }

    let model = javaapi::standard_model();
    let corpus = synthetic_corpus(&model, DEFAULT_CORPUS_SEED);
    let (max_name, max_uses) = corpus.max_entry().expect("corpus is non-empty");

    println!();
    println!("Corpus statistics (synthetic corpus, seed {DEFAULT_CORPUS_SEED}):");
    println!(
        "  declarations with at least one use: {}",
        corpus.total_declarations()
    );
    println!(
        "  total recorded uses:               {}",
        corpus.total_uses()
    );
    println!(
        "  declarations with < 100 uses:      {:.1}%",
        100.0 * corpus.fraction_below(100)
    );
    println!("  most used declaration:             {max_name} ({max_uses} uses)");
    println!();
    println!("Paper (§7.3): 7516 declarations, 90422 uses, 98% below 100 uses, max 5162 (\"&&\").");
}
