//! `insynth-trace` — generate, inspect, and replay editor traces.
//!
//! ```text
//! insynth-trace generate [knobs] [--out FILE]        write a seeded trace
//! insynth-trace inspect FILE                         summarize a trace file
//! insynth-trace replay [FILE | knobs] [--mode M]     replay and report
//! ```
//!
//! `replay` accepts either a trace file or the same generation knobs as
//! `generate` (the trace is then generated in memory — handy for CI, which
//! never needs the file). Reports are human-readable by default; `--json`
//! prints the [`ReplayReport`] JSON, and `--counters-only` drops the
//! wall-clock section so two runs of the same trace diff clean.
//!
//! Generation knobs: `--seed N --points N --events N --env figure1:4|scaled:13000
//! --zipf F --update-fraction F --remove-fraction F --page-fraction F
//! --close-fraction F --burst N --max-n N`.

use std::process::ExitCode;

use insynth_bench::replay::{
    replay_library, replay_server, trace_environment, ReplayMode, ReplayReport,
};
use insynth_corpus::trace::{generate_trace, Trace, TraceEnvSpec, TraceGenConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "generate" => generate(rest),
        "inspect" => inspect(rest),
        "replay" => replay(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("insynth-trace: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  insynth-trace generate [--seed N] [--points N] [--events N] [--env figure1:4|scaled:13000]
                         [--zipf F] [--update-fraction F] [--remove-fraction F]
                         [--page-fraction F] [--close-fraction F] [--burst N] [--max-n N]
                         [--out FILE]
  insynth-trace inspect FILE
  insynth-trace replay [FILE] [generation knobs] [--mode library|server]
                       [--workers N] [--json] [--counters-only]";

/// Parses the generation knobs shared by `generate` and `replay`. Returns
/// the config and the arguments it did not consume.
fn parse_gen_config(args: &[String]) -> Result<(TraceGenConfig, Vec<String>), String> {
    let mut config = TraceGenConfig::default();
    let mut leftover = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(|v| v.to_string())
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => config.seed = parse_num(&take("--seed")?, "--seed")?,
            "--points" => config.points = parse_num(&take("--points")?, "--points")?,
            "--events" => config.events = parse_num(&take("--events")?, "--events")?,
            "--env" => config.env = parse_env_spec(&take("--env")?)?,
            "--zipf" => config.zipf_exponent = parse_num(&take("--zipf")?, "--zipf")?,
            "--update-fraction" => {
                config.update_fraction =
                    parse_num(&take("--update-fraction")?, "--update-fraction")?
            }
            "--remove-fraction" => {
                config.remove_fraction =
                    parse_num(&take("--remove-fraction")?, "--remove-fraction")?
            }
            "--page-fraction" => {
                config.page_fraction = parse_num(&take("--page-fraction")?, "--page-fraction")?
            }
            "--close-fraction" => {
                config.close_fraction = parse_num(&take("--close-fraction")?, "--close-fraction")?
            }
            "--burst" => config.burst = parse_num(&take("--burst")?, "--burst")?,
            "--max-n" => config.max_n = parse_num(&take("--max-n")?, "--max-n")?,
            _ => leftover.push(arg.clone()),
        }
    }
    Ok((config, leftover))
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse {value:?}"))
}

fn parse_env_spec(value: &str) -> Result<TraceEnvSpec, String> {
    let (model, arg) = value
        .split_once(':')
        .ok_or_else(|| format!("--env wants model:param, got {value:?}"))?;
    let arg: usize = parse_num(arg, "--env")?;
    match model {
        "figure1" => Ok(TraceEnvSpec::Figure1 { filler: arg }),
        "scaled" => Ok(TraceEnvSpec::Scaled { target_decls: arg }),
        other => Err(format!("--env: unknown model {other:?}")),
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let (config, leftover) = parse_gen_config(args)?;
    let mut out_path = None;
    let mut it = leftover.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = Some(it.next().ok_or("--out needs a path")?.clone()),
            other => return Err(format!("generate: unknown argument {other:?}")),
        }
    }
    let trace = generate_trace(&config);
    let text = trace.to_text();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            let s = trace.summary();
            eprintln!(
                "wrote {} events over {} points to {path} ({} bytes)",
                s.events,
                s.points,
                text.len()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Trace::parse(&text).map_err(|e| e.to_string())
}

fn inspect(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("inspect wants exactly one trace file".to_string());
    };
    let trace = load_trace(path)?;
    let s = trace.summary();
    let env = match trace.env {
        TraceEnvSpec::Figure1 { filler } => format!("figure1 (filler {filler})"),
        TraceEnvSpec::Scaled { target_decls } => format!("scaled (~{target_decls} decls)"),
    };
    println!("trace      {path}");
    println!("env        {env}");
    println!("events     {}", s.events);
    println!("points     {}", s.points);
    println!("ticks      0..={}", s.last_tick);
    println!(
        "mix        {} opens, {} queries, {} pages, {} updates ({} removals), {} closes",
        s.opens, s.queries, s.pages, s.updates, s.removals, s.closes
    );
    Ok(())
}

fn replay(args: &[String]) -> Result<(), String> {
    let (config, leftover) = parse_gen_config(args)?;
    let mut mode = ReplayMode::Library;
    let mut workers = 1usize;
    let mut json = false;
    let mut counters_only = false;
    let mut path = None;
    let mut it = leftover.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mode" => {
                mode = match it.next().map(String::as_str) {
                    Some("library") => ReplayMode::Library,
                    Some("server") => ReplayMode::Server,
                    other => return Err(format!("--mode wants library|server, got {other:?}")),
                }
            }
            "--workers" => {
                workers = parse_num(it.next().ok_or("--workers needs a value")?, "--workers")?
            }
            "--json" => json = true,
            "--counters-only" => counters_only = true,
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("replay: unknown argument {other:?}")),
        }
    }
    let trace = match path {
        Some(path) => load_trace(&path)?,
        None => generate_trace(&config),
    };
    let ambient = trace_environment(trace.env);
    let report = match mode {
        ReplayMode::Library => replay_library(&trace, &ambient, workers),
        ReplayMode::Server => replay_server(&trace, &ambient, workers),
    };
    if json {
        println!("{}", report.to_json(counters_only));
    } else {
        print_human(&report);
    }
    if report.errors > 0 {
        return Err(format!("{} events failed during replay", report.errors));
    }
    Ok(())
}

fn print_human(report: &ReplayReport) {
    let s = &report.summary;
    println!(
        "replayed   {} events over {} points ({} mode, {} worker{})",
        s.events,
        s.points,
        report.mode.name(),
        report.workers,
        if report.workers == 1 { "" } else { "s" }
    );
    println!("env        {} ambient declarations", report.env_decls);
    println!(
        "mix        {} opens, {} queries, {} pages, {} updates ({} removals), {} closes",
        s.opens, s.queries, s.pages, s.updates, s.removals, s.closes
    );
    println!(
        "engine     {} prepares, {} graph builds",
        report.prepares, report.graph_builds
    );
    println!(
        "results    {} completions, {} values, {} resumed, {} errors",
        report.completions, report.values, report.resumed, report.errors
    );
    println!("digest     {}", report.digest_hex());
    println!(
        "timing     {} ms ({:.1} events/s)",
        report.elapsed.as_millis(),
        report.events_per_sec()
    );
    println!(
        "latency    p50 {} us, p90 {} us, p99 {} us, mean {} us over {} completions",
        report.latency.quantile_us(0.50),
        report.latency.quantile_us(0.90),
        report.latency.quantile_us(0.99),
        report.latency.mean_us(),
        report.latency.count()
    );
}
