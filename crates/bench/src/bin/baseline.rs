//! Regenerates `BENCH_BASELINE.json`: recorded reference numbers for the
//! `env_scaling` (benches/phases.rs), `sigma_prepare` (benches/compression.rs),
//! `session_amortization` and `genp_ablation` benchmark workloads.
//!
//! The vendored criterion stand-in only prints to stdout, so this binary
//! re-measures the same workloads with the same scheme (warm-up calibration,
//! then fixed-size samples of batched iterations, min/median/mean per
//! iteration) and writes them as JSON that perf PRs can diff against.
//!
//! Recorded alongside the production numbers are two "before" workloads kept
//! alive for the paper's ablations:
//!
//! * `session_amortization/query_unindexed_pipeline` — a query answered by
//!   the pre-derivation-graph pipeline (explore + patterns + unindexed
//!   reconstruction on every call); the gap to
//!   `query_on_prepared_session` is what the graph refactor buys.
//! * `genp_ablation/naive_saturation` vs `optimized_backward_map` — the §5.7
//!   backward-map optimization at paper scale (the filler-4 environment).
//!
//! Run with `cargo run --release -p insynth_bench --bin baseline` from the
//! workspace root; pass a path to write elsewhere. Numbers are wall-clock and
//! machine-specific: regenerate the file on the machine you compare on.
//!
//! `--check [path]` instead re-measures the two `session_amortization` query
//! workloads and exits non-zero if the graph pipeline's speedup over the
//! unindexed pipeline shrank more than 25% against the recorded ratio — the
//! perf smoke test CI runs on every push. Comparing the *ratio*, with both
//! sides measured on the current machine, makes the gate independent of how
//! fast that machine is: absolute nanoseconds recorded here would be
//! meaningless on a CI runner.

use std::time::{Duration, Instant};

use insynth_bench::{compression_environment, phases_environment};
use insynth_core::{
    explore, generate_patterns, generate_patterns_naive, generate_terms_unindexed, Engine,
    ExploreLimits, GenerateLimits, PreparedEnv, Query, SynthesisConfig, WeightConfig,
};
use insynth_lambda::Ty;
use insynth_succinct::TypeStore;

/// Rough wall-clock budget per sample (mirrors the vendored criterion).
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Maximum tolerated shrinkage of the graph-vs-unindexed query speedup, as a
/// factor of the recorded ratio.
const CHECK_TOLERANCE: f64 = 1.25;

struct Measurement {
    bench: &'static str,
    group: &'static str,
    id: String,
    env_size: usize,
    samples: usize,
    iters_per_sample: u64,
    min_ns: u128,
    median_ns: u128,
    mean_ns: u128,
}

/// Times `routine` the way the vendored criterion does: one warm-up call to
/// calibrate the per-sample iteration count, then `sample_size` samples.
fn measure<R>(
    sample_size: usize,
    mut routine: impl FnMut() -> R,
) -> (usize, u64, u128, u128, u128) {
    let start = Instant::now();
    std::hint::black_box(routine());
    let one = start.elapsed().max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<u128> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        samples.push(start.elapsed().as_nanos() / iters as u128);
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<u128>() / samples.len() as u128;
    (sample_size, iters, min, median, mean)
}

/// One query through the pre-derivation-graph pipeline (explore + patterns +
/// unindexed reconstruction), as both the recorded baseline workload and the
/// `--check` reference measure it. Keeping a single definition is what makes
/// the recorded and measured ratios comparable.
fn unindexed_query(
    prepared: &PreparedEnv,
    env: &insynth_core::TypeEnv,
    weights: &WeightConfig,
    goal: &Ty,
) -> insynth_core::GenerateOutcome {
    let mut store = prepared.scratch();
    let goal_succ = store.sigma(goal);
    let space = explore(prepared, &mut store, goal_succ, &ExploreLimits::default());
    let patterns = generate_patterns(&mut store, &space);
    generate_terms_unindexed(
        prepared,
        &mut store,
        &patterns,
        env,
        weights,
        goal,
        10,
        &GenerateLimits::default(),
    )
}

/// The query the session benches answer, on the filler-4 paper-scale
/// environment of `benches/phases.rs`.
fn amortization_goal() -> Ty {
    Ty::base("SequenceInputStream")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_BASELINE.json".to_owned());

    if check {
        std::process::exit(run_check(&path));
    }

    let mut measurements: Vec<Measurement> = Vec::new();

    // env_scaling/synthesize_top10: end-to-end prepare + query, environment
    // growing with filler — mirrors benches/phases.rs.
    for filler in [0usize, 2, 4, 8] {
        let env = phases_environment(filler);
        let env_size = env.len();
        eprintln!("measuring env_scaling/synthesize_top10/{env_size} …");
        let (samples, iters, min, median, mean) = measure(10, || {
            let engine = Engine::new(SynthesisConfig::default());
            let session = engine.prepare(&env);
            session.query(&Query::new(amortization_goal()))
        });
        measurements.push(Measurement {
            bench: "phases",
            group: "env_scaling",
            id: format!("synthesize_top10/{env_size}"),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
        });
    }

    // session_amortization: prepare once vs query on a prepared session
    // (derivation-graph pipeline, cache warm after the first call) vs the
    // pre-refactor pipeline re-run per query.
    {
        let env = phases_environment(4);
        let env_size = env.len();
        let engine = Engine::new(SynthesisConfig::default());
        let goal = amortization_goal();

        eprintln!("measuring session_amortization/prepare_only/{env_size} …");
        let (samples, iters, min, median, mean) = measure(10, || engine.prepare(&env));
        measurements.push(Measurement {
            bench: "phases",
            group: "session_amortization",
            id: "prepare_only".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
        });

        eprintln!("measuring session_amortization/query_on_prepared_session/{env_size} …");
        let session = engine.prepare(&env);
        let query = Query::new(goal.clone());
        let (samples, iters, min, median, mean) = measure(10, || session.query(&query));
        measurements.push(Measurement {
            bench: "phases",
            group: "session_amortization",
            id: "query_on_prepared_session".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
        });

        eprintln!("measuring session_amortization/query_unindexed_pipeline/{env_size} …");
        let weights = WeightConfig::default();
        let prepared = PreparedEnv::prepare(&env, &weights);
        let (samples, iters, min, median, mean) =
            measure(10, || unindexed_query(&prepared, &env, &weights, &goal));
        measurements.push(Measurement {
            bench: "phases",
            group: "session_amortization",
            id: "query_unindexed_pipeline".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
        });
    }

    // genp_ablation at paper scale: the §5.7 backward map vs the naive
    // PROD/TRANSFER saturation, on the same explored space.
    {
        let env = phases_environment(4);
        let env_size = env.len();
        let weights = WeightConfig::default();
        let prepared = PreparedEnv::prepare(&env, &weights);
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&amortization_goal());
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());

        eprintln!("measuring genp_ablation/optimized_backward_map/{env_size} …");
        let (samples, iters, min, median, mean) =
            measure(10, || generate_patterns(&mut store, &space));
        measurements.push(Measurement {
            bench: "phases",
            group: "genp_ablation",
            id: "optimized_backward_map".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
        });

        eprintln!("measuring genp_ablation/naive_saturation/{env_size} …");
        let (samples, iters, min, median, mean) =
            measure(10, || generate_patterns_naive(&mut store, &space));
        measurements.push(Measurement {
            bench: "phases",
            group: "genp_ablation",
            id: "naive_saturation".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
        });
    }

    // sigma_prepare: σ-lowering + index construction alone — mirrors
    // benches/compression.rs.
    for filler in [0usize, 4, 8, 16] {
        let env = compression_environment(filler);
        let env_size = env.len();
        eprintln!("measuring sigma_prepare/{env_size} …");
        let (samples, iters, min, median, mean) =
            measure(20, || PreparedEnv::prepare(&env, &WeightConfig::default()));
        measurements.push(Measurement {
            bench: "compression",
            group: "sigma_prepare",
            id: format!("{env_size}"),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
        });
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"_note\": \"Reference timings for the env_scaling, session_amortization, genp_ablation and sigma_prepare benchmark workloads. Wall-clock, machine-specific; regenerate on the machine you compare on with: cargo run --release -p insynth_bench --bin baseline. CI perf smoke: baseline --check fails when session_amortization/query_on_prepared_session regresses >25% vs this file.\",\n",
    );
    out.push_str(
        "  \"_measurement\": \"per-iteration nanoseconds; warm-up-calibrated samples of batched iterations, as in vendor/criterion (min/median/mean only)\",\n",
    );
    out.push_str("  \"benchmarks\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"group\": \"{}\", \"id\": \"{}\", \"env_size\": {}, \"samples\": {}, \"iters_per_sample\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}{}\n",
            m.bench,
            m.group,
            m.id,
            m.env_size,
            m.samples,
            m.iters_per_sample,
            m.min_ns,
            m.median_ns,
            m.mean_ns,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    std::fs::write(&path, &out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {} measurements to {path}", measurements.len());
    for m in &measurements {
        println!(
            "  {}/{:<28} min {:>12} ns  median {:>12} ns  mean {:>12} ns",
            m.group, m.id, m.min_ns, m.median_ns, m.mean_ns
        );
    }
}

/// Extracts the recorded `median_ns` of a `(group, id)` entry from the
/// baseline file. The file is written by this binary with one benchmark per
/// line, so a line-oriented scan is enough — no JSON dependency needed. The
/// check compares medians rather than means: they are markedly more stable
/// across re-measurements of the ~27 ms unindexed workload.
fn recorded_median_ns(content: &str, group: &str, id: &str) -> Option<u128> {
    let group_needle = format!("\"group\": \"{group}\"");
    let id_needle = format!("\"id\": \"{id}\"");
    for line in content.lines() {
        if line.contains(&group_needle) && line.contains(&id_needle) {
            let rest = line.split("\"median_ns\": ").nth(1)?;
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            return digits.parse().ok();
        }
    }
    None
}

/// The `--check` mode: re-measures the graph-pipeline query and the unindexed
/// reference pipeline on the *current* machine and compares their speedup
/// ratio against the recorded one. A machine being uniformly slower (a CI
/// runner) scales both means and leaves the ratio unchanged; only a real
/// regression of the production query path shrinks it. Returns the process
/// exit code.
fn run_check(path: &str) -> i32 {
    let content = match std::fs::read_to_string(path) {
        Ok(content) => content,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let recorded_query = recorded_median_ns(
        &content,
        "session_amortization",
        "query_on_prepared_session",
    );
    let recorded_unindexed =
        recorded_median_ns(&content, "session_amortization", "query_unindexed_pipeline");
    let (Some(recorded_query), Some(recorded_unindexed)) = (recorded_query, recorded_unindexed)
    else {
        eprintln!(
            "{path} is missing the session_amortization query entries; \
             regenerate it with: cargo run --release -p insynth_bench --bin baseline"
        );
        return 2;
    };
    let recorded_ratio = recorded_unindexed as f64 / recorded_query.max(1) as f64;

    let env = phases_environment(4);
    let goal = amortization_goal();
    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&env);
    let query = Query::new(goal.clone());
    eprintln!("measuring session_amortization/query_on_prepared_session …");
    let (_, _, _, query_median, _) = measure(20, || session.query(&query));

    eprintln!("measuring session_amortization/query_unindexed_pipeline …");
    let weights = WeightConfig::default();
    let prepared = PreparedEnv::prepare(&env, &weights);
    let (_, _, _, unindexed_median, _) =
        measure(20, || unindexed_query(&prepared, &env, &weights, &goal));

    let measured_ratio = unindexed_median as f64 / query_median.max(1) as f64;
    let floor = recorded_ratio / CHECK_TOLERANCE;
    println!(
        "graph query median {query_median} ns, unindexed reference median {unindexed_median} ns: \
         speedup {measured_ratio:.2}x (recorded {recorded_ratio:.2}x, floor {floor:.2}x)"
    );
    if measured_ratio < floor {
        println!(
            "PERF REGRESSION: the graph pipeline's speedup over the unindexed reference \
             shrank by more than 25% vs the recorded baseline"
        );
        1
    } else {
        println!("OK: speedup within 25% of the recorded baseline");
        0
    }
}
