//! Regenerates `BENCH_BASELINE.json`: recorded reference numbers for the
//! `env_scaling` (benches/phases.rs) and `sigma_prepare`
//! (benches/compression.rs) criterion benchmarks.
//!
//! The vendored criterion stand-in only prints to stdout, so this binary
//! re-measures the same workloads with the same scheme (warm-up calibration,
//! then fixed-size samples of batched iterations, min/median/mean per
//! iteration) and writes them as JSON that perf PRs can diff against.
//!
//! Run with `cargo run --release -p insynth_bench --bin baseline` from the
//! workspace root; pass a path to write elsewhere. Numbers are wall-clock and
//! machine-specific: regenerate the file on the machine you compare on.

use std::time::{Duration, Instant};

use insynth_bench::{compression_environment, phases_environment};
use insynth_core::{Engine, PreparedEnv, Query, SynthesisConfig, WeightConfig};
use insynth_lambda::Ty;

/// Rough wall-clock budget per sample (mirrors the vendored criterion).
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

struct Measurement {
    bench: &'static str,
    group: &'static str,
    id: String,
    env_size: usize,
    samples: usize,
    iters_per_sample: u64,
    min_ns: u128,
    median_ns: u128,
    mean_ns: u128,
}

/// Times `routine` the way the vendored criterion does: one warm-up call to
/// calibrate the per-sample iteration count, then `sample_size` samples.
fn measure<R>(
    sample_size: usize,
    mut routine: impl FnMut() -> R,
) -> (usize, u64, u128, u128, u128) {
    let start = Instant::now();
    std::hint::black_box(routine());
    let one = start.elapsed().max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<u128> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        samples.push(start.elapsed().as_nanos() / iters as u128);
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<u128>() / samples.len() as u128;
    (sample_size, iters, min, median, mean)
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_BASELINE.json".to_owned());
    let mut measurements: Vec<Measurement> = Vec::new();

    // env_scaling/synthesize_top10: end-to-end prepare + query, environment
    // growing with filler — mirrors benches/phases.rs.
    for filler in [0usize, 2, 4, 8] {
        let env = phases_environment(filler);
        let env_size = env.len();
        eprintln!("measuring env_scaling/synthesize_top10/{env_size} …");
        let (samples, iters, min, median, mean) = measure(10, || {
            let engine = Engine::new(SynthesisConfig::default());
            let session = engine.prepare(&env);
            session.query(&Query::new(Ty::base("SequenceInputStream")))
        });
        measurements.push(Measurement {
            bench: "phases",
            group: "env_scaling",
            id: format!("synthesize_top10/{env_size}"),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
        });
    }

    // sigma_prepare: σ-lowering + index construction alone — mirrors
    // benches/compression.rs.
    for filler in [0usize, 4, 8, 16] {
        let env = compression_environment(filler);
        let env_size = env.len();
        eprintln!("measuring sigma_prepare/{env_size} …");
        let (samples, iters, min, median, mean) =
            measure(20, || PreparedEnv::prepare(&env, &WeightConfig::default()));
        measurements.push(Measurement {
            bench: "compression",
            group: "sigma_prepare",
            id: format!("{env_size}"),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
        });
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"_note\": \"Reference timings for the env_scaling and sigma_prepare criterion benchmarks. Wall-clock, machine-specific; regenerate on the machine you compare on with: cargo run --release -p insynth_bench --bin baseline\",\n",
    );
    out.push_str(
        "  \"_measurement\": \"per-iteration nanoseconds; warm-up-calibrated samples of batched iterations, as in vendor/criterion (min/median/mean only)\",\n",
    );
    out.push_str("  \"benchmarks\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"group\": \"{}\", \"id\": \"{}\", \"env_size\": {}, \"samples\": {}, \"iters_per_sample\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}{}\n",
            m.bench,
            m.group,
            m.id,
            m.env_size,
            m.samples,
            m.iters_per_sample,
            m.min_ns,
            m.median_ns,
            m.mean_ns,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    std::fs::write(&path, &out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {} measurements to {path}", measurements.len());
    for m in &measurements {
        println!(
            "  {}/{:<28} min {:>12} ns  median {:>12} ns  mean {:>12} ns",
            m.group, m.id, m.min_ns, m.median_ns, m.mean_ns
        );
    }
}
