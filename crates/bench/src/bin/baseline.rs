//! Regenerates `BENCH_BASELINE.json`: recorded reference numbers for the
//! `env_scaling` (benches/phases.rs), `sigma_prepare` (benches/compression.rs),
//! `session_amortization`, `cross_point`, `gent_ablation`, `genp_ablation`,
//! `resume_walk`, `server_roundtrip`, `analysis` and `trace_replay`
//! benchmark workloads.
//!
//! The vendored criterion stand-in only prints to stdout, so this binary
//! re-measures the same workloads with the same scheme (warm-up calibration,
//! then fixed-size samples of batched iterations, min/median/mean per
//! iteration) and writes them as JSON that perf PRs can diff against.
//!
//! Recorded alongside the production numbers are two "before" workloads kept
//! alive for the paper's ablations:
//!
//! * `session_amortization/query_unindexed_pipeline` — a query answered by
//!   the pre-derivation-graph pipeline (explore + patterns + unindexed
//!   reconstruction on every call); the gap to
//!   `query_on_prepared_session` is what the graph refactor buys.
//! * `genp_ablation/naive_saturation` vs `optimized_backward_map` — the §5.7
//!   backward-map optimization at paper scale (the filler-4 environment).
//!
//! Newer A*-era entries sit alongside those:
//!
//! * `session_amortization/query_astar` — the `query_on_prepared_session`
//!   measurement recorded under a second id (same numbers, not re-measured)
//!   to pin that the prepared-session query has been the heuristic-guided
//!   (A*) pipeline since the heuristic landed; the bin asserts the query
//!   actually runs A* before recording.
//! * `gent_ablation/astar_walk` vs `best_first_walk` — reconstruction alone
//!   (no explore/patterns/graph build) on the same prebuilt filler-4 graph,
//!   with and without the completion-cost heuristic.
//!
//! Run with `cargo run --release -p insynth_bench --bin baseline` from the
//! workspace root; pass a path to write elsewhere. Numbers are wall-clock and
//! machine-specific: regenerate the file on the machine you compare on.
//!
//! Cross-point and walk-cache entries (the content-addressing PR):
//!
//! * `cross_point/query_batch_4_equal_points` — a cold `query_batch` over
//!   four structurally equal program points (clones and a permutation of
//!   the filler-4 environment) asking one goal: with the fingerprint-keyed
//!   engine caches this costs ~one prepare + one graph build + four walks.
//! * `session_amortization/prepare_fingerprint_hit` — preparing a
//!   structurally equal environment on a warm engine (hash + structural
//!   verification, no σ).
//! * `gent_ablation/astar_walk` is measured **warm** (the persisted
//!   per-walk hole-goal memo and expansion cache are reused, as in a
//!   session's repeated queries); `astar_walk_cold` clears the persisted
//!   caches every iteration and records the first-query cost the warm
//!   number is measured against.
//!
//! Resumable-enumeration entries (the streamed-walk PR):
//!
//! * `resume_walk/astar_scratch` vs `astar_resume` — an `n=20` query on a
//!   warm session with the suspended walk dropped every iteration (full
//!   walk replay) vs kept parked (the steady-state pagination path, which
//!   serves the emission log without popping the frontier).
//!
//! Server entries (the completion-server PR):
//!
//! * `server_roundtrip/complete_warm` — one warm `completion/complete`
//!   through the full `insynth_server` stack (line parse, dispatch, engine
//!   query, response serialization) on filler-4; the gap to
//!   `session_amortization/query_on_prepared_session` is the per-request
//!   protocol overhead.
//!
//! Trace-replay entries (the editor-trace PR):
//!
//! * `trace_replay/{library,server}_figure1` — one full replay of a seeded
//!   2000-event editor trace (8 points, Zipf-skewed, default delta mix)
//!   against the filler-4 environment, through the library path and the
//!   JSON server path respectively; the gap between the two ids is the
//!   protocol overhead integrated over a whole editing session rather than
//!   a single warm round trip.
//! * `trace_replay/{library,server}_scaled13k` — a shorter 300-event trace
//!   (4 points) against the ~13k-decl scaled model, the before-number for
//!   the tombstone/O(delta) update work.
//!
//! `--check [path]` instead runs the perf smoke test CI executes on every
//! push:
//!
//! 1. a **deterministic cross-point gate** — a `query_batch` over four
//!    structurally equal program points (including a permuted copy) must
//!    report exactly one σ run and exactly one derivation-graph build
//!    (`Engine::prepare_count` / `Engine::graph_build_count`); no timing
//!    involved, so no noise;
//! 2. a **deterministic pops gate** — the A* walk must pop at most half the
//!    queue entries of the plain best-first walk on the filler-4 graph;
//! 3. a **deterministic resume gate** — growing `n=10` into `n=20` on a warm
//!    session must resume the suspended walk: zero extra graph builds,
//!    strictly fewer new pops than a from-scratch `n=20`, byte-identical
//!    answers;
//! 4. a **deterministic scripted-session gate** — the server integration
//!    test's stdio script must replay byte-identically on two fresh servers
//!    and report exactly the expected cache-hit counters (2 σ runs, 2 graph
//!    builds, 2 resumed walks, 1 cancelled request) in its final
//!    `server/stats` reply;
//! 5. a **deterministic shard-invariance gate** — preparing a ~13k-decl
//!    environment with 1, 2 and 8 σ shards must produce byte-identical
//!    results (same fingerprint, same store tables and indices, id for id);
//! 6. a **growth-exponent gate** — σ preparation re-measured along the
//!    scaled 12k/25k/51k-declaration ladder must fit a near-linear power
//!    law (exponent ≤ 1.5, re-measured once on a breach);
//! 7. a **conditional parallel-speedup gate** — on runners with ≥ 4 cores,
//!    sharded preparation of the 51k rung must be ≥ 2× faster than
//!    sequential (re-measured once on a breach); on smaller machines the
//!    gate prints a skip notice, since only the merge overhead is
//!    measurable there;
//! 8. an **environment-lint gate** — deterministic: `Engine::analyze` over
//!    the two shipped models (figure-1 filler-4 and the 13k scaled rung)
//!    must report exactly the pinned per-severity diagnostic counts and
//!    dead-declaration counts, and the committed `envlint.allow` must cover
//!    every warning — the library-level twin of the CI `env-lint` job;
//! 9. a **deterministic trace-replay gate** — a pinned seeded editor trace
//!    (400 events, 6 points, figure-1 filler-0) must replay to exactly the
//!    recorded event count, σ-run count, graph-build count and result
//!    digest, twice through the library path with byte-identical
//!    counters-only reports, and once through the JSON server path with
//!    the same digest; no timing involved;
//! 10. a **timing-ratio gate** — re-measures the two `session_amortization`
//!     query workloads and fails if the graph pipeline's speedup over the
//!     unindexed pipeline shrank more than 25% against the recorded ratio.
//!     A single noisy measurement window must not fail CI, so a breach is
//!     re-measured once (both ratios are printed) and only a repeat breach
//!     fails. Comparing the *ratio*, with both sides measured on the current
//!     machine, makes the gate independent of how fast that machine is:
//!     absolute nanoseconds recorded here would be meaningless on a CI
//!     runner.

use std::time::{Duration, Instant};

use insynth_bench::replay::{replay_library, replay_server, trace_environment};
use insynth_bench::{
    build_graph, compression_environment, growth_exponent, phases_environment, scaled_environment,
    DEFAULT_CORPUS_SEED,
};
use insynth_core::{
    explore, generate_patterns, generate_patterns_naive, generate_terms, generate_terms_best_first,
    generate_terms_unindexed, Allowlist, BatchRequest, Engine, ExploreLimits, GenerateLimits,
    PreparedEnv, Query, Severity, SynthesisConfig, TypeEnv, WeightConfig,
};
use insynth_corpus::trace::{generate_trace, Trace, TraceEnvSpec, TraceGenConfig};
use insynth_lambda::Ty;
use insynth_server::{env_to_json, serve_script, Json, Server, ServerConfig};
use insynth_succinct::TypeStore;

/// Rough wall-clock budget per sample (mirrors the vendored criterion).
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Maximum tolerated shrinkage of the graph-vs-unindexed query speedup, as a
/// factor of the recorded ratio.
const CHECK_TOLERANCE: f64 = 1.25;

/// Minimum factor by which the A* walk must cut queue pops against the plain
/// best-first walk on the filler-4 graph (the tentpole's perf contract;
/// deterministic, so checked without tolerance or re-measuring).
const POPS_RATIO_FLOOR: usize = 2;

/// Maximum tolerated growth exponent of σ preparation fitted along the
/// scaled 12k/25k/51k-declaration ladder. Preparation is interning-dominated
/// and near-linear (~1.1 measured); a breach means the environment axis
/// stopped scaling (e.g. something quadratic crept into the σ loop or the
/// index build).
const GROWTH_EXPONENT_CAP: f64 = 1.5;

/// Minimum speedup sharded preparation must deliver over sequential at the
/// top `env_scaling` rung — enforced only on machines with at least
/// [`PARALLEL_GATE_MIN_CORES`] cores.
const PARALLEL_SPEEDUP_FLOOR: f64 = 2.0;

/// Core count below which the parallel-speedup gate reports a skip instead
/// of running: a 1–2 core runner can only measure the shard-merge overhead,
/// and correctness on such machines is covered by the deterministic
/// shard-invariance gate.
const PARALLEL_GATE_MIN_CORES: usize = 4;

/// The pinned counters of the deterministic trace-replay gate: replaying
/// [`trace_gate_trace`] must report exactly these, and the same result
/// digest on the library and server paths. The digest hashes term strings
/// and fingerprints only — no floats, no wall clock — so it is stable
/// across machines; drift means generation, replay semantics, or engine
/// cache accounting changed and the baseline must be re-recorded knowingly.
const TRACE_GATE_SEED: u64 = 1013;
const TRACE_GATE_EVENTS: usize = 400;
const TRACE_GATE_PREPARES: usize = 56;
const TRACE_GATE_GRAPH_BUILDS: usize = 130;
const TRACE_GATE_DIGEST: &str = "b2c25e7db777f25c";

/// The fixed editor trace the `--check` trace-replay gate replays: 400
/// events over 6 points against the filler-0 figure-1 environment — small
/// enough to replay three times inside the CI budget, busy enough to cover
/// opens, pages, deltas with removals (the fresh-prepare fallback), and
/// closes.
fn trace_gate_trace() -> Trace {
    generate_trace(&TraceGenConfig {
        seed: TRACE_GATE_SEED,
        points: 6,
        events: TRACE_GATE_EVENTS as u64,
        env: TraceEnvSpec::Figure1 { filler: 0 },
        ..TraceGenConfig::default()
    })
}

struct Measurement {
    bench: &'static str,
    group: &'static str,
    id: String,
    env_size: usize,
    samples: usize,
    iters_per_sample: u64,
    min_ns: u128,
    median_ns: u128,
    mean_ns: u128,
    /// For `env_scaling` entries: the growth exponent `k` of `time ≈ c·size^k`
    /// fitted (log-log least squares over the medians) across the ladder up
    /// to and including this rung. `None` for every other group, and for the
    /// first rung (one point fits no line).
    growth_exponent: Option<f64>,
}

/// Times `routine` the way the vendored criterion does: one warm-up call to
/// calibrate the per-sample iteration count, then `sample_size` samples.
fn measure<R>(
    sample_size: usize,
    mut routine: impl FnMut() -> R,
) -> (usize, u64, u128, u128, u128) {
    let start = Instant::now();
    std::hint::black_box(routine());
    let one = start.elapsed().max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<u128> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        samples.push(start.elapsed().as_nanos() / iters as u128);
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<u128>() / samples.len() as u128;
    (sample_size, iters, min, median, mean)
}

/// One query through the pre-derivation-graph pipeline (explore + patterns +
/// unindexed reconstruction), as both the recorded baseline workload and the
/// `--check` reference measure it. Keeping a single definition is what makes
/// the recorded and measured ratios comparable.
fn unindexed_query(
    prepared: &PreparedEnv,
    env: &insynth_core::TypeEnv,
    weights: &WeightConfig,
    goal: &Ty,
) -> insynth_core::GenerateOutcome {
    let mut store = prepared.scratch();
    let goal_succ = store.sigma(goal);
    let space = explore(prepared, &mut store, goal_succ, &ExploreLimits::default());
    let patterns = generate_patterns(&mut store, &space);
    generate_terms_unindexed(
        prepared,
        &mut store,
        &patterns,
        env,
        weights,
        goal,
        10,
        &GenerateLimits::default(),
    )
}

/// The query the session benches answer, on the filler-4 paper-scale
/// environment of `benches/phases.rs`.
fn amortization_goal() -> Ty {
    Ty::base("SequenceInputStream")
}

/// The scripted stdio session of `crates/server/tests/server.rs`, shared
/// verbatim (one source of truth): the `--check` scripted-session gate
/// replays it through the production transport and holds its final
/// `server/stats` counters to the expected cache economics.
const SESSION_SCRIPT: &str = include_str!("../../../server/tests/data/script.jsonl");

/// The committed allowlist of intentional lint findings, shared verbatim
/// with the CI `env-lint` job (`insynth-envlint --check --allowlist
/// envlint.allow`): the `--check` env-lint gate holds the shipped models to
/// zero non-allowlisted warnings under exactly this file.
const ENVLINT_ALLOWLIST: &str = include_str!("../../../../envlint.allow");

/// The env-lint gate's scaled-model declaration target — the 13k rung, the
/// same scale `insynth-envlint` defaults to.
const ENVLINT_SCALE: usize = 13_000;

/// Four structurally equal program points (clones plus a declaration-order
/// permutation of `env`) asking `goal` — the cross-point batch workload, and
/// the input of the deterministic cross-point `--check` gate.
fn cross_point_requests(env: &TypeEnv, goal: &Ty) -> Vec<BatchRequest> {
    let reversed: TypeEnv = env.iter().rev().cloned().collect();
    vec![
        BatchRequest::new(env.clone(), Query::new(goal.clone())),
        BatchRequest::new(reversed, Query::new(goal.clone())),
        BatchRequest::new(env.clone(), Query::new(goal.clone())),
        BatchRequest::new(env.clone(), Query::new(goal.clone()).with_n(4)),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_BASELINE.json".to_owned());

    if check {
        std::process::exit(run_check(&path));
    }

    let mut measurements: Vec<Measurement> = Vec::new();

    // env_scaling/synthesize_top10: end-to-end prepare + query, environment
    // growing with filler and then with synthetic API tiers up to IDE scale
    // (~51k declarations) — mirrors benches/phases.rs. Each rung records the
    // declaration count (env_size) and the growth exponent fitted over the
    // ladder up to that rung, so a perf diff can see *where* the curve bends,
    // not just that some wall time moved.
    let scaling_rungs: Vec<TypeEnv> = [0usize, 2, 4, 8]
        .iter()
        .map(|&filler| phases_environment(filler))
        .chain(
            [12_000usize, 25_000, 50_000]
                .iter()
                .map(|&target| scaled_environment(target)),
        )
        .collect();
    let mut ladder: Vec<(usize, u128)> = Vec::new();
    for env in &scaling_rungs {
        let env_size = env.len();
        eprintln!("measuring env_scaling/synthesize_top10/{env_size} …");
        let (samples, iters, min, median, mean) = measure(10, || {
            let engine = Engine::new(SynthesisConfig::default());
            let session = engine.prepare(env);
            session.query(&Query::new(amortization_goal()))
        });
        ladder.push((env_size, median));
        measurements.push(Measurement {
            bench: "phases",
            group: "env_scaling",
            id: format!("synthesize_top10/{env_size}"),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: (ladder.len() > 1).then(|| growth_exponent(&ladder)),
        });
    }

    // parallel_prepare: sequential vs sharded σ-lowering at the ladder's top
    // rung. Machine-specific like every number here — on a single-core
    // container the sharded entry records the merge overhead rather than a
    // win; the conditional --check speedup gate only arms on >= 4 cores.
    {
        let env = scaling_rungs.last().expect("ladder is non-empty");
        let env_size = env.len();
        let weights = WeightConfig::default();
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for (id, shard_count) in [
            ("sequential".to_owned(), 1usize),
            (format!("sharded_np{shards}"), shards),
        ] {
            eprintln!("measuring parallel_prepare/{id}/{env_size} …");
            let (samples, iters, min, median, mean) = measure(10, || {
                PreparedEnv::prepare_sharded(env, &weights, shard_count)
            });
            measurements.push(Measurement {
                bench: "phases",
                group: "parallel_prepare",
                id,
                env_size,
                samples,
                iters_per_sample: iters,
                min_ns: min,
                median_ns: median,
                mean_ns: mean,
                growth_exponent: None,
            });
        }
    }

    // session_amortization: prepare once vs query on a prepared session
    // (derivation-graph pipeline, cache warm after the first call) vs the
    // pre-refactor pipeline re-run per query.
    {
        let env = phases_environment(4);
        let env_size = env.len();
        let engine = Engine::new(SynthesisConfig::default());
        let goal = amortization_goal();

        // A fresh engine per iteration measures the true σ cost; on a shared
        // engine every iteration after the first would be a fingerprint hit.
        // σ is pinned to one shard: this entry is the longitudinal record of
        // the *sequential* preparation cost (parallel_prepare records the
        // sharded path under its own ids).
        eprintln!("measuring session_amortization/prepare_only/{env_size} …");
        let sequential_config = || SynthesisConfig {
            sigma_shards: 1,
            ..SynthesisConfig::default()
        };
        let (samples, iters, min, median, mean) =
            measure(10, || Engine::new(sequential_config()).prepare(&env));
        measurements.push(Measurement {
            bench: "phases",
            group: "session_amortization",
            id: "prepare_only".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });

        // The cross-point fast path: the engine already holds the point, so
        // preparing a structurally equal environment is hash + verification.
        eprintln!("measuring session_amortization/prepare_fingerprint_hit/{env_size} …");
        let _warm = engine.prepare(&env);
        let (samples, iters, min, median, mean) = measure(10, || engine.prepare(&env));
        measurements.push(Measurement {
            bench: "phases",
            group: "session_amortization",
            id: "prepare_fingerprint_hit".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });

        eprintln!("measuring session_amortization/query_on_prepared_session/{env_size} …");
        let session = engine.prepare(&env);
        let query = Query::new(goal.clone());
        assert!(
            session.query(&query).stats.astar,
            "the prepared-session query is expected to run the A* walk"
        );
        let (samples, iters, min, median, mean) = measure(10, || session.query(&query));
        // One workload, two ids: `query_astar` pins that the prepared-session
        // query has been the heuristic-guided pipeline since PR 4 (asserted
        // above), while `query_on_prepared_session` keeps the longitudinal
        // series the --check gate reads. Recording the same measurement twice
        // avoids paying for the workload twice per regeneration.
        for id in ["query_on_prepared_session", "query_astar"] {
            measurements.push(Measurement {
                bench: "phases",
                group: "session_amortization",
                id: id.to_owned(),
                env_size,
                samples,
                iters_per_sample: iters,
                min_ns: min,
                median_ns: median,
                mean_ns: mean,
                growth_exponent: None,
            });
        }

        eprintln!("measuring session_amortization/query_unindexed_pipeline/{env_size} …");
        let weights = WeightConfig::default();
        let prepared = PreparedEnv::prepare(&env, &weights);
        let (samples, iters, min, median, mean) =
            measure(10, || unindexed_query(&prepared, &env, &weights, &goal));
        measurements.push(Measurement {
            bench: "phases",
            group: "session_amortization",
            id: "query_unindexed_pipeline".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });
    }

    // cross_point: a cold batch over four structurally equal program points
    // (the workload the fingerprint-keyed engine caches exist for): one σ
    // run, one graph build, four walks.
    {
        let env = phases_environment(4);
        let env_size = env.len();
        let goal = amortization_goal();
        let requests = cross_point_requests(&env, &goal);
        eprintln!("measuring cross_point/query_batch_4_equal_points/{env_size} …");
        let (samples, iters, min, median, mean) = measure(10, || {
            Engine::new(SynthesisConfig::default()).query_batch(&requests)
        });
        measurements.push(Measurement {
            bench: "phases",
            group: "cross_point",
            id: "query_batch_4_equal_points".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });
    }

    // gent_ablation: reconstruction alone on the same prebuilt filler-4
    // graph, with (A*) and without (plain best-first) the completion-cost
    // heuristic — the walk-level gap the heuristic buys.
    {
        let env = phases_environment(4);
        let env_size = env.len();
        let weights = WeightConfig::default();
        let goal = amortization_goal();
        let graph = build_graph(&env, &weights, &goal);
        let limits = GenerateLimits::default();

        // Cold first: the persisted walk caches are cleared every iteration,
        // recording the first-query cost (the clear itself is trivial).
        eprintln!("measuring gent_ablation/astar_walk_cold/{env_size} …");
        let (samples, iters, min, median, mean) = measure(10, || {
            graph.clear_walk_caches();
            generate_terms(&graph, &env, 10, &limits)
        });
        measurements.push(Measurement {
            bench: "phases",
            group: "gent_ablation",
            id: "astar_walk_cold".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });

        // Warm: the persisted hole-goal memo and expansion cache are reused
        // across iterations — the state of a session's repeated queries.
        eprintln!("measuring gent_ablation/astar_walk/{env_size} …");
        let (samples, iters, min, median, mean) =
            measure(10, || generate_terms(&graph, &env, 10, &limits));
        measurements.push(Measurement {
            bench: "phases",
            group: "gent_ablation",
            id: "astar_walk".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });

        eprintln!("measuring gent_ablation/best_first_walk/{env_size} …");
        let (samples, iters, min, median, mean) =
            measure(10, || generate_terms_best_first(&graph, &env, 10, &limits));
        measurements.push(Measurement {
            bench: "phases",
            group: "gent_ablation",
            id: "best_first_walk".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });

        let astar = generate_terms(&graph, &env, 10, &limits);
        let best_first = generate_terms_best_first(&graph, &env, 10, &limits);
        eprintln!(
            "  (A* pops {} of best-first {}, pruned {} enqueues)",
            astar.steps, best_first.steps, astar.pruned_enqueues
        );
    }

    // resume_walk: the resumable-enumeration gap on a warm session. Both
    // workloads ask n=20 on the cached filler-4 graph; `astar_scratch`
    // drops the suspended walk every iteration (full replay), while
    // `astar_resume` keeps it parked — the steady-state pagination path,
    // which serves the emission log without popping the frontier.
    {
        let env = phases_environment(4);
        let env_size = env.len();
        let engine = Engine::new(SynthesisConfig::default());
        let session = engine.prepare(&env);
        let query = Query::new(amortization_goal()).with_n(20);
        assert!(
            session.query(&query).stats.astar,
            "the resume workloads are expected to run the A* walk"
        );

        eprintln!("measuring resume_walk/astar_scratch/{env_size} …");
        let (samples, iters, min, median, mean) = measure(10, || {
            engine.clear_suspended_walks();
            session.query(&query)
        });
        measurements.push(Measurement {
            bench: "phases",
            group: "resume_walk",
            id: "astar_scratch".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });

        eprintln!("measuring resume_walk/astar_resume/{env_size} …");
        let _park = session.query(&query);
        let (samples, iters, min, median, mean) = measure(10, || session.query(&query));
        measurements.push(Measurement {
            bench: "phases",
            group: "resume_walk",
            id: "astar_resume".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });
    }

    // genp_ablation at paper scale: the §5.7 backward map vs the naive
    // PROD/TRANSFER saturation, on the same explored space.
    {
        let env = phases_environment(4);
        let env_size = env.len();
        let weights = WeightConfig::default();
        let prepared = PreparedEnv::prepare(&env, &weights);
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&amortization_goal());
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());

        eprintln!("measuring genp_ablation/optimized_backward_map/{env_size} …");
        let (samples, iters, min, median, mean) =
            measure(10, || generate_patterns(&mut store, &space));
        measurements.push(Measurement {
            bench: "phases",
            group: "genp_ablation",
            id: "optimized_backward_map".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });

        eprintln!("measuring genp_ablation/naive_saturation/{env_size} …");
        let (samples, iters, min, median, mean) =
            measure(10, || generate_patterns_naive(&mut store, &space));
        measurements.push(Measurement {
            bench: "phases",
            group: "genp_ablation",
            id: "naive_saturation".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });
    }

    // server_roundtrip: one warm `completion/complete` through the full
    // server stack (line parse → dispatch → engine query resuming the
    // parked walk → response serialization) on the filler-4 environment.
    // The gap to session_amortization/query_on_prepared_session is the
    // protocol overhead an editor pays per keystroke.
    {
        let env = phases_environment(4);
        let env_size = env.len();
        let server = Server::new(
            Engine::new(SynthesisConfig::default()),
            ServerConfig::default(),
        );
        let open = Json::object([
            ("id", Json::from(1u64)),
            ("method", Json::from("env/open")),
            ("params", Json::object([("env", env_to_json(&env))])),
        ]);
        let opened = server.handle_line(&open.to_string());
        assert!(
            opened.get("result").is_some(),
            "env/open failed in server_roundtrip setup: {opened}"
        );
        let complete = Json::object([
            ("id", Json::from(2u64)),
            ("method", Json::from("completion/complete")),
            (
                "params",
                Json::object([
                    ("session", Json::from(1u64)),
                    ("goal", Json::from("SequenceInputStream")),
                ]),
            ),
        ])
        .to_string();
        // Warm the graph cache and park the walk, as in a live session.
        let warmed = server.handle_line(&complete);
        assert!(
            warmed.get("result").is_some(),
            "completion/complete failed in server_roundtrip setup: {warmed}"
        );
        eprintln!("measuring server_roundtrip/complete_warm/{env_size} …");
        let (samples, iters, min, median, mean) = measure(10, || server.handle_line(&complete));
        measurements.push(Measurement {
            bench: "server",
            group: "server_roundtrip",
            id: "complete_warm".to_owned(),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });
    }

    // sigma_prepare: σ-lowering + index construction alone — mirrors
    // benches/compression.rs. Explicitly pinned to one shard so the series
    // stays comparable across machines with different core counts.
    for filler in [0usize, 4, 8, 16] {
        let env = compression_environment(filler);
        let env_size = env.len();
        eprintln!("measuring sigma_prepare/{env_size} …");
        let (samples, iters, min, median, mean) = measure(20, || {
            PreparedEnv::prepare_sharded(&env, &WeightConfig::default(), 1)
        });
        measurements.push(Measurement {
            bench: "compression",
            group: "sigma_prepare",
            id: format!("{env_size}"),
            env_size,
            samples,
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            growth_exponent: None,
        });
    }

    // analysis: the static-analysis pass on both shipped models, and the
    // cost of a cold query with and without dead-decl pruning at the 13k
    // rung. The analyze entries zero the engine's analysis cache so every
    // iteration pays the full producibility fixpoint + diagnostics pass
    // (the σ prepare itself is a fingerprint hit after warm-up); the
    // query_cold entries pay everything — σ, the goal-directed dead-decl
    // fixpoint and filtered re-prepare on the pruned side, explore,
    // patterns, graph build, walk — so their gap records what the
    // `prune_dead_decls` knob costs or buys end to end.
    {
        for (id, env) in [
            ("analyze_figure1", phases_environment(4)),
            ("analyze_scaled13k", scaled_environment(ENVLINT_SCALE)),
        ] {
            let env_size = env.len();
            let engine = Engine::new(SynthesisConfig {
                analysis_cache_capacity: 0,
                ..SynthesisConfig::default()
            });
            let _warm = engine.prepare(&env);
            eprintln!("measuring analysis/{id}/{env_size} …");
            let (samples, iters, min, median, mean) = measure(10, || engine.analyze(&env));
            measurements.push(Measurement {
                bench: "phases",
                group: "analysis",
                id: id.to_owned(),
                env_size,
                samples,
                iters_per_sample: iters,
                min_ns: min,
                median_ns: median,
                mean_ns: mean,
                growth_exponent: None,
            });
        }

        let env = scaled_environment(ENVLINT_SCALE);
        let env_size = env.len();
        let goal = amortization_goal();
        for (id, prune) in [("query_cold_unpruned", false), ("query_cold_pruned", true)] {
            eprintln!("measuring analysis/{id}/{env_size} …");
            let (samples, iters, min, median, mean) = measure(10, || {
                Engine::new(SynthesisConfig {
                    prune_dead_decls: prune,
                    ..SynthesisConfig::default()
                })
                .prepare(&env)
                .query(&Query::new(goal.clone()))
            });
            measurements.push(Measurement {
                bench: "phases",
                group: "analysis",
                id: id.to_owned(),
                env_size,
                samples,
                iters_per_sample: iters,
                min_ns: min,
                median_ns: median,
                mean_ns: mean,
                growth_exponent: None,
            });
        }
    }

    // trace_replay: one full editor-trace replay per iteration, library vs
    // server path on identical workloads. The figure-1 trace is the
    // steady-state interactive profile; the scaled-13k trace is the
    // before-number for the tombstone/O(delta) update work (updates at that
    // scale pay full incremental re-preparation today).
    {
        let workloads = [
            (
                "figure1",
                10usize,
                generate_trace(&TraceGenConfig {
                    seed: DEFAULT_CORPUS_SEED,
                    points: 8,
                    events: 2000,
                    env: TraceEnvSpec::Figure1 { filler: 4 },
                    ..TraceGenConfig::default()
                }),
            ),
            (
                "scaled13k",
                5usize,
                generate_trace(&TraceGenConfig {
                    seed: DEFAULT_CORPUS_SEED,
                    points: 4,
                    events: 300,
                    env: TraceEnvSpec::Scaled {
                        target_decls: ENVLINT_SCALE,
                    },
                    ..TraceGenConfig::default()
                }),
            ),
        ];
        for (name, sample_size, trace) in &workloads {
            let ambient = trace_environment(trace.env);
            let env_size = ambient.len();
            for mode in ["library", "server"] {
                let id = format!("{mode}_{name}");
                eprintln!("measuring trace_replay/{id}/{env_size} …");
                let (samples, iters, min, median, mean) = measure(*sample_size, || match mode {
                    "library" => replay_library(trace, &ambient, 1),
                    _ => replay_server(trace, &ambient, 1),
                });
                measurements.push(Measurement {
                    bench: "trace",
                    group: "trace_replay",
                    id,
                    env_size,
                    samples,
                    iters_per_sample: iters,
                    min_ns: min,
                    median_ns: median,
                    mean_ns: mean,
                    growth_exponent: None,
                });
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"_note\": \"Reference timings for the env_scaling, session_amortization, cross_point, gent_ablation, genp_ablation, resume_walk, server_roundtrip, sigma_prepare, analysis and trace_replay benchmark workloads. Wall-clock, machine-specific; regenerate on the machine you compare on with: cargo run --release -p insynth_bench --bin baseline. CI perf smoke: baseline --check fails when a query_batch over 4 structurally equal points stops reporting exactly 1 prepare + 1 graph build, when the A* walk stops cutting filler-4 queue pops 2x vs the best-first walk, when growing n=10 into n=20 on a warm session stops resuming the suspended walk (extra graph builds, or not strictly fewer pops than a from-scratch n=20, or diverging answers), when the scripted server session stops being byte-stable or stops reporting its expected cache-hit counters (2 prepares, 2 graph builds, 2 resumed walks, 1 cancelled request), when sharded preparation (1/2/8 σ shards) stops being byte-identical to sequential, when the σ-prepare growth exponent over the 12k/25k/51k ladder exceeds its cap, when (on >= 4 cores) sharded preparation stops being 2x faster than sequential at the 51k rung, when Engine::analyze over the shipped models drifts from the pinned diagnostic counts or a warning escapes envlint.allow, when the pinned seeded editor trace stops replaying to its recorded event/prepare/graph-build counts and result digest (byte-identically across two library runs, with the server path digesting identically), or when the session_amortization query speedup regresses >25% vs this file in two consecutive measurement windows.\",\n",
    );
    out.push_str(
        "  \"_measurement\": \"per-iteration nanoseconds; warm-up-calibrated samples of batched iterations, as in vendor/criterion (min/median/mean only)\",\n",
    );
    out.push_str("  \"benchmarks\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let exponent = m
            .growth_exponent
            .map(|k| format!(", \"growth_exponent\": {k:.3}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"group\": \"{}\", \"id\": \"{}\", \"env_size\": {}, \"samples\": {}, \"iters_per_sample\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}{}}}{}\n",
            m.bench,
            m.group,
            m.id,
            m.env_size,
            m.samples,
            m.iters_per_sample,
            m.min_ns,
            m.median_ns,
            m.mean_ns,
            exponent,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    std::fs::write(&path, &out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {} measurements to {path}", measurements.len());
    for m in &measurements {
        println!(
            "  {}/{:<28} min {:>12} ns  median {:>12} ns  mean {:>12} ns",
            m.group, m.id, m.min_ns, m.median_ns, m.mean_ns
        );
    }
}

/// Extracts the recorded `median_ns` of a `(group, id)` entry from the
/// baseline file. The file is written by this binary with one benchmark per
/// line, so a line-oriented scan is enough — no JSON dependency needed. The
/// check compares medians rather than means: they are markedly more stable
/// across re-measurements of the ~27 ms unindexed workload.
fn recorded_median_ns(content: &str, group: &str, id: &str) -> Option<u128> {
    let group_needle = format!("\"group\": \"{group}\"");
    let id_needle = format!("\"id\": \"{id}\"");
    for line in content.lines() {
        if line.contains(&group_needle) && line.contains(&id_needle) {
            let rest = line.split("\"median_ns\": ").nth(1)?;
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            return digits.parse().ok();
        }
    }
    None
}

/// One timing window of the `--check` ratio gate: measures the
/// graph-pipeline query and the unindexed reference pipeline on the current
/// machine and returns `(graph median, unindexed median, speedup ratio)`.
fn measure_query_ratio(env: &TypeEnv, goal: &Ty) -> (u128, u128, f64) {
    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(env);
    let query = Query::new(goal.clone());
    eprintln!("measuring session_amortization/query_on_prepared_session …");
    let (_, _, _, query_median, _) = measure(20, || session.query(&query));

    eprintln!("measuring session_amortization/query_unindexed_pipeline …");
    let weights = WeightConfig::default();
    let prepared = PreparedEnv::prepare(env, &weights);
    let (_, _, _, unindexed_median, _) =
        measure(20, || unindexed_query(&prepared, env, &weights, goal));
    let ratio = unindexed_median as f64 / query_median.max(1) as f64;
    (query_median, unindexed_median, ratio)
}

/// The `--check` mode: the deterministic cross-point, pops, resume,
/// scripted-session and shard-invariance gates, the growth-exponent and
/// (on >= 4 cores) parallel-speedup gates, then the timing-ratio gate
/// against the recorded baseline. Timing compares the
/// speedup *ratio* with both sides measured on the current machine — a
/// machine being uniformly slower (a CI runner) scales both medians and
/// leaves the ratio unchanged; only a real regression of the production
/// query path shrinks it. A breached ratio is re-measured once and both
/// ratios are printed; only a repeat breach fails, so a single noisy
/// measurement window cannot fail CI. Returns the process exit code.
fn run_check(path: &str) -> i32 {
    let content = match std::fs::read_to_string(path) {
        Ok(content) => content,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let recorded_query = recorded_median_ns(
        &content,
        "session_amortization",
        "query_on_prepared_session",
    );
    let recorded_unindexed =
        recorded_median_ns(&content, "session_amortization", "query_unindexed_pipeline");
    let (Some(recorded_query), Some(recorded_unindexed)) = (recorded_query, recorded_unindexed)
    else {
        eprintln!(
            "{path} is missing the session_amortization query entries; \
             regenerate it with: cargo run --release -p insynth_bench --bin baseline"
        );
        return 2;
    };
    let recorded_ratio = recorded_unindexed as f64 / recorded_query.max(1) as f64;
    let floor = recorded_ratio / CHECK_TOLERANCE;

    let env = phases_environment(4);
    let goal = amortization_goal();

    // Gate 0 — cross-point reuse, deterministic: a batch over four
    // structurally equal program points (clones plus a declaration-order
    // permutation) must run σ exactly once and build exactly one derivation
    // graph. Builds are single-flight, so thread scheduling cannot affect
    // the counts.
    let engine = Engine::new(SynthesisConfig::default());
    let requests = cross_point_requests(&env, &goal);
    let batched = engine.query_batch(&requests);
    let cross_point_stats = engine.stats();
    println!(
        "cross-point batch over {} structurally equal points: {} σ run(s), {} graph build(s) \
         (gate requires exactly 1 of each)",
        requests.len(),
        cross_point_stats.prepare_count,
        cross_point_stats.graph_build_count,
    );
    if cross_point_stats.prepare_count != 1 || cross_point_stats.graph_build_count != 1 {
        println!(
            "PERF REGRESSION: structurally equal program points no longer share one \
             preparation and one derivation graph"
        );
        return 1;
    }
    if batched[0].snippets.is_empty() {
        println!("PERF REGRESSION: the cross-point batch returned no snippets");
        return 1;
    }

    // Gate 1 — queue pops, deterministic: the A* walk must pop at most
    // 1/POPS_RATIO_FLOOR of the best-first walk's entries on the same graph.
    let weights = WeightConfig::default();
    let graph = build_graph(&env, &weights, &goal);
    let limits = GenerateLimits::default();
    let astar = generate_terms(&graph, &env, 10, &limits);
    let best_first = generate_terms_best_first(&graph, &env, 10, &limits);
    println!(
        "A* walk pops {} vs best-first pops {}: {:.2}x fewer (gate requires >= {POPS_RATIO_FLOOR}x), \
         {} enqueues heuristic-pruned",
        astar.steps,
        best_first.steps,
        best_first.steps as f64 / astar.steps.max(1) as f64,
        astar.pruned_enqueues,
    );
    if astar.steps * POPS_RATIO_FLOOR > best_first.steps {
        println!(
            "PERF REGRESSION: the A* walk no longer cuts filler-4 queue pops by at least \
             {POPS_RATIO_FLOOR}x against the best-first walk"
        );
        return 1;
    }

    // Gate 2 — resumable enumeration, deterministic: growing n=10 into n=20
    // on a warm session must resume the suspended walk — zero extra graph
    // builds, the `resumed` stat set, strictly fewer new pops than a
    // from-scratch n=20 on the same cached graph, and byte-identical
    // answers (cumulative pop counts included).
    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&env);
    let ten = session.query(&Query::new(goal.clone()).with_n(10));
    let builds_after_ten = engine.stats().graph_build_count;
    let resumed = session.query(&Query::new(goal.clone()).with_n(20));
    engine.clear_suspended_walks();
    let scratch = session.query(&Query::new(goal.clone()).with_n(20));
    println!(
        "resume n=10→20: {} new pops over {} already paid vs {} from scratch, \
         {} extra graph build(s) (gate requires resume, 0 extra builds, strictly fewer pops)",
        resumed.stats.reconstruction_new_steps,
        ten.stats.reconstruction_steps,
        scratch.stats.reconstruction_steps,
        engine.stats().graph_build_count - builds_after_ten,
    );
    if engine.stats().graph_build_count != builds_after_ten {
        println!("PERF REGRESSION: growing n rebuilt the derivation graph instead of reusing it");
        return 1;
    }
    if !resumed.stats.resumed || scratch.stats.resumed {
        println!(
            "PERF REGRESSION: the grown query no longer resumes the suspended walk \
             (or clearing suspended walks stopped working)"
        );
        return 1;
    }
    if resumed.stats.reconstruction_new_steps >= scratch.stats.reconstruction_steps {
        println!(
            "PERF REGRESSION: resuming n=10→20 no longer pops strictly fewer entries \
             than a from-scratch n=20 walk"
        );
        return 1;
    }
    let render = |result: &insynth_core::SynthesisResult| -> Vec<(String, u64)> {
        result
            .snippets
            .iter()
            .map(|s| (s.raw_term.to_string(), s.weight.value().to_bits()))
            .collect()
    };
    if render(&resumed) != render(&scratch)
        || resumed.stats.reconstruction_steps != scratch.stats.reconstruction_steps
    {
        println!("PERF REGRESSION: resumed enumeration diverged from the from-scratch walk");
        return 1;
    }

    // Gate 3 — scripted server session, deterministic: the stdio script the
    // server integration test drives (open → complete → paginate → update →
    // complete → cancel → stats → close) must produce a byte-identical
    // transcript on two fresh servers, and its final `server/stats` reply
    // must report exactly the expected cache economics — 2 σ runs and 2
    // graph builds for the whole session (the paginated continuation and
    // the post-cancel query ride the caches), 2 resumed walks, 1 cancelled
    // request. Counter drift here means a cache stopped being hit on the
    // server path even if the library-level gates above still pass.
    let serve = || {
        let server = Server::new(
            Engine::new(SynthesisConfig::default()),
            ServerConfig::default(),
        );
        serve_script(&server, SESSION_SCRIPT)
    };
    let transcript = serve();
    if transcript != serve() {
        println!("PERF REGRESSION: the scripted server session is no longer byte-stable");
        return 1;
    }
    let stats_line = &transcript[transcript.len() - 3]; // stats precedes close + parse error
    let stats = insynth_server::parse_json(stats_line).expect("stats reply is JSON");
    let counter = |path: &[&str]| -> Option<u64> {
        let mut cur = stats.get("result")?;
        for key in path {
            cur = cur.get(key)?;
        }
        cur.as_u64()
    };
    let observed = [
        (
            "engine prepare_count",
            counter(&["engine", "prepare_count"]),
            2,
        ),
        (
            "engine graph_build_count",
            counter(&["engine", "graph_build_count"]),
            2,
        ),
        (
            "resumed completions",
            counter(&["completions", "resumed"]),
            2,
        ),
        (
            "cancelled completions",
            counter(&["completions", "cancelled"]),
            1,
        ),
    ];
    println!(
        "scripted server session: prepare {:?}, graph builds {:?}, resumed {:?}, cancelled {:?} \
         (gate requires 2/2/2/1)",
        observed[0].1, observed[1].1, observed[2].1, observed[3].1,
    );
    for (what, got, want) in observed {
        if got != Some(want) {
            println!(
                "PERF REGRESSION: the scripted server session reports {what} = {got:?}, \
                 expected {want} — a server-path cache stopped being hit"
            );
            return 1;
        }
    }

    // Gate 4 — shard-count invariance, deterministic: preparing a ~13k-decl
    // environment with 1, 2 and 8 σ shards must produce byte-identical
    // results — same fingerprint, same store tables, same indices, id for id
    // (`PreparedEnv::identical_to`). This is the contract that makes the
    // `sigma_shards` knob safe to default to the machine's parallelism, and
    // it must hold on any core count (scoped threads run even on one core).
    let scaled_small = scaled_environment(12_000);
    let sequential_prepared = PreparedEnv::prepare_sharded(&scaled_small, &weights, 1);
    for shards in [2usize, 8] {
        let sharded = PreparedEnv::prepare_sharded(&scaled_small, &weights, shards);
        let identical = sharded.fingerprint == sequential_prepared.fingerprint
            && sharded.identical_to(&sequential_prepared);
        println!(
            "σ with {shards} shards on {} decls: {}",
            scaled_small.len(),
            if identical {
                "byte-identical to sequential"
            } else {
                "DIVERGED"
            },
        );
        if !identical {
            println!(
                "PERF REGRESSION: sharded preparation is no longer byte-identical to the \
                 sequential result"
            );
            return 1;
        }
    }

    // Gate 5 — growth exponent, re-measured once on a breach: σ preparation
    // along the 12k/25k/51k scaled ladder must stay near-linear. The
    // exponent is fitted on this machine (log-log least squares over the
    // medians), so the gate transfers across runner speeds the same way the
    // ratio gate below does.
    let scaled_rungs: Vec<TypeEnv> = vec![
        scaled_small,
        scaled_environment(25_000),
        scaled_environment(50_000),
    ];
    let sizes: Vec<usize> = scaled_rungs.iter().map(TypeEnv::len).collect();
    let measure_exponent = |rungs: &[TypeEnv]| -> f64 {
        let ladder: Vec<(usize, u128)> = rungs
            .iter()
            .map(|env| {
                let (_, _, _, median, _) =
                    measure(5, || PreparedEnv::prepare_sharded(env, &weights, 1));
                (env.len(), median)
            })
            .collect();
        growth_exponent(&ladder)
    };
    let mut exponent = measure_exponent(&scaled_rungs);
    println!(
        "σ prepare growth exponent over {sizes:?} decls: {exponent:.2} \
         (cap {GROWTH_EXPONENT_CAP})"
    );
    if exponent > GROWTH_EXPONENT_CAP {
        println!("exponent above the cap — re-measuring once to rule out a noisy window …");
        exponent = measure_exponent(&scaled_rungs);
        println!("re-measured σ prepare growth exponent: {exponent:.2}");
        if exponent > GROWTH_EXPONENT_CAP {
            println!(
                "PERF REGRESSION: σ preparation no longer scales near-linearly along the \
                 environment axis in both measurement windows"
            );
            return 1;
        }
    }

    // Gate 6 — parallel-prepare speedup, conditional: on machines with at
    // least PARALLEL_GATE_MIN_CORES cores, sharded preparation of the top
    // rung must beat sequential by PARALLEL_SPEEDUP_FLOOR. Skipped (with a
    // visible notice) below that threshold — a 1-core container can only
    // measure the merge overhead, which gate 4 already holds to correctness.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let top_rung = scaled_rungs.last().expect("ladder is non-empty");
    if cores >= PARALLEL_GATE_MIN_CORES {
        let measure_speedup = || {
            let (_, _, _, seq, _) =
                measure(5, || PreparedEnv::prepare_sharded(top_rung, &weights, 1));
            let (_, _, _, par, _) = measure(5, || {
                PreparedEnv::prepare_sharded(top_rung, &weights, cores)
            });
            (seq, par, seq as f64 / par.max(1) as f64)
        };
        let (seq, par, mut speedup) = measure_speedup();
        println!(
            "parallel prepare at {} decls on {cores} cores: sequential {seq} ns, \
             sharded {par} ns, speedup {speedup:.2}x (floor {PARALLEL_SPEEDUP_FLOOR}x)",
            top_rung.len(),
        );
        if speedup < PARALLEL_SPEEDUP_FLOOR {
            println!("speedup below the floor — re-measuring once to rule out a noisy window …");
            let (seq, par, second) = measure_speedup();
            speedup = second;
            println!("re-measured: sequential {seq} ns, sharded {par} ns, speedup {second:.2}x");
        }
        if speedup < PARALLEL_SPEEDUP_FLOOR {
            println!(
                "PERF REGRESSION: sharded preparation no longer delivers a \
                 {PARALLEL_SPEEDUP_FLOOR}x speedup at the top env_scaling rung in both \
                 measurement windows"
            );
            return 1;
        }
    } else {
        println!(
            "parallel-prepare speedup gate skipped: {cores} core(s) available \
             (needs >= {PARALLEL_GATE_MIN_CORES}); shard invariance was still checked by gate 4"
        );
    }

    // Gate 7 — environment lint, deterministic: `Engine::analyze` over the
    // two shipped models must report exactly the pinned diagnostic counts,
    // and the committed allowlist must cover every warning — the
    // library-level twin of the CI env-lint job (which drives the
    // insynth-envlint binary over the same models with the same allowlist).
    // Reports are deterministic, so exact counts are safe to pin; drift
    // means the API model or the analyzer changed without the lint baseline
    // being re-recorded.
    {
        let allowlist =
            Allowlist::parse(ENVLINT_ALLOWLIST).expect("committed envlint.allow parses");
        let lint_engine = Engine::new(SynthesisConfig::default());
        let expectations = [
            (
                "figure1",
                phases_environment(4),
                2usize,
                67usize,
                [0usize, 2, 65],
            ),
            (
                "scaled13k",
                scaled_environment(ENVLINT_SCALE),
                16,
                365,
                [0, 16, 349],
            ),
        ];
        for (name, lint_env, dead, total, [errors, warnings, infos]) in expectations {
            let report = lint_engine.analyze(&lint_env);
            let failing = report.failing(Severity::Warning, &allowlist).len();
            println!(
                "env-lint {name}: {} diagnostics ({} error, {} warning, {} info), {} dead, \
                 {failing} non-allowlisted (gate requires {total} = {errors}/{warnings}/{infos}, \
                 {dead} dead, 0 non-allowlisted)",
                report.diagnostics.len(),
                report.count_at(Severity::Error),
                report.count_at(Severity::Warning),
                report.count_at(Severity::Info),
                report.dead_decls.len(),
            );
            let pinned = report.diagnostics.len() == total
                && report.count_at(Severity::Error) == errors
                && report.count_at(Severity::Warning) == warnings
                && report.count_at(Severity::Info) == infos
                && report.dead_decls.len() == dead;
            if !pinned || failing != 0 {
                println!(
                    "PERF REGRESSION: the {name} model's analysis report drifted from the \
                     pinned counts (or a warning escaped the allowlist) — re-record the lint \
                     baseline if the model change is intentional"
                );
                return 1;
            }
        }
    }

    // Gate 8 — trace replay, deterministic: the pinned seeded editor trace
    // must replay to exactly the recorded event/prepare/graph-build counts
    // and result digest, byte-identically across two library runs, and the
    // JSON server path must digest identically to the library path on the
    // same workload. Everything compared is integer counters and a
    // float-free digest, so the gate is safe on a noisy 1-core runner.
    {
        let trace = trace_gate_trace();
        let ambient = trace_environment(trace.env);
        let first = replay_library(&trace, &ambient, 1);
        let second = replay_library(&trace, &ambient, 1);
        let server = replay_server(&trace, &ambient, 1);
        println!(
            "trace replay: {} events, {} prepares, {} graph builds, digest {} \
             (gate requires {TRACE_GATE_EVENTS}/{TRACE_GATE_PREPARES}/{TRACE_GATE_GRAPH_BUILDS}/{TRACE_GATE_DIGEST}); \
             server path digest {}",
            first.summary.events,
            first.prepares,
            first.graph_builds,
            first.digest_hex(),
            server.digest_hex(),
        );
        let pinned = first.summary.events == TRACE_GATE_EVENTS
            && first.prepares == TRACE_GATE_PREPARES
            && first.graph_builds == TRACE_GATE_GRAPH_BUILDS
            && first.digest_hex() == TRACE_GATE_DIGEST
            && first.errors == 0;
        let reproducible = first.to_json(true) == second.to_json(true);
        let server_matches = server.digest_hex() == first.digest_hex() && server.errors == 0;
        if !pinned || !reproducible || !server_matches {
            if !reproducible {
                println!("first and second library replays diverged:");
                println!(
                    "--- first\n{}\n--- second\n{}",
                    first.to_json(true),
                    second.to_json(true)
                );
            }
            println!(
                "PERF REGRESSION: the pinned editor trace no longer replays to its recorded \
                 counters/digest (or library and server paths diverged) — if the change to \
                 generation or replay semantics is intentional, re-pin the TRACE_GATE_* \
                 constants and re-record BENCH_BASELINE.json"
            );
            return 1;
        }
    }

    // Gate 9 — query-time ratio, re-measured once on a breach.
    let (query_median, unindexed_median, first_ratio) = measure_query_ratio(&env, &goal);
    println!(
        "graph query median {query_median} ns, unindexed reference median {unindexed_median} ns: \
         speedup {first_ratio:.2}x (recorded {recorded_ratio:.2}x, floor {floor:.2}x)"
    );
    if first_ratio >= floor {
        println!("OK: speedup within 25% of the recorded baseline");
        return 0;
    }
    println!("speedup below the floor — re-measuring once to rule out a noisy window …");
    let (second_query, second_unindexed, second_ratio) = measure_query_ratio(&env, &goal);
    println!(
        "graph query median {second_query} ns, unindexed reference median {second_unindexed} ns: \
         speedup {second_ratio:.2}x (first window {first_ratio:.2}x, floor {floor:.2}x)"
    );
    if second_ratio < floor {
        println!(
            "PERF REGRESSION: the graph pipeline's speedup over the unindexed reference \
             shrank by more than 25% vs the recorded baseline in both measurement windows"
        );
        1
    } else {
        println!(
            "OK: the re-measured speedup is within 25% of the recorded baseline \
             (the first window was noise)"
        );
        0
    }
}
