//! Regenerates the §3.2 compression statistic: how many distinct succinct
//! types remain after applying σ to a paper-scale environment.
//!
//! Run with `cargo run --release -p insynth-bench --bin compression`.

use insynth_apimodel::{extract, javaapi, ProgramPoint};
use insynth_core::{PreparedEnv, WeightConfig};

fn main() {
    let model = javaapi::standard_model();

    println!(
        "{:<42} {:>14} {:>16} {:>10}",
        "Environment", "#declarations", "#succinct types", "ratio"
    );
    for (label, imports) in [
        ("java.io + java.lang", vec!["java.io", "java.lang"]),
        (
            "java.io + java.lang + java.util",
            vec!["java.io", "java.lang", "java.util"],
        ),
        (
            "figure-1 context (with filler)",
            vec![
                "java.io",
                "java.lang",
                "java.util",
                "lib.generated0",
                "lib.generated1",
                "lib.generated2",
                "lib.generated3",
            ],
        ),
        (
            "everything modelled",
            model.packages().iter().map(|p| p.name.as_str()).collect(),
        ),
    ] {
        let mut point = ProgramPoint::new();
        for import in &imports {
            point = point.with_import(*import);
        }
        let env = extract(&model, &point);
        let prepared = PreparedEnv::prepare(&env, &WeightConfig::default());
        let ratio = prepared.distinct_succinct_types() as f64 / env.len().max(1) as f64;
        println!(
            "{:<42} {:>14} {:>16} {:>9.2}",
            label,
            env.len(),
            prepared.distinct_succinct_types(),
            ratio
        );
    }
    // The IDE-scale rung: the standard model grown with synthetic API tiers
    // to ~50k declarations (the env_scaling ladder's top). The tiers carry
    // deep same-shape overload families, so σ-compression *improves* with
    // scale — the paper's observation that large real APIs are overload-heavy.
    let scaled = javaapi::scaled_model(50_000);
    let mut point = ProgramPoint::new();
    for package in scaled.packages() {
        point = point.with_import(package.name.clone());
    }
    let env = extract(&scaled, &point);
    let prepared = PreparedEnv::prepare(&env, &WeightConfig::default());
    let ratio = prepared.distinct_succinct_types() as f64 / env.len().max(1) as f64;
    println!(
        "{:<42} {:>14} {:>16} {:>9.2}",
        "scaled model (50k tier)",
        env.len(),
        prepared.distinct_succinct_types(),
        ratio
    );
    println!();
    println!("Paper (§3.2): 3356 declarations reduce to 1783 succinct types (ratio 0.53).");
}
