//! Regenerates Table 2: the main effectiveness evaluation.
//!
//! For each of the 50 benchmarks this runs the synthesizer under the three
//! weight variants (no weights, weights without corpus, full) and the two
//! baseline intuitionistic provers, then prints one row per benchmark plus the
//! §7.5 summary block.
//!
//! Run with `cargo run --release -p insynth-bench --bin table2`.
//! Pass `--fast` to skip environment filler (small environments, quick smoke
//! run), `--no-provers` to skip the baseline provers, and `--recon-ms <N>` to
//! override the 7 s reconstruction budget (useful to bound the wall-clock time
//! of the whole 50 × 3 sweep).

use std::time::Duration;

use insynth_benchsuite::{
    all_benchmarks, run_benchmark, run_provers, summarize, table2_header, table2_row,
    BenchmarkOutcome, HarnessConfig, ProverOutcome,
};
use insynth_core::WeightMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let skip_provers = args.iter().any(|a| a == "--no-provers");
    let recon_ms = args
        .iter()
        .position(|a| a == "--recon-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok());

    let mut config = if fast {
        HarnessConfig::fast()
    } else {
        HarnessConfig::default()
    };
    if let Some(ms) = recon_ms {
        config.reconstruction_time_limit = Duration::from_millis(ms);
    }

    let benchmarks = all_benchmarks();
    println!("{}", table2_header());

    let mut all_outcomes = Vec::new();
    let mut no_weight_outcomes = Vec::new();
    let mut no_corpus_outcomes = Vec::new();

    for bench in &benchmarks {
        let no_weights = run_benchmark(bench, WeightMode::NoWeights, &config);
        let no_corpus = run_benchmark(bench, WeightMode::NoCorpus, &config);
        let all = run_benchmark(bench, WeightMode::Full, &config);
        let provers = if skip_provers {
            ProverOutcome {
                forward_verdict: None,
                forward_time: Duration::ZERO,
                g4ip_verdict: None,
                g4ip_time: Duration::ZERO,
            }
        } else {
            run_provers(bench, &config)
        };

        println!(
            "{}",
            table2_row(bench, &no_weights, &no_corpus, &all, &provers)
        );
        no_weight_outcomes.push(no_weights);
        no_corpus_outcomes.push(no_corpus);
        all_outcomes.push(all);
    }

    print_summary("No weights", &no_weight_outcomes, &benchmarks, |p| {
        p.rank_no_weights
    });
    print_summary("No corpus ", &no_corpus_outcomes, &benchmarks, |p| {
        p.rank_no_corpus
    });
    print_summary("All       ", &all_outcomes, &benchmarks, |p| p.rank_all);
}

fn print_summary(
    label: &str,
    outcomes: &[BenchmarkOutcome],
    benchmarks: &[insynth_benchsuite::Benchmark],
    paper_rank: impl Fn(&insynth_benchsuite::PaperRow) -> Option<usize>,
) {
    let summary = summarize(outcomes);
    let paper_found = benchmarks
        .iter()
        .filter(|b| paper_rank(&b.paper).is_some())
        .count();
    let paper_rank_one = benchmarks
        .iter()
        .filter(|b| paper_rank(&b.paper) == Some(1))
        .count();
    println!();
    println!(
        "[{label}] measured: found {}/{} ({:.0}%), rank 1 for {} ({:.0}%), mean prepare {} ms, mean query {} ms",
        summary.found,
        summary.total,
        summary.found_percent(),
        summary.rank_one,
        summary.rank_one_percent(),
        summary.mean_prepare.as_millis(),
        summary.mean_total.as_millis()
    );
    println!(
        "[{label}] paper   : found {}/{} , rank 1 for {}",
        paper_found,
        benchmarks.len(),
        paper_rank_one
    );
}
