//! Regenerates Table 1: the weights assigned to declaration kinds.
//!
//! Run with `cargo run -p insynth-bench --bin table1`.

use insynth_core::{DeclKind, Declaration, WeightConfig, WeightMode};
use insynth_lambda::Ty;

fn main() {
    let weights = WeightConfig::new(WeightMode::Full);
    println!("Table 1: weights for names appearing in declarations");
    println!("{:<28} {:>10}", "Nature of declaration", "Weight");

    let rows = [
        ("Lambda", DeclKind::Lambda),
        ("Local", DeclKind::Local),
        ("Coercion", DeclKind::Coercion),
        ("Class", DeclKind::Class),
        ("Package", DeclKind::Package),
        ("Literal", DeclKind::Literal),
    ];
    for (label, kind) in rows {
        let decl = Declaration::new("d", Ty::base("T"), kind);
        println!(
            "{:<28} {:>10}",
            label,
            weights.declaration_weight(&decl).value()
        );
    }

    println!(
        "{:<28} {:>10}",
        "Imported (f = 0)",
        imported_weight(&weights, 0)
    );
    println!(
        "{:<28} {:>10}",
        "Imported (f = 100)",
        imported_weight(&weights, 100)
    );
    println!(
        "{:<28} {:>10}",
        "Imported (f = 5162)",
        imported_weight(&weights, 5162)
    );
    println!();
    println!("Imported symbols weigh 215 + 785 / (1 + f(x)) where f(x) is the corpus frequency.");
}

fn imported_weight(weights: &WeightConfig, frequency: u64) -> f64 {
    let decl = Declaration::new("d", Ty::base("T"), DeclKind::Imported).with_frequency(frequency);
    (weights.declaration_weight(&decl).value() * 100.0).round() / 100.0
}
