//! Regenerates Figure 1 / §2.1: the SequenceInputStream completion.
//!
//! Prints the five highest-ranked well-typed expressions synthesized from the
//! declarations visible at the program point of the motivating example, plus
//! the statistics the paper quotes for it (number of visible declarations,
//! number of succinct types after σ, synthesis time).
//!
//! Run with `cargo run --release -p insynth-bench --bin figure1`.

use insynth_apimodel::{extract, javaapi, render_term, ProgramPoint};
use insynth_bench::DEFAULT_CORPUS_SEED;
use insynth_core::{Engine, Query, SynthesisConfig};
use insynth_corpus::synthetic_corpus;
use insynth_lambda::Ty;

fn main() {
    // class Streams {
    //   def getInputStreams(body: String, sig: String): SequenceInputStream = <cursor>
    // }
    let model = javaapi::standard_model();
    let point = ProgramPoint::new()
        .with_local("body", Ty::base("String"))
        .with_local("sig", Ty::base("String"))
        .with_import("java.io")
        .with_import("java.lang")
        .with_import("java.util")
        .with_import("lib.generated0")
        .with_import("lib.generated1")
        .with_import("lib.generated2")
        .with_import("lib.generated3");

    let mut env = extract(&model, &point);
    let corpus = synthetic_corpus(&model, DEFAULT_CORPUS_SEED);
    corpus.apply(&mut env);

    let engine = Engine::new(SynthesisConfig::default());
    let session = engine.prepare(&env);
    let goal = Ty::base("SequenceInputStream");
    let result = session.query(&Query::new(goal).with_n(5));

    println!("Figure 1: InSynth suggestions for `def getInputStreams(body: String, sig: String): SequenceInputStream = ?`");
    println!();
    for (i, snippet) in result.snippets.iter().enumerate() {
        println!(
            "  {}. {}   (weight {:.1})",
            i + 1,
            render_term(&snippet.term),
            snippet.weight.value()
        );
    }
    println!();
    println!(
        "visible declarations: {}   succinct types after sigma: {}   (paper: 3356 -> 1783)",
        result.stats.initial_declarations, result.stats.distinct_succinct_types
    );
    println!(
        "sigma-compression: {:.2}   (paper: 1783 / 3356 = 0.53)",
        result.stats.distinct_succinct_types as f64 / result.stats.initial_declarations as f64
    );
    println!(
        "prepare time: {} ms (once per program point); query time: {} ms (prove {} ms + reconstruction {} ms); paper reports < 250 ms",
        session.prepare_time().as_millis(),
        result.timings.total().as_millis(),
        result.timings.prove().as_millis(),
        result.timings.reconstruction.as_millis()
    );
}
