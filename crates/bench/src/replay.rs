//! Replay driver for editor traces ([`insynth_corpus::trace`]).
//!
//! A trace can be replayed two ways against the *same* workload:
//!
//! * **library path** ([`replay_library`]) — events drive
//!   `Engine::prepare` / `Session::query` / `Session::update` directly,
//!   measuring the engine with zero protocol overhead;
//! * **server path** ([`replay_server`]) — events are rendered to the JSON
//!   protocol and driven through [`Server::handle_line`], measuring the full
//!   service stack (parsing, session table, admission, metrics).
//!
//! Both report the same [`ReplayReport`]: per-kind event counts, engine
//! cache observability (prepares, graph builds), completion accounting, a
//! result **digest**, throughput, and p50/p90/p99 latency from the shared
//! [`insynth_stats::Histogram`].
//!
//! # Determinism
//!
//! The digest is an XOR-fold of one FNV-1a hash per event, over the event's
//! index and its *visible results* — returned term strings for
//! queries/pages, the session fingerprint for opens/updates. The fold makes
//! it order-insensitive across worker interleavings while the per-event
//! index keeps it position-sensitive, and it deliberately excludes weights
//! and wall-clock fields, so the library and server paths digest identically
//! and a replay is byte-reproducible across runs and worker counts. Engine
//! *counters* (prepares, graph builds, resumes) are additionally exact —
//! run-to-run identical — at `workers = 1`, the default and what the CI
//! gates pin; with more workers LRU eviction order depends on thread
//! interleaving, so counters may wobble while the digest stays fixed.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use insynth_core::{Engine, EnvDelta, Query, Session, SynthesisConfig, TypeEnv};
use insynth_corpus::trace::{Trace, TraceEnvSpec, TraceEvent, TraceEventKind, TraceSummary};
use insynth_server::{decl_to_json, env_to_json, ty_to_json, Json, Server, ServerConfig};
use insynth_stats::Histogram;

use crate::{phases_environment, scaled_environment};

/// Which execution path a replay drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    Library,
    Server,
}

impl ReplayMode {
    pub fn name(self) -> &'static str {
        match self {
            ReplayMode::Library => "library",
            ReplayMode::Server => "server",
        }
    }
}

/// Resolves a trace's environment recipe to the ambient declarations every
/// program point opens on top of.
pub fn trace_environment(spec: TraceEnvSpec) -> TypeEnv {
    match spec {
        TraceEnvSpec::Figure1 { filler } => phases_environment(filler),
        TraceEnvSpec::Scaled { target_decls } => scaled_environment(target_decls),
    }
}

/// The engine configuration a replay runs under: the default synthesis
/// config with the point and graph caches sized to the trace's working set
/// (one live fingerprint per point, a few graphs per point), so the hot set
/// never thrashes regardless of how many points the trace touches.
pub fn replay_config(trace: &Trace) -> SynthesisConfig {
    let points = trace.summary().points.max(1);
    let mut config = SynthesisConfig::default();
    config.point_cache_capacity = config.point_cache_capacity.max(points * 2);
    config.graph_cache_capacity = config.graph_cache_capacity.max(points * 8);
    config
}

/// Everything one replay produces.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    pub mode: ReplayMode,
    pub workers: usize,
    /// Ambient declarations under every point (before point locals).
    pub env_decls: usize,
    /// Per-kind event counts of the replayed trace.
    pub summary: TraceSummary,
    /// Completion requests served (queries + pages that reached a session).
    pub completions: u64,
    /// Total completion values returned across all pages.
    pub values: u64,
    /// Completions served by resuming a suspended walk.
    pub resumed: u64,
    /// Events that failed (query on an unopened point, server error
    /// response). Always 0 for a well-formed trace.
    pub errors: u64,
    /// σ-lowering runs the engine performed ([`Engine::stats`]).
    pub prepares: usize,
    /// Derivation-graph builds the engine performed.
    pub graph_builds: usize,
    /// Order-insensitive result digest (see module docs).
    pub digest: u64,
    pub elapsed: Duration,
    /// Per-completion latency (library: around `Session::query`; server:
    /// around `Server::handle_line` for `completion/complete`).
    pub latency: Histogram,
}

impl ReplayReport {
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }

    /// Events replayed per second of wall clock.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.summary.events as f64 / secs
        }
    }

    /// Renders the report as a JSON object. With `counters_only` the
    /// wall-clock section is omitted, leaving exactly the deterministic
    /// fields — two replays of the same trace must render byte-identically,
    /// which is what the CI smoke job diffs.
    pub fn to_json(&self, counters_only: bool) -> String {
        let s = &self.summary;
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode.name()));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"env_decls\": {},\n", self.env_decls));
        out.push_str(&format!(
            "  \"trace\": {{\"events\": {}, \"opens\": {}, \"queries\": {}, \"pages\": {}, \"updates\": {}, \"removals\": {}, \"closes\": {}, \"points\": {}}},\n",
            s.events, s.opens, s.queries, s.pages, s.updates, s.removals, s.closes, s.points
        ));
        out.push_str(&format!(
            "  \"engine\": {{\"prepares\": {}, \"graph_builds\": {}}},\n",
            self.prepares, self.graph_builds
        ));
        out.push_str(&format!(
            "  \"results\": {{\"completions\": {}, \"values\": {}, \"resumed\": {}, \"errors\": {}, \"digest\": \"{}\"}}",
            self.completions,
            self.values,
            self.resumed,
            self.errors,
            self.digest_hex()
        ));
        if !counters_only {
            out.push_str(&format!(
                ",\n  \"timing\": {{\"elapsed_ms\": {}, \"events_per_sec\": {:.1}, \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"mean\": {}, \"count\": {}}}}}",
                self.elapsed.as_millis(),
                self.events_per_sec(),
                self.latency.quantile_us(0.50),
                self.latency.quantile_us(0.90),
                self.latency.quantile_us(0.99),
                self.latency.mean_us(),
                self.latency.count()
            ));
        }
        out.push_str("\n}");
        out
    }
}

// ---------------------------------------------------------------------------
// Result digest
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over one event's index, opcode, point, and payload strings.
struct EventDigest(u64);

impl EventDigest {
    fn new(index: u64, op: char, point: u32) -> EventDigest {
        let mut d = EventDigest(FNV_OFFSET);
        d.bytes(&index.to_le_bytes());
        d.bytes(&[op as u8]);
        d.bytes(&point.to_le_bytes());
        d
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    fn text(&mut self, s: &str) {
        self.bytes(s.as_bytes());
        // Separator so ["ab","c"] and ["a","bc"] hash differently.
        self.bytes(&[0xff]);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Library path
// ---------------------------------------------------------------------------

/// What one worker accumulated; merged across workers into the report.
#[derive(Default)]
struct WorkerOutcome {
    digest: u64,
    completions: u64,
    values: u64,
    resumed: u64,
    errors: u64,
    latency: Histogram,
}

impl WorkerOutcome {
    fn merge(mut self, other: WorkerOutcome) -> WorkerOutcome {
        self.digest ^= other.digest;
        self.completions += other.completions;
        self.values += other.values;
        self.resumed += other.resumed;
        self.errors += other.errors;
        self.latency.merge(&other.latency);
        self
    }
}

/// The point-local environment an `Open` event establishes: the ambient
/// declarations with the event's locals pushed on top.
fn open_environment(ambient: &TypeEnv, locals: &[insynth_core::Declaration]) -> TypeEnv {
    let mut env = ambient.clone();
    for decl in locals {
        env.push(decl.clone());
    }
    env
}

fn delta_of(
    adds: &[insynth_core::Declaration],
    removes: &[String],
    reweights: &[(String, f64)],
) -> EnvDelta {
    let mut delta = EnvDelta::new();
    for decl in adds {
        delta = delta.add(decl.clone());
    }
    for name in removes {
        delta = delta.remove(name.clone());
    }
    for (name, weight) in reweights {
        delta = delta.reweight(name.clone(), *weight);
    }
    delta
}

fn run_library_worker(
    ambient: &TypeEnv,
    engine: &Engine,
    events: &[(usize, &TraceEvent)],
) -> WorkerOutcome {
    let mut sessions: HashMap<u32, Session> = HashMap::new();
    let mut out = WorkerOutcome::default();
    for &(index, event) in events {
        match &event.kind {
            TraceEventKind::Open { locals } => {
                let session = engine.prepare(&open_environment(ambient, locals));
                let mut d = EventDigest::new(index as u64, 'o', event.point);
                d.text(&format!("{}", session.fingerprint()));
                out.digest ^= d.finish();
                sessions.insert(event.point, session);
            }
            TraceEventKind::Update {
                adds,
                removes,
                reweights,
            } => match sessions.remove(&event.point) {
                Some(session) => {
                    let updated = session.update(&delta_of(adds, removes, reweights));
                    let mut d = EventDigest::new(index as u64, 'u', event.point);
                    d.text(&format!("{}", updated.fingerprint()));
                    out.digest ^= d.finish();
                    sessions.insert(event.point, updated);
                }
                None => out.errors += 1,
            },
            TraceEventKind::Query { goal, n } | TraceEventKind::Page { goal, n, .. } => {
                let cursor = match &event.kind {
                    TraceEventKind::Page { cursor, .. } => *cursor,
                    _ => 0,
                };
                match sessions.get(&event.point) {
                    Some(session) => {
                        // Mirror the server's `completion/complete`: ask for
                        // cursor + n, serve the page past the cursor.
                        let query = Query::new(goal.clone()).with_n(cursor.saturating_add(*n));
                        let started = Instant::now();
                        let result = session.query(&query);
                        out.latency.record(started.elapsed());
                        out.completions += 1;
                        if result.stats.resumed {
                            out.resumed += 1;
                        }
                        let mut d = EventDigest::new(index as u64, event.kind.op(), event.point);
                        for snippet in result.snippets.iter().skip(cursor) {
                            out.values += 1;
                            d.text(&snippet.term.to_string());
                        }
                        out.digest ^= d.finish();
                    }
                    None => out.errors += 1,
                }
            }
            TraceEventKind::Close => {
                sessions.remove(&event.point);
            }
        }
    }
    out
}

/// Replays a trace against the library path on `workers` threads. Points are
/// sharded across workers (`point % workers`), so each point's events run in
/// trace order while distinct points proceed concurrently — the same
/// contract an editor gives the engine.
pub fn replay_library(trace: &Trace, ambient: &TypeEnv, workers: usize) -> ReplayReport {
    let workers = workers.max(1);
    let engine = Engine::new(replay_config(trace));
    let started = Instant::now();
    let outcome = run_sharded(trace, workers, |events| {
        run_library_worker(ambient, &engine, events)
    });
    let elapsed = started.elapsed();
    let stats = engine.stats();
    report(
        ReplayMode::Library,
        workers,
        ambient.len(),
        trace,
        outcome,
        stats.prepare_count,
        stats.graph_build_count,
        elapsed,
    )
}

/// Runs `worker` over each point-shard of the trace, on `workers` threads.
fn run_sharded<F>(trace: &Trace, workers: usize, worker: F) -> WorkerOutcome
where
    F: Fn(&[(usize, &TraceEvent)]) -> WorkerOutcome + Sync,
{
    let mut shards: Vec<Vec<(usize, &TraceEvent)>> = vec![Vec::new(); workers];
    for (index, event) in trace.events.iter().enumerate() {
        shards[event.point as usize % workers].push((index, event));
    }
    if workers == 1 {
        return worker(&shards[0]);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| scope.spawn(|| worker(shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay worker panicked"))
            .fold(WorkerOutcome::default(), WorkerOutcome::merge)
    })
}

#[allow(clippy::too_many_arguments)]
fn report(
    mode: ReplayMode,
    workers: usize,
    env_decls: usize,
    trace: &Trace,
    outcome: WorkerOutcome,
    prepares: usize,
    graph_builds: usize,
    elapsed: Duration,
) -> ReplayReport {
    ReplayReport {
        mode,
        workers,
        env_decls,
        summary: trace.summary(),
        completions: outcome.completions,
        values: outcome.values,
        resumed: outcome.resumed,
        errors: outcome.errors,
        prepares,
        graph_builds,
        digest: outcome.digest,
        elapsed,
        latency: outcome.latency,
    }
}

// ---------------------------------------------------------------------------
// Server path
// ---------------------------------------------------------------------------

/// The server configuration a replay drives: sessions sized to the trace's
/// points, page-size clamp high enough to never bite (the library path does
/// not clamp, and digests must match).
pub fn replay_server_config(trace: &Trace) -> ServerConfig {
    ServerConfig {
        max_sessions: trace.summary().points + 8,
        max_n: 1 << 20,
        ..ServerConfig::default()
    }
}

/// Renders one trace event as a protocol request line. `session` is the
/// server-side session id addressing the event's point.
fn render_request(event: &TraceEvent, index: usize, session: u64, ambient: &TypeEnv) -> String {
    let id = Json::from(index as u64 + 1);
    let request = match &event.kind {
        TraceEventKind::Open { locals } => Json::object([
            ("id", id),
            ("method", Json::from("env/open")),
            (
                "params",
                Json::object([("env", env_to_json(&open_environment(ambient, locals)))]),
            ),
        ]),
        TraceEventKind::Update {
            adds,
            removes,
            reweights,
        } => Json::object([
            ("id", id),
            ("method", Json::from("env/update")),
            (
                "params",
                Json::object([
                    ("session", Json::from(session)),
                    (
                        "delta",
                        Json::object([
                            ("add", Json::Arr(adds.iter().map(decl_to_json).collect())),
                            (
                                "remove",
                                Json::Arr(removes.iter().map(|n| Json::from(n.as_str())).collect()),
                            ),
                            (
                                "reweight",
                                Json::Arr(
                                    reweights
                                        .iter()
                                        .map(|(name, weight)| {
                                            Json::object([
                                                ("name", Json::from(name.as_str())),
                                                ("weight", Json::from(*weight)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    ),
                ]),
            ),
        ]),
        TraceEventKind::Query { goal, n } => Json::object([
            ("id", id),
            ("method", Json::from("completion/complete")),
            (
                "params",
                Json::object([
                    ("session", Json::from(session)),
                    ("goal", ty_to_json(goal)),
                    ("n", Json::from(*n)),
                ]),
            ),
        ]),
        TraceEventKind::Page { goal, n, cursor } => Json::object([
            ("id", id),
            ("method", Json::from("completion/complete")),
            (
                "params",
                Json::object([
                    ("session", Json::from(session)),
                    ("goal", ty_to_json(goal)),
                    ("n", Json::from(*n)),
                    ("cursor", Json::from(*cursor)),
                ]),
            ),
        ]),
        TraceEventKind::Close => Json::object([
            ("id", id),
            ("method", Json::from("session/close")),
            ("params", Json::object([("session", Json::from(session))])),
        ]),
    };
    request.to_string()
}

/// Digests one server response for `event` at `index`; returns the
/// accounting the response carries. `None` means an error response.
struct ResponseAccount {
    digest: u64,
    values: u64,
    resumed: bool,
    is_completion: bool,
}

fn digest_response(
    event: &TraceEvent,
    index: usize,
    response: &Json,
) -> Result<Option<ResponseAccount>, String> {
    let Some(result) = response.get("result") else {
        return if response.get("error").is_some() {
            Ok(None)
        } else {
            Err(format!("response for event {index} has no result or error"))
        };
    };
    match &event.kind {
        TraceEventKind::Open { .. } | TraceEventKind::Update { .. } => {
            let fingerprint = result
                .get("fingerprint")
                .and_then(|f| f.as_str())
                .ok_or_else(|| {
                    format!("open/update response for event {index} lacks fingerprint")
                })?;
            let mut d = EventDigest::new(index as u64, event.kind.op(), event.point);
            d.text(fingerprint);
            Ok(Some(ResponseAccount {
                digest: d.finish(),
                values: 0,
                resumed: false,
                is_completion: false,
            }))
        }
        TraceEventKind::Query { .. } | TraceEventKind::Page { .. } => {
            let values = result
                .get("values")
                .and_then(|v| v.as_arr())
                .ok_or_else(|| format!("completion response for event {index} lacks values"))?;
            let mut d = EventDigest::new(index as u64, event.kind.op(), event.point);
            for value in values {
                let term = value
                    .get("term")
                    .and_then(|t| t.as_str())
                    .ok_or_else(|| format!("completion value for event {index} lacks term"))?;
                d.text(term);
            }
            Ok(Some(ResponseAccount {
                digest: d.finish(),
                values: values.len() as u64,
                resumed: result
                    .get("resumed")
                    .and_then(|r| r.as_bool())
                    .unwrap_or(false),
                is_completion: true,
            }))
        }
        TraceEventKind::Close => Ok(Some(ResponseAccount {
            digest: 0,
            values: 0,
            resumed: false,
            is_completion: false,
        })),
    }
}

fn run_server_worker(
    ambient: &TypeEnv,
    server: &Server,
    events: &[(usize, &TraceEvent)],
) -> WorkerOutcome {
    let mut session_ids: HashMap<u32, u64> = HashMap::new();
    let mut out = WorkerOutcome::default();
    for &(index, event) in events {
        let session = session_ids.get(&event.point).copied().unwrap_or(0);
        let line = render_request(event, index, session, ambient);
        let started = Instant::now();
        let response = server.handle_line(&line);
        let latency = started.elapsed();
        if let TraceEventKind::Open { .. } = event.kind {
            // The server assigns session ids; adopt its answer.
            if let Some(id) = response
                .get("result")
                .and_then(|r| r.get("session"))
                .and_then(|s| s.as_u64())
            {
                session_ids.insert(event.point, id);
            }
        }
        match digest_response(event, index, &response) {
            Ok(Some(account)) => {
                out.digest ^= account.digest;
                out.values += account.values;
                if account.is_completion {
                    out.completions += 1;
                    out.latency.record(latency);
                    if account.resumed {
                        out.resumed += 1;
                    }
                }
            }
            Ok(None) | Err(_) => out.errors += 1,
        }
        if let TraceEventKind::Close = event.kind {
            session_ids.remove(&event.point);
        }
    }
    out
}

/// Replays a trace through the JSON protocol (`Server::handle_line`) on
/// `workers` threads, sharded by point like [`replay_library`]. The server
/// owns a fresh engine under [`replay_config`], so engine counters are
/// directly comparable to the library path's.
pub fn replay_server(trace: &Trace, ambient: &TypeEnv, workers: usize) -> ReplayReport {
    let workers = workers.max(1);
    let server = Server::new(
        Engine::new(replay_config(trace)),
        replay_server_config(trace),
    );
    let started = Instant::now();
    let outcome = run_sharded(trace, workers, |events| {
        run_server_worker(ambient, &server, events)
    });
    let elapsed = started.elapsed();
    let stats = server.engine().stats();
    report(
        ReplayMode::Server,
        workers,
        ambient.len(),
        trace,
        outcome,
        stats.prepare_count,
        stats.graph_build_count,
        elapsed,
    )
}

// ---------------------------------------------------------------------------
// Scripted-transcript rendering (tests, offline inspection)
// ---------------------------------------------------------------------------

/// Renders the whole trace as a sequential protocol script — one request
/// line per event, request ids `1..`, with session ids *predicted* (the
/// server assigns `1, 2, 3, …` in open order). Only valid against a fresh
/// single-worker server, e.g. via [`insynth_server::serve_script`]; the live
/// [`replay_server`] path reads assigned ids from responses instead.
pub fn render_server_script(trace: &Trace, ambient: &TypeEnv) -> String {
    let mut next_session = 0u64;
    let mut session_ids: HashMap<u32, u64> = HashMap::new();
    let mut out = String::new();
    for (index, event) in trace.events.iter().enumerate() {
        if let TraceEventKind::Open { .. } = event.kind {
            next_session += 1;
            session_ids.insert(event.point, next_session);
        }
        let session = session_ids.get(&event.point).copied().unwrap_or(0);
        out.push_str(&render_request(event, index, session, ambient));
        out.push('\n');
        if let TraceEventKind::Close = event.kind {
            session_ids.remove(&event.point);
        }
    }
    out
}

/// Computes the replay digest from a transcript of response lines (one per
/// trace event, in event order) — what [`insynth_server::serve_script`]
/// returns for a script rendered by [`render_server_script`]. Byte-identical
/// responses therefore imply an identical digest to a live replay.
pub fn digest_responses(trace: &Trace, responses: &[String]) -> Result<u64, String> {
    if responses.len() != trace.events.len() {
        return Err(format!(
            "expected {} responses, got {}",
            trace.events.len(),
            responses.len()
        ));
    }
    let mut digest = 0u64;
    for (index, (event, line)) in trace.events.iter().zip(responses).enumerate() {
        let response =
            insynth_server::parse_json(line).map_err(|e| format!("response {index}: {e}"))?;
        match digest_response(event, index, &response)? {
            Some(account) => digest ^= account.digest,
            None => return Err(format!("event {index} got an error response: {line}")),
        }
    }
    Ok(digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insynth_corpus::trace::{generate_trace, TraceGenConfig};

    fn small_trace() -> Trace {
        generate_trace(&TraceGenConfig {
            seed: 7,
            points: 4,
            events: 120,
            env: TraceEnvSpec::Figure1 { filler: 0 },
            ..TraceGenConfig::default()
        })
    }

    #[test]
    fn library_and_server_paths_digest_identically() {
        let trace = small_trace();
        let ambient = trace_environment(trace.env);
        let lib = replay_library(&trace, &ambient, 1);
        let srv = replay_server(&trace, &ambient, 1);
        assert_eq!(lib.errors, 0, "library replay hit errors");
        assert_eq!(srv.errors, 0, "server replay hit errors");
        assert_eq!(lib.digest_hex(), srv.digest_hex());
        assert_eq!(lib.values, srv.values);
        assert_eq!(lib.completions, srv.completions);
        assert_eq!(lib.prepares, srv.prepares);
        assert_eq!(lib.graph_builds, srv.graph_builds);

        // Re-running is counter- and digest-identical (workers = 1).
        let again = replay_library(&trace, &ambient, 1);
        assert_eq!(again.to_json(true), lib.to_json(true));

        // More workers never change the digest, only the schedule.
        let wide = replay_library(&trace, &ambient, 2);
        assert_eq!(wide.digest_hex(), lib.digest_hex());
        assert_eq!(wide.values, lib.values);
    }

    #[test]
    fn scripted_transcript_digest_matches_live_replay() {
        let trace = small_trace();
        let ambient = trace_environment(trace.env);
        let script = render_server_script(&trace, &ambient);
        let server = Server::new(
            Engine::new(replay_config(&trace)),
            replay_server_config(&trace),
        );
        let responses = insynth_server::serve_script(&server, &script);
        let digest = digest_responses(&trace, &responses).expect("transcript digests");
        let live = replay_server(&trace, &ambient, 1);
        assert_eq!(format!("{digest:016x}"), live.digest_hex());
    }
}
