//! Prover comparison benchmarks (the last column group of Table 2).
//!
//! Measures, on representative benchmark queries, the time to *decide
//! inhabitation* with: the InSynth prover (exploration + pattern generation),
//! the forward saturation baseline ("Imogen-like") and the backward G4ip
//! baseline ("fCube-like").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use insynth_benchsuite::{all_benchmarks, build_environment, HarnessConfig};
use insynth_core::{Engine, SynthesisConfig};
use insynth_provers::{forward, g4ip, inhabitation_query, ProverLimits};

fn prover_comparison(c: &mut Criterion) {
    let config = HarnessConfig::fast();
    let benchmarks = all_benchmarks();
    let selected = ["FileInputStreamStringname", "DatagramSocket", "JTree"];

    for name in selected {
        let bench = benchmarks
            .iter()
            .find(|b| b.name == name)
            .expect("known benchmark");
        let env = build_environment(bench, &config);
        let (hyps, goal_formula) = inhabitation_query(&env, &bench.goal);
        let limits = ProverLimits::default();

        let mut group = c.benchmark_group(format!("prover/{name}"));
        group.sample_size(10);

        // The baseline provers receive a preprocessed formula set, so the
        // InSynth side is measured per-query against a prepared session for a
        // like-for-like comparison; `insynth_with_prepare` keeps the old
        // prepare-per-call number for reference.
        let session = Engine::new(SynthesisConfig::default()).prepare(&env);
        group.bench_function("insynth", |bencher| {
            bencher.iter(|| black_box(session.is_inhabited(&bench.goal)))
        });
        group.bench_function("insynth_with_prepare", |bencher| {
            bencher.iter(|| {
                let engine = Engine::new(SynthesisConfig::default());
                black_box(engine.prepare(&env).is_inhabited(&bench.goal))
            })
        });
        group.bench_function("forward_inverse_method", |bencher| {
            bencher.iter(|| black_box(forward::prove(&hyps, &goal_formula, &limits)))
        });
        group.bench_function("g4ip_sequent", |bencher| {
            bencher.iter(|| black_box(g4ip::prove(&hyps, &goal_formula, &limits)))
        });
        group.finish();
    }
}

criterion_group!(benches, prover_comparison);
criterion_main!(benches);
