//! Succinct-type compression benchmarks (§3.2).
//!
//! Measures the cost of lowering a whole environment into succinct form (the
//! σ transformation plus index construction) as the environment grows; the
//! companion binary (`--bin compression`) reports the compression ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use insynth_bench::compression_environment as environment_with_filler;
use insynth_core::{PreparedEnv, WeightConfig};

fn sigma_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("sigma_prepare");
    group.sample_size(20);
    for filler in [0usize, 4, 8, 16] {
        let env = environment_with_filler(filler);
        group.bench_with_input(
            BenchmarkId::from_parameter(env.len()),
            &env,
            |bencher, env| {
                // Explicitly one shard: the series measures sequential σ.
                bencher.iter(|| {
                    black_box(PreparedEnv::prepare_sharded(
                        env,
                        &WeightConfig::default(),
                        1,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sigma_compression);
criterion_main!(benches);
