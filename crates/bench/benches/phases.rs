//! Phase breakdown and ablation benchmarks.
//!
//! * `explore/...`, `patterns/...` and `reconstruct/...` measure the three
//!   phases separately on a paper-scale environment (the Prove/Recon split of
//!   Table 2).
//! * `genp_ablation/...` compares the optimized (backward-map, §5.7) pattern
//!   generation against the naive PROD/TRANSFER saturation.
//! * `env_scaling/...` measures end-to-end synthesis while the environment
//!   grows from a few hundred to several thousand declarations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use insynth_apimodel::{extract, javaapi, ApiModel, ProgramPoint};
use insynth_core::{
    explore, generate_patterns, generate_patterns_naive, generate_terms, ExploreLimits,
    GenerateLimits, PreparedEnv, SynthesisConfig, Synthesizer, TypeEnv, WeightConfig,
};
use insynth_corpus::synthetic_corpus;
use insynth_lambda::Ty;

fn figure1_environment(filler: usize) -> TypeEnv {
    let mut model = ApiModel::new();
    model.add_package(javaapi::java_lang());
    model.add_package(javaapi::java_io());
    model.add_package(javaapi::java_util());
    for i in 0..filler {
        model.add_package(javaapi::filler_package(i, 40, 12));
    }
    let mut point = ProgramPoint::new()
        .with_local("body", Ty::base("String"))
        .with_local("sig", Ty::base("String"));
    for package in model.packages() {
        point = point.with_import(package.name.clone());
    }
    let mut env = extract(&model, &point);
    let corpus = synthetic_corpus(&model, 42);
    corpus.apply(&mut env);
    env
}

fn phase_breakdown(c: &mut Criterion) {
    let env = figure1_environment(4);
    let goal = Ty::base("SequenceInputStream");
    let weights = WeightConfig::default();

    c.bench_function("explore/figure1", |bencher| {
        bencher.iter(|| {
            let mut prepared = PreparedEnv::prepare(&env, &weights);
            let goal_succ = prepared.store.sigma(&goal);
            black_box(explore(&mut prepared, goal_succ, &ExploreLimits::default()))
        })
    });

    c.bench_function("patterns/figure1", |bencher| {
        let mut prepared = PreparedEnv::prepare(&env, &weights);
        let goal_succ = prepared.store.sigma(&goal);
        let space = explore(&mut prepared, goal_succ, &ExploreLimits::default());
        bencher.iter(|| {
            let mut p = PreparedEnv::prepare(&env, &weights);
            let _ = p.store.sigma(&goal);
            black_box(generate_patterns(&mut p, &space))
        })
    });

    c.bench_function("reconstruct/figure1", |bencher| {
        bencher.iter(|| {
            let mut prepared = PreparedEnv::prepare(&env, &weights);
            let goal_succ = prepared.store.sigma(&goal);
            let space = explore(&mut prepared, goal_succ, &ExploreLimits::default());
            let patterns = generate_patterns(&mut prepared, &space);
            black_box(generate_terms(
                &mut prepared,
                &patterns,
                &env,
                &weights,
                &goal,
                10,
                &GenerateLimits::default(),
            ))
        })
    });
}

fn genp_ablation(c: &mut Criterion) {
    // The naive saturation is quadratic, so the ablation runs on a moderate
    // environment (no filler).
    let env = figure1_environment(0);
    let goal = Ty::base("SequenceInputStream");
    let weights = WeightConfig::default();
    let mut prepared = PreparedEnv::prepare(&env, &weights);
    let goal_succ = prepared.store.sigma(&goal);
    let space = explore(&mut prepared, goal_succ, &ExploreLimits::default());

    let mut group = c.benchmark_group("genp_ablation");
    group.bench_function("optimized_backward_map", |bencher| {
        bencher.iter(|| {
            let mut p = PreparedEnv::prepare(&env, &weights);
            let _ = p.store.sigma(&goal);
            black_box(generate_patterns(&mut p, &space))
        })
    });
    group.bench_function("naive_saturation", |bencher| {
        bencher.iter(|| {
            let mut p = PreparedEnv::prepare(&env, &weights);
            let _ = p.store.sigma(&goal);
            black_box(generate_patterns_naive(&mut p, &space))
        })
    });
    group.finish();
}

fn env_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("env_scaling");
    group.sample_size(10);
    for filler in [0usize, 2, 4, 8] {
        let env = figure1_environment(filler);
        group.bench_with_input(
            BenchmarkId::new("synthesize_top10", env.len()),
            &env,
            |bencher, env| {
                bencher.iter(|| {
                    let mut synth = Synthesizer::new(SynthesisConfig::default());
                    black_box(synth.synthesize(env, &Ty::base("SequenceInputStream"), 10))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, phase_breakdown, genp_ablation, env_scaling);
criterion_main!(benches);
