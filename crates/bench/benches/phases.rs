//! Phase breakdown, ablation and session-amortization benchmarks.
//!
//! * `explore/...`, `patterns/...` and `reconstruct/...` measure the three
//!   phases separately on a paper-scale environment (the Prove/Recon split of
//!   Table 2). The environment is prepared once; each phase runs against a
//!   query-local scratch overlay, as in the session API.
//! * `genp_ablation/...` compares the optimized (backward-map, §5.7) pattern
//!   generation against the naive PROD/TRANSFER saturation.
//! * `env_scaling/...` measures end-to-end synthesis (prepare + query) while
//!   the environment grows from a few hundred to several thousand
//!   declarations.
//! * `session_amortization/...` splits that end-to-end cost into its parts:
//!   preparing a session, querying an already prepared session, and the
//!   prepare-per-query pattern the deprecated one-shot API forced. The gap
//!   between the last two is the amortization the session API buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use insynth_bench::{build_graph, phases_environment as figure1_environment, scaled_environment};
use insynth_core::{
    explore, generate_patterns, generate_patterns_naive, generate_terms, generate_terms_best_first,
    generate_terms_unindexed, DerivationGraph, Engine, ExploreLimits, GenerateLimits, PreparedEnv,
    Query, SynthesisConfig, WeightConfig,
};
use insynth_lambda::Ty;
use insynth_succinct::TypeStore;

fn phase_breakdown(c: &mut Criterion) {
    let env = figure1_environment(4);
    let goal = Ty::base("SequenceInputStream");
    let weights = WeightConfig::default();
    let prepared = std::sync::Arc::new(PreparedEnv::prepare(&env, &weights));

    c.bench_function("explore/figure1", |bencher| {
        bencher.iter(|| {
            let mut store = prepared.scratch();
            let goal_succ = store.sigma(&goal);
            black_box(explore(
                &prepared,
                &mut store,
                goal_succ,
                &ExploreLimits::default(),
            ))
        })
    });

    // The patterns/reconstruct benches reuse the scratch that produced the
    // explored space: `space` references environments interned into that
    // overlay, so a fresh scratch per iteration would dangle those ids. The
    // interning is warm after the first iteration — these two therefore
    // measure the phase's algorithmic cost, not per-query intern traffic
    // (explore/figure1 above covers the cold-scratch path).
    c.bench_function("patterns/figure1", |bencher| {
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        bencher.iter(|| black_box(generate_patterns(&mut store, &space)))
    });

    c.bench_function("graph_build/figure1", |bencher| {
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        bencher.iter(|| {
            black_box(DerivationGraph::build(
                &prepared, &mut store, &patterns, &env, &weights, &goal,
            ))
        })
    });

    // Warm: the persisted walk caches (hole-goal memo, expansion lists) are
    // populated by the first iteration and reused by the rest — the state a
    // session's repeated same-goal queries run in.
    c.bench_function("reconstruct/figure1", |bencher| {
        let graph = build_graph(&env, &weights, &goal);
        bencher.iter(|| black_box(generate_terms(&graph, &env, 10, &GenerateLimits::default())))
    });

    // Cold: clearing the persisted caches each iteration measures the
    // first-query cost (the clear itself is trivial next to the walk).
    c.bench_function("reconstruct_cold/figure1", |bencher| {
        let graph = build_graph(&env, &weights, &goal);
        bencher.iter(|| {
            graph.clear_walk_caches();
            black_box(generate_terms(&graph, &env, 10, &GenerateLimits::default()))
        })
    });

    // The A* vs plain best-first walk ablation on the same graph (the
    // heuristic's walk-level win; `reconstruct/figure1` above is the A* walk
    // end to end).
    c.bench_function("reconstruct_best_first/figure1", |bencher| {
        let graph = build_graph(&env, &weights, &goal);
        bencher.iter(|| {
            black_box(generate_terms_best_first(
                &graph,
                &env,
                10,
                &GenerateLimits::default(),
            ))
        })
    });

    c.bench_function("reconstruct_unindexed/figure1", |bencher| {
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        let patterns = generate_patterns(&mut store, &space);
        bencher.iter(|| {
            black_box(generate_terms_unindexed(
                &prepared,
                &mut store,
                &patterns,
                &env,
                &weights,
                &goal,
                10,
                &GenerateLimits::default(),
            ))
        })
    });
}

fn genp_ablation(c: &mut Criterion) {
    // The naive saturation is quadratic, so the ablation runs on a moderate
    // environment (no filler).
    let env = figure1_environment(0);
    let goal = Ty::base("SequenceInputStream");
    let weights = WeightConfig::default();
    let prepared = PreparedEnv::prepare(&env, &weights);

    let mut group = c.benchmark_group("genp_ablation");
    group.bench_function("optimized_backward_map", |bencher| {
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        bencher.iter(|| black_box(generate_patterns(&mut store, &space)))
    });
    group.bench_function("naive_saturation", |bencher| {
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(&goal);
        let space = explore(&prepared, &mut store, goal_succ, &ExploreLimits::default());
        bencher.iter(|| black_box(generate_patterns_naive(&mut store, &space)))
    });
    group.finish();
}

fn env_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("env_scaling");
    group.sample_size(10);
    // Filler rungs (hundreds to a few thousand declarations) followed by
    // synthetic-tier rungs up to IDE scale (~51k declarations).
    let rungs: Vec<_> = [0usize, 2, 4, 8]
        .iter()
        .map(|&filler| figure1_environment(filler))
        .chain(
            [12_000usize, 50_000]
                .iter()
                .map(|&target| scaled_environment(target)),
        )
        .collect();
    for env in &rungs {
        group.bench_with_input(
            BenchmarkId::new("synthesize_top10", env.len()),
            env,
            |bencher, env| {
                bencher.iter(|| {
                    let engine = Engine::new(SynthesisConfig::default());
                    let session = engine.prepare(env);
                    black_box(session.query(&Query::new(Ty::base("SequenceInputStream"))))
                })
            },
        );
    }
    group.finish();
}

fn session_amortization(c: &mut Criterion) {
    let env = figure1_environment(4);
    let query = Query::new(Ty::base("SequenceInputStream"));

    let mut group = c.benchmark_group("session_amortization");
    group.sample_size(10);
    // A fresh engine per iteration measures the true σ cost; a shared engine
    // would fingerprint-hit its point cache after the first iteration. σ is
    // pinned to one shard so the series records the sequential cost on any
    // machine (the sharded path has its own baseline entries).
    group.bench_function("prepare_only", |bencher| {
        bencher.iter(|| {
            let config = SynthesisConfig {
                sigma_shards: 1,
                ..SynthesisConfig::default()
            };
            black_box(Engine::new(config).prepare(&env))
        })
    });
    // The cross-point fast path: preparing a structurally equal environment
    // on a warm engine is a fingerprint hash + verification, no σ.
    let engine = Engine::new(SynthesisConfig::default());
    let _warm = engine.prepare(&env);
    group.bench_function("prepare_fingerprint_hit", |bencher| {
        bencher.iter(|| black_box(engine.prepare(&env)))
    });
    let session = engine.prepare(&env);
    group.bench_function("query_on_prepared_session", |bencher| {
        bencher.iter(|| black_box(session.query(&query)))
    });
    group.bench_function("prepare_per_query", |bencher| {
        bencher.iter(|| {
            black_box(
                Engine::new(SynthesisConfig::default())
                    .prepare(&env)
                    .query(&query),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    phase_breakdown,
    genp_ablation,
    env_scaling,
    session_amortization
);
criterion_main!(benches);
