//! Goal-independent static analysis over σ-lowered environments.
//!
//! The explore phase (paper Figure 7) is a *backward*, goal-directed
//! reachability fixpoint. This crate implements its forward dual: starting
//! from the succinct images of every declaration, it computes the largest
//! environment any completion walk can ever run in (`E_max`) and the set of
//! base types producible there — without fixing a goal. On top of that
//! producibility fixpoint it emits deterministic, severity-coded
//! diagnostics:
//!
//! * **dead declarations** — a parameter type is unproducible even in
//!   `E_max`, so the declaration can appear in no completion for any goal;
//! * **uninhabitable types** — base types mentioned in the environment's
//!   signatures that no term can ever have;
//! * **ambiguous overload groups** — σ-indistinguishable declarations with
//!   equal effective weight, whose relative ranking is pure tie-break order;
//! * **duplicate declarations** — identical `(name, type)` pairs that render
//!   identical completions;
//! * **weight anomalies** — negative effective weights, which break weight
//!   monotonicity and force the engine's best-first fallback (disabling A*).
//!
//! # The `E_max` construction
//!
//! Exploration only ever grows an environment through the STRIP rule: when a
//! *functional* succinct type `{b₁,…,bₖ} → v` is requested, its arguments
//! become environment members (lambda binders) and `v` is requested in the
//! extended environment. Requestable positions are exactly the argument
//! types of environment members. So the closure
//!
//! * members `M` ⩴ σ-images of the declarations (plus any extra seeds),
//! * for every `m ∈ M`, every argument of `m` is *requestable*,
//! * for every requestable `r`, every argument of `r` is a member,
//!
//! reaches a fixpoint `E_max` that contains every environment any walk can
//! construct. Producibility then collapses to a Horn-style fixpoint over
//! base-type symbols: a member `{a₁,…,aₖ} → v` produces `v` once every
//! `R(aᵢ)` is producible (leaf members seed the set). Because inhabitation
//! is monotone in the environment and every walk environment is a subset of
//! `E_max`, a type unproducible here is unproducible everywhere — which is
//! what makes the dead-declaration verdict sound for answer-preserving
//! pruning.
//!
//! The crate is deliberately a leaf: it depends only on the succinct-type
//! store and works on plain per-declaration facts ([`DeclFacts`]), so the
//! engine, the CLI and the server all adapt to it rather than the other way
//! around. Every output vector is sorted, so reports are byte-stable across
//! runs and shard counts.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

use insynth_intern::Symbol;
use insynth_succinct::{SuccinctTyId, TypeStore};

/// The per-declaration facts the analyzer consumes: everything it needs from
/// a prepared environment, with no dependency on the engine's types.
#[derive(Debug, Clone)]
pub struct DeclFacts {
    /// The declaration's source name.
    pub name: String,
    /// Its simple type, rendered (used in messages only).
    pub rendered_ty: String,
    /// Its lexical kind, rendered (used in messages only).
    pub kind: String,
    /// The σ image of its type, interned in the store under analysis.
    pub succ: SuccinctTyId,
    /// Its effective weight (after the Table 1 formula and any override).
    pub weight: f64,
}

/// Diagnostic severity, ordered `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; never fails a `--check`.
    Info,
    /// A real defect in the environment (wasted work or redundant results).
    Warning,
    /// Degrades the engine itself (e.g. disables the A* walk).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The five diagnostic categories the analyzer emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagnosticKind {
    /// Negative effective weight: monotonicity broken, A* disabled.
    WeightAnomaly,
    /// A declaration that can appear in no completion for any goal.
    DeadDecl,
    /// Identical `(name, type)` declarations rendering identical snippets.
    DuplicateDecl,
    /// A mentioned base type no term can ever have.
    UninhabitableType,
    /// σ-indistinguishable declarations with equal effective weight.
    AmbiguousOverloads,
}

impl DiagnosticKind {
    /// The stable machine-readable code, also the allowlist key.
    pub fn code(self) -> &'static str {
        match self {
            DiagnosticKind::WeightAnomaly => "weight-anomaly",
            DiagnosticKind::DeadDecl => "dead-decl",
            DiagnosticKind::DuplicateDecl => "duplicate-decl",
            DiagnosticKind::UninhabitableType => "uninhabitable-type",
            DiagnosticKind::AmbiguousOverloads => "ambiguous-overloads",
        }
    }

    /// The severity this kind is reported at.
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticKind::WeightAnomaly => Severity::Error,
            DiagnosticKind::DeadDecl => Severity::Warning,
            DiagnosticKind::DuplicateDecl => Severity::Warning,
            DiagnosticKind::UninhabitableType => Severity::Info,
            DiagnosticKind::AmbiguousOverloads => Severity::Info,
        }
    }
}

/// One finding: a severity-coded, allowlist-addressable fact about the
/// environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Reporting severity (always `kind.severity()`).
    pub severity: Severity,
    /// The category.
    pub kind: DiagnosticKind,
    /// What the finding is *about*: a declaration name, a base-type name, or
    /// a rendered succinct type. The allowlist matches on `(code, subject)`.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
    /// Indices (into the analyzed declaration list) of the declarations
    /// involved, sorted ascending.
    pub decls: Vec<usize>,
}

impl Diagnostic {
    fn new(kind: DiagnosticKind, subject: String, message: String, mut decls: Vec<usize>) -> Self {
        decls.sort_unstable();
        Diagnostic {
            severity: kind.severity(),
            kind,
            subject,
            message,
            decls,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity,
            self.kind.code(),
            self.message
        )
    }
}

/// The result of analyzing one environment. Every vector is sorted, so equal
/// environments produce byte-equal reports.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Number of declarations analyzed.
    pub decl_count: usize,
    /// Number of member types of `E_max` (σ images plus lambda-binder
    /// closure).
    pub member_types: usize,
    /// Number of base-type symbols producible in `E_max`.
    pub producible_types: usize,
    /// Sorted names of mentioned base types that are *not* producible.
    pub unproducible_types: Vec<String>,
    /// Sorted indices of declarations proven dead (usable in no completion).
    pub dead_decls: Vec<usize>,
    /// `false` when any effective weight (declaration or lambda) is
    /// negative — the condition that disables the A* walk.
    pub weights_monotone: bool,
    /// All findings, sorted by descending severity, then kind, subject and
    /// involved declarations.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// The highest severity among the diagnostics, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Number of diagnostics of the given kind.
    pub fn count_of(&self, kind: DiagnosticKind) -> usize {
        self.diagnostics.iter().filter(|d| d.kind == kind).count()
    }

    /// Number of diagnostics at the given severity.
    pub fn count_at(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Diagnostics at or above `threshold` that `allowlist` does not cover —
    /// the set a `--check` gate fails on.
    pub fn failing<'a>(
        &'a self,
        threshold: Severity,
        allowlist: &Allowlist,
    ) -> Vec<&'a Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity >= threshold && !allowlist.allows(d))
            .collect()
    }

    /// Renders the report as human-readable lines: one per diagnostic, then
    /// a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for diagnostic in &self.diagnostics {
            out.push_str(&diagnostic.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} declarations, {} member types, {} producible base types; \
             {} diagnostics ({} error, {} warning, {} info), {} dead declarations\n",
            self.decl_count,
            self.member_types,
            self.producible_types,
            self.diagnostics.len(),
            self.count_at(Severity::Error),
            self.count_at(Severity::Warning),
            self.count_at(Severity::Info),
            self.dead_decls.len(),
        ));
        out
    }
}

/// The `E_max` closure and its producibility fixpoint — the reachability
/// half of the analysis, reusable on its own (the prune path and the
/// differential tests consume it without building a report).
#[derive(Debug, Clone)]
pub struct Reachability {
    members: Vec<SuccinctTyId>,
    requestable: Vec<SuccinctTyId>,
    producible: HashSet<Symbol>,
}

impl Reachability {
    /// Computes the member closure and producibility fixpoint from the given
    /// seed member types (declaration σ images, plus — on the goal-directed
    /// prune path — the goal's argument types, which STRIP would add).
    pub fn compute<S: TypeStore>(store: &S, seeds: &[SuccinctTyId]) -> Reachability {
        // Member / requestable closure: args of members are requestable;
        // args of requestable (functional) types become members (the lambda
        // binders STRIP introduces).
        let mut members: BTreeSet<SuccinctTyId> = seeds.iter().copied().collect();
        let mut work: Vec<SuccinctTyId> = members.iter().copied().collect();
        let mut requestable: BTreeSet<SuccinctTyId> = BTreeSet::new();
        while let Some(member) = work.pop() {
            for &arg in store.args_of(member) {
                if requestable.insert(arg) {
                    for &binder in store.args_of(arg) {
                        if members.insert(binder) {
                            work.push(binder);
                        }
                    }
                }
            }
        }
        let members: Vec<SuccinctTyId> = members.into_iter().collect();
        let requestable: Vec<SuccinctTyId> = requestable.into_iter().collect();

        // Horn-style propagation: member i fires (producing R(i)) once all
        // its distinct argument return types are producible.
        let mut producible: HashSet<Symbol> = HashSet::new();
        let mut queue: Vec<Symbol> = Vec::new();
        let mut waiting: HashMap<Symbol, Vec<usize>> = HashMap::new();
        let mut missing: Vec<usize> = Vec::with_capacity(members.len());
        for (idx, &member) in members.iter().enumerate() {
            let needs: BTreeSet<Symbol> = store
                .args_of(member)
                .iter()
                .map(|&a| store.ret_of(a))
                .collect();
            missing.push(needs.len());
            if needs.is_empty() {
                let ret = store.ret_of(member);
                if producible.insert(ret) {
                    queue.push(ret);
                }
            } else {
                for need in needs {
                    waiting.entry(need).or_default().push(idx);
                }
            }
        }
        while let Some(sym) = queue.pop() {
            for &idx in waiting.get(&sym).map(Vec::as_slice).unwrap_or(&[]) {
                missing[idx] -= 1;
                if missing[idx] == 0 {
                    let ret = store.ret_of(members[idx]);
                    if producible.insert(ret) {
                        queue.push(ret);
                    }
                }
            }
        }

        Reachability {
            members,
            requestable,
            producible,
        }
    }

    /// The member types of `E_max`, sorted by id.
    pub fn members(&self) -> &[SuccinctTyId] {
        &self.members
    }

    /// Every type appearing in a requestable (hole) position, sorted by id.
    pub fn requestable(&self) -> &[SuccinctTyId] {
        &self.requestable
    }

    /// `true` if some term of base type `sym` is producible in `E_max`.
    pub fn is_producible(&self, sym: Symbol) -> bool {
        self.producible.contains(&sym)
    }

    /// Number of producible base-type symbols.
    pub fn producible_count(&self) -> usize {
        self.producible.len()
    }

    /// The first (lowest-id) argument of `succ` whose return type is
    /// unproducible, if any — `None` means every hole of the type can be
    /// filled, i.e. a declaration of this type is usable.
    pub fn blocking_arg<S: TypeStore>(&self, store: &S, succ: SuccinctTyId) -> Option<Symbol> {
        store
            .args_of(succ)
            .iter()
            .map(|&a| store.ret_of(a))
            .find(|ret| !self.is_producible(*ret))
    }
}

/// Indices of declarations whose σ image has an unproducible argument type
/// even in `E_max` extended with `goal_args` as members — sound to drop
/// before building the derivation graph for that goal, because every
/// environment the walk constructs is a subset of the extended `E_max` and
/// inhabitation is monotone in the environment.
pub fn dead_decl_indices<S: TypeStore>(
    store: &S,
    decl_succ: &[SuccinctTyId],
    goal_args: &[SuccinctTyId],
) -> Vec<usize> {
    let seeds: Vec<SuccinctTyId> = decl_succ.iter().chain(goal_args).copied().collect();
    let reachability = Reachability::compute(store, &seeds);
    decl_succ
        .iter()
        .enumerate()
        .filter(|(_, &succ)| reachability.blocking_arg(store, succ).is_some())
        .map(|(idx, _)| idx)
        .collect()
}

/// Analyzes one environment: computes the producibility fixpoint and emits
/// the full diagnostic report. `lambda_weight` is the weight of lambda
/// binders under the active weight configuration (it participates in the
/// monotonicity check).
pub fn analyze<S: TypeStore>(store: &S, decls: &[DeclFacts], lambda_weight: f64) -> AnalysisReport {
    let seeds: Vec<SuccinctTyId> = decls.iter().map(|d| d.succ).collect();
    let reachability = Reachability::compute(store, &seeds);
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    // Dead declarations: some hole type can never be filled.
    let mut dead_decls: Vec<usize> = Vec::new();
    for (idx, decl) in decls.iter().enumerate() {
        if let Some(blocked) = reachability.blocking_arg(store, decl.succ) {
            dead_decls.push(idx);
            diagnostics.push(Diagnostic::new(
                DiagnosticKind::DeadDecl,
                decl.name.clone(),
                format!(
                    "`{} : {}` [{}] can appear in no completion: no term of type `{}` is producible",
                    decl.name,
                    decl.rendered_ty,
                    decl.kind,
                    store.base_name(blocked),
                ),
                vec![idx],
            ));
        }
    }

    // Uninhabitable types: mentioned base types outside the producible set.
    // "Mentioned" = the return type of any member or requestable type, which
    // covers every base name occurring anywhere in a declaration signature.
    let mut mentioned: BTreeMap<&str, Symbol> = BTreeMap::new();
    for &ty in reachability
        .members()
        .iter()
        .chain(reachability.requestable())
    {
        let ret = store.ret_of(ty);
        mentioned.insert(store.base_name(ret), ret);
    }
    let mut unproducible_types: Vec<String> = Vec::new();
    for (name, sym) in mentioned {
        if reachability.is_producible(sym) {
            continue;
        }
        unproducible_types.push(name.to_owned());
        let blocked_decls: Vec<usize> = decls
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                store
                    .args_of(d.succ)
                    .iter()
                    .any(|&a| store.ret_of(a) == sym)
            })
            .map(|(idx, _)| idx)
            .collect();
        diagnostics.push(Diagnostic::new(
            DiagnosticKind::UninhabitableType,
            name.to_owned(),
            format!("no term of type `{name}` is producible from this environment"),
            blocked_decls,
        ));
    }

    // Duplicates: identical (name, simple type) declarations.
    let mut by_identity: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (idx, decl) in decls.iter().enumerate() {
        by_identity
            .entry((decl.name.as_str(), decl.rendered_ty.as_str()))
            .or_default()
            .push(idx);
    }
    for ((name, ty), group) in &by_identity {
        if group.len() < 2 {
            continue;
        }
        diagnostics.push(Diagnostic::new(
            DiagnosticKind::DuplicateDecl,
            (*name).to_owned(),
            format!(
                "declaration `{} : {}` appears {} times; the copies render identical completions",
                name,
                ty,
                group.len(),
            ),
            group.clone(),
        ));
    }

    // Ambiguous overload groups: σ-indistinguishable declarations with equal
    // effective weight — the walk's tie-break (declaration order) is the
    // only thing ranking them. Exact duplicates are already reported above
    // and excluded here so one defect yields one finding.
    let mut by_succ: BTreeMap<SuccinctTyId, Vec<usize>> = BTreeMap::new();
    for (idx, decl) in decls.iter().enumerate() {
        by_succ.entry(decl.succ).or_default().push(idx);
    }
    for (&succ, group) in &by_succ {
        if group.len() < 2 {
            continue;
        }
        let mut by_weight: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for &idx in group {
            by_weight
                .entry(decls[idx].weight.to_bits())
                .or_default()
                .push(idx);
        }
        for (bits, tied) in &by_weight {
            if tied.len() < 2 {
                continue;
            }
            let identities: BTreeSet<(&str, &str)> = tied
                .iter()
                .map(|&i| (decls[i].name.as_str(), decls[i].rendered_ty.as_str()))
                .collect();
            if identities.len() < 2 {
                continue; // pure duplicates, reported as duplicate-decl
            }
            let names: Vec<&str> = identities.iter().map(|(name, _)| *name).collect();
            diagnostics.push(Diagnostic::new(
                DiagnosticKind::AmbiguousOverloads,
                store.display_ty(succ),
                format!(
                    "{} declarations ({}) are σ-indistinguishable as `{}` with equal effective \
                     weight {}: their relative ranking is tie-break order",
                    tied.len(),
                    names.join(", "),
                    store.display_ty(succ),
                    f64::from_bits(*bits),
                ),
                tied.clone(),
            ));
        }
    }

    // Weight anomalies: negative effective weights select the best-first
    // fallback for the whole environment (A* disabled).
    let mut weights_monotone = true;
    for (idx, decl) in decls.iter().enumerate() {
        if decl.weight < 0.0 {
            weights_monotone = false;
            diagnostics.push(Diagnostic::new(
                DiagnosticKind::WeightAnomaly,
                decl.name.clone(),
                format!(
                    "declaration `{}` has negative effective weight {}: weight monotonicity is \
                     broken and the A* walk is disabled",
                    decl.name, decl.weight,
                ),
                vec![idx],
            ));
        }
    }
    if lambda_weight < 0.0 {
        weights_monotone = false;
        diagnostics.push(Diagnostic::new(
            DiagnosticKind::WeightAnomaly,
            "<lambda>".to_owned(),
            format!(
                "the lambda binder weight {lambda_weight} is negative: weight monotonicity is \
                 broken and the A* walk is disabled",
            ),
            Vec::new(),
        ));
    }

    diagnostics.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.kind.cmp(&b.kind))
            .then_with(|| a.subject.cmp(&b.subject))
            .then_with(|| a.decls.cmp(&b.decls))
    });

    AnalysisReport {
        decl_count: decls.len(),
        member_types: reachability.members().len(),
        producible_types: reachability.producible_count(),
        unproducible_types,
        dead_decls,
        weights_monotone,
        diagnostics,
    }
}

/// Intentional findings recorded as `(code, subject)` pairs; `*` as subject
/// covers every finding of that code. Consumed by `insynth-envlint --check`
/// and the bench harness's diagnostic gate.
///
/// File format: one entry per line, `code subject` separated by whitespace
/// (subjects may contain spaces — everything after the first field counts);
/// blank lines and lines starting with `#` are skipped. `#` elsewhere is
/// part of the subject (declaration names use `Class#member`), so there are
/// no trailing comments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: BTreeSet<(String, String)>,
}

impl Allowlist {
    /// An empty allowlist (allows nothing).
    pub fn new() -> Self {
        Allowlist::default()
    }

    /// Parses the `code subject` line format. Unknown codes are rejected so
    /// a typo cannot silently allow nothing.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        const CODES: [&str; 5] = [
            "weight-anomaly",
            "dead-decl",
            "duplicate-decl",
            "uninhabitable-type",
            "ambiguous-overloads",
        ];
        let mut entries = BTreeSet::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (code, subject) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("line {}: expected `code subject`", lineno + 1))?;
            if !CODES.contains(&code) {
                return Err(format!("line {}: unknown code {:?}", lineno + 1, code));
            }
            entries.insert((code.to_owned(), subject.trim().to_owned()));
        }
        Ok(Allowlist { entries })
    }

    /// Adds one entry programmatically.
    pub fn allow(&mut self, code: &str, subject: &str) {
        self.entries.insert((code.to_owned(), subject.to_owned()));
    }

    /// `true` if the diagnostic is covered by an entry (exact subject or
    /// `*`).
    pub fn allows(&self, diagnostic: &Diagnostic) -> bool {
        let code = diagnostic.kind.code();
        self.entries
            .contains(&(code.to_owned(), diagnostic.subject.clone()))
            || self.entries.contains(&(code.to_owned(), "*".to_owned()))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insynth_lambda::Ty;
    use insynth_succinct::SuccinctStore;

    fn facts(store: &mut SuccinctStore, name: &str, ty: Ty, weight: f64) -> DeclFacts {
        DeclFacts {
            name: name.to_owned(),
            rendered_ty: ty.to_string(),
            kind: "local".to_owned(),
            succ: store.sigma(&ty),
            weight,
        }
    }

    #[test]
    fn empty_environment_has_no_findings() {
        let store = SuccinctStore::new();
        let report = analyze(&store, &[], 1.0);
        assert_eq!(report.decl_count, 0);
        assert_eq!(report.member_types, 0);
        assert!(report.diagnostics.is_empty());
        assert!(report.weights_monotone);
        assert_eq!(report.max_severity(), None);
    }

    #[test]
    fn base_declarations_are_producible_and_alive() {
        let mut store = SuccinctStore::new();
        let decls = vec![facts(&mut store, "x", Ty::base("A"), 5.0)];
        let report = analyze(&store, &decls, 1.0);
        assert_eq!(report.producible_types, 1);
        assert!(report.dead_decls.is_empty());
        assert!(report.unproducible_types.is_empty());
    }

    #[test]
    fn missing_argument_producer_kills_the_declaration() {
        let mut store = SuccinctStore::new();
        let decls = vec![
            facts(&mut store, "x", Ty::base("A"), 5.0),
            facts(
                &mut store,
                "f",
                Ty::fun(vec![Ty::base("B")], Ty::base("C")),
                20.0,
            ),
        ];
        let report = analyze(&store, &decls, 1.0);
        assert_eq!(report.dead_decls, vec![1]);
        // B is mentioned but unproducible; C is unproducible too (its only
        // producer is dead).
        assert_eq!(report.unproducible_types, vec!["B", "C"]);
        assert_eq!(report.count_of(DiagnosticKind::DeadDecl), 1);
        assert_eq!(report.count_of(DiagnosticKind::UninhabitableType), 2);
        assert_eq!(report.max_severity(), Some(Severity::Warning));
    }

    #[test]
    fn producer_chains_resolve_transitively() {
        let mut store = SuccinctStore::new();
        let decls = vec![
            facts(&mut store, "a", Ty::base("A"), 5.0),
            facts(
                &mut store,
                "f",
                Ty::fun(vec![Ty::base("A")], Ty::base("B")),
                20.0,
            ),
            facts(
                &mut store,
                "g",
                Ty::fun(vec![Ty::base("B")], Ty::base("C")),
                20.0,
            ),
        ];
        let report = analyze(&store, &decls, 1.0);
        assert_eq!(report.producible_types, 3);
        assert!(report.dead_decls.is_empty());
    }

    #[test]
    fn lambda_binders_of_functional_holes_count_as_producers() {
        // h : (A -> B) -> C. Requesting the hole `{A} -> B` strips `A` into
        // scope, so A is producible even with no declaration of type A — but
        // B still needs a real producer, so `h` is dead here.
        let mut store = SuccinctStore::new();
        let hof = Ty::fun(
            vec![Ty::fun(vec![Ty::base("A")], Ty::base("B"))],
            Ty::base("C"),
        );
        let dead = vec![facts(&mut store, "h", hof.clone(), 20.0)];
        let report = analyze(&store, &dead, 1.0);
        assert_eq!(report.dead_decls, vec![0]);
        assert!(report.unproducible_types.contains(&"B".to_owned()));
        // A *is* producible (the binder), so it is not reported.
        assert!(!report.unproducible_types.contains(&"A".to_owned()));

        // Add a way to get a B from an A and the same declaration revives.
        let mut store = SuccinctStore::new();
        let alive = vec![
            facts(&mut store, "h", hof, 20.0),
            facts(
                &mut store,
                "f",
                Ty::fun(vec![Ty::base("A")], Ty::base("B")),
                20.0,
            ),
        ];
        let report = analyze(&store, &alive, 1.0);
        assert!(report.dead_decls.is_empty());
    }

    #[test]
    fn duplicates_and_equal_weight_overloads_are_distinguished() {
        let mut store = SuccinctStore::new();
        let decls = vec![
            facts(&mut store, "x", Ty::base("A"), 5.0),
            facts(&mut store, "x", Ty::base("A"), 5.0),
            facts(&mut store, "y", Ty::base("A"), 5.0),
            facts(&mut store, "z", Ty::base("A"), 7.0),
        ];
        let report = analyze(&store, &decls, 1.0);
        // x/x is a duplicate; {x, y} at weight 5 is an ambiguous tie; z has
        // a distinct weight and joins no group.
        assert_eq!(report.count_of(DiagnosticKind::DuplicateDecl), 1);
        assert_eq!(report.count_of(DiagnosticKind::AmbiguousOverloads), 1);
        let ambiguous = report
            .diagnostics
            .iter()
            .find(|d| d.kind == DiagnosticKind::AmbiguousOverloads)
            .unwrap();
        assert_eq!(ambiguous.decls, vec![0, 1, 2]);
    }

    #[test]
    fn pure_duplicate_ties_do_not_double_report_as_ambiguity() {
        let mut store = SuccinctStore::new();
        let decls = vec![
            facts(&mut store, "x", Ty::base("A"), 5.0),
            facts(&mut store, "x", Ty::base("A"), 5.0),
        ];
        let report = analyze(&store, &decls, 1.0);
        assert_eq!(report.count_of(DiagnosticKind::DuplicateDecl), 1);
        assert_eq!(report.count_of(DiagnosticKind::AmbiguousOverloads), 0);
    }

    #[test]
    fn negative_weights_raise_errors_and_clear_monotone() {
        let mut store = SuccinctStore::new();
        let decls = vec![facts(&mut store, "x", Ty::base("A"), -3.0)];
        let report = analyze(&store, &decls, 1.0);
        assert!(!report.weights_monotone);
        assert_eq!(report.max_severity(), Some(Severity::Error));
        assert_eq!(report.count_of(DiagnosticKind::WeightAnomaly), 1);
        // Errors sort first.
        assert_eq!(report.diagnostics[0].kind, DiagnosticKind::WeightAnomaly);

        let report = analyze(&store, &decls[..0], -1.0);
        assert!(!report.weights_monotone);
        assert_eq!(report.diagnostics[0].subject, "<lambda>");
    }

    #[test]
    fn goal_extension_revives_goal_dependent_declarations() {
        // f : {B} -> C is dead alone, but a goal B -> C makes B a member.
        let mut store = SuccinctStore::new();
        let f = store.sigma(&Ty::fun(vec![Ty::base("B")], Ty::base("C")));
        let decl_succ = vec![f];
        assert_eq!(dead_decl_indices(&store, &decl_succ, &[]), vec![0]);
        let b = store.sigma(&Ty::base("B"));
        assert_eq!(
            dead_decl_indices(&store, &decl_succ, &[b]),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let mut store = SuccinctStore::new();
        let decls = vec![
            facts(&mut store, "x", Ty::base("A"), 5.0),
            facts(
                &mut store,
                "f",
                Ty::fun(vec![Ty::base("Missing")], Ty::base("B")),
                20.0,
            ),
            facts(&mut store, "x", Ty::base("A"), 5.0),
        ];
        let a = analyze(&store, &decls, 1.0);
        let b = analyze(&store, &decls, 1.0);
        assert_eq!(a, b);
        assert_eq!(a.render_human(), b.render_human());
    }

    #[test]
    fn allowlist_parses_matches_and_rejects_unknown_codes() {
        let text = "# intentional\n dead-decl  f \nuninhabitable-type *\ndead-decl C#member\n";
        let allow = Allowlist::parse(text).unwrap();
        assert_eq!(allow.len(), 3);
        let member = Diagnostic::new(
            DiagnosticKind::DeadDecl,
            "C#member".to_owned(),
            String::new(),
            vec![2],
        );
        assert!(allow.allows(&member));
        let dead = Diagnostic::new(
            DiagnosticKind::DeadDecl,
            "f".to_owned(),
            String::new(),
            vec![0],
        );
        let other = Diagnostic::new(
            DiagnosticKind::DeadDecl,
            "g".to_owned(),
            String::new(),
            vec![1],
        );
        let uninhabitable = Diagnostic::new(
            DiagnosticKind::UninhabitableType,
            "Anything".to_owned(),
            String::new(),
            Vec::new(),
        );
        assert!(allow.allows(&dead));
        assert!(!allow.allows(&other));
        assert!(allow.allows(&uninhabitable));
        assert!(Allowlist::parse("no-such-code x").is_err());
        assert!(Allowlist::parse("dead-decl").is_err());
        assert!(Allowlist::parse("").unwrap().is_empty());
    }
}
