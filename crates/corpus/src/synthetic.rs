//! Deterministic synthetic corpus generation.
//!
//! The generator reproduces the statistical shape reported in §7.3: a small
//! head of very frequent symbols (the most frequent one appearing thousands of
//! times) and a long tail in which 98 % of declarations have fewer than 100
//! uses. A curated list of genuinely common Java API symbols occupies the head
//! so that the "All" weight variant behaves like the paper's: snippets built
//! from everyday API calls are preferred over exotic ones.

use insynth_apimodel::{extract, ApiModel, ProgramPoint};
use insynth_core::DeclKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{table3_projects, Corpus};

/// The maximum usage count, matching the paper's most-used symbol (`&&`,
/// 5162 occurrences).
const MAX_USES: u64 = 5162;

/// Symbols that receive the head of the distribution, most frequent first.
/// They use the declaration-name encoding of `insynth_apimodel::scope`.
const POPULAR: &[&str] = &[
    "PrintStream#println",
    "String#length",
    "new ArrayList",
    "ArrayList#add",
    "Object#toString",
    "System.out@",
    "HashMap#put",
    "HashMap#get",
    "new File",
    "StringBuilder#append",
    "new StringBuilder",
    "ArrayList#get",
    "ArrayList#size",
    "String#substring",
    "new FileInputStream",
    "new BufferedReader",
    "new InputStreamReader",
    "BufferedReader#readLine",
    "new FileOutputStream",
    "new FileReader",
    "new BufferedInputStream",
    "new FileWriter",
    "new BufferedWriter",
    "new PrintWriter",
    "new Thread",
    "Integer.parseInt",
    "String.valueOf",
    "new BufferedOutputStream",
    "new DataInputStream",
    "new DataOutputStream",
    "new ObjectInputStream",
    "new ObjectOutputStream",
    "new PrintStream",
    "new StringReader",
    "new StringWriter",
    "new ByteArrayInputStream",
    "new ByteArrayOutputStream",
    "new JButton",
    "new JPanel",
    "new JLabel",
    "new JFrame",
    "Container#add",
    "new URL",
    "new Socket",
    "new ServerSocket",
    "new DatagramSocket",
    "new Timer",
    "new ImageIcon",
    "new JCheckBox",
    "new JTextArea",
    "new JTable",
    "new JTree",
    "new GridBagConstraints",
    "new GridBagLayout",
    "new JToggleButton",
    "new JFormattedTextField",
    "new JWindow",
    "new JViewport",
    "new TransferHandler",
    "new GroupLayout",
    "new DefaultBoundedRangeModel",
    "new DisplayMode",
    "new Point",
    "new AWTPermission",
    "new SequenceInputStream",
    "new StreamTokenizer",
    "new LineNumberReader",
    "new PipedReader",
    "new PipedWriter",
    "Container#getLayout",
    "new FilterTypeTreeTraverser",
    "new TreeWrapper",
];

/// Generates a deterministic synthetic corpus over every declaration of the
/// model.
///
/// * Curated popular symbols get Zipf-ranked counts starting at [`MAX_USES`].
/// * Every other declaration gets a small tail count (mostly below 100).
/// * The paper's overall most frequent symbol `&&` is recorded as well, so
///   that the corpus statistics binary can reproduce the §7.3 numbers.
pub fn synthetic_corpus(model: &ApiModel, seed: u64) -> Corpus {
    let mut corpus = Corpus::new(table3_projects());
    let mut rng = StdRng::seed_from_u64(seed);

    // The scala operator the paper singles out as the most used declaration.
    corpus.record("&&", MAX_USES);

    for (rank, name) in POPULAR.iter().enumerate() {
        // Zipf-like head: max / (rank + 2) keeps the head strictly below `&&`.
        let count = MAX_USES / (rank as u64 + 2);
        corpus.record(*name, count.max(120));
    }

    // Long tail: every declaration of the model gets a small count.
    let mut point = ProgramPoint::new();
    for package in model.packages() {
        point = point.with_import(package.name.clone());
    }
    let env = extract(model, &point);
    for decl in env.iter() {
        if decl.kind != DeclKind::Imported {
            continue;
        }
        if corpus.frequency(&decl.name) > 0 {
            continue;
        }
        // Mostly tiny counts, occasionally up to ~90 uses.
        let count = if rng.gen_bool(0.15) {
            rng.gen_range(20..90)
        } else {
            rng.gen_range(0..15)
        };
        corpus.record(decl.name.clone(), count);
    }

    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use insynth_apimodel::javaapi;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let model = javaapi::standard_model();
        let a = synthetic_corpus(&model, 7);
        let b = synthetic_corpus(&model, 7);
        assert_eq!(a.total_uses(), b.total_uses());
        assert_eq!(a.total_declarations(), b.total_declarations());
        assert_eq!(a.frequency("new JButton"), b.frequency("new JButton"));
    }

    #[test]
    fn statistics_match_the_papers_shape() {
        let model = javaapi::standard_model();
        let corpus = synthetic_corpus(&model, 42);
        // Thousands of declarations, tens of thousands of uses.
        assert!(corpus.total_declarations() > 1000);
        assert!(corpus.total_uses() > 20_000);
        // The head is `&&` with exactly the paper's count.
        assert_eq!(corpus.max_entry().unwrap().1, 5162);
        // The overwhelming majority of symbols are rare.
        assert!(corpus.fraction_below(100) > 0.9);
    }

    #[test]
    fn popular_constructors_beat_obscure_ones() {
        let model = javaapi::standard_model();
        let corpus = synthetic_corpus(&model, 42);
        assert!(corpus.frequency("new BufferedReader") > 100);
        assert!(corpus.frequency("new BufferedReader") > corpus.frequency("new CharArrayReader"));
        assert!(
            corpus.frequency("new FileInputStream") > corpus.frequency("new PushbackInputStream")
        );
    }

    #[test]
    fn different_seeds_change_only_the_tail() {
        let model = javaapi::standard_model();
        let a = synthetic_corpus(&model, 1);
        let b = synthetic_corpus(&model, 2);
        // Head counts are rank-determined, not random.
        assert_eq!(a.frequency("new JButton"), b.frequency("new JButton"));
        assert_eq!(a.frequency("&&"), b.frequency("&&"));
    }
}
