//! The 18 corpus projects of Table 3.

/// One project of the training corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Project {
    /// Project name as listed in Table 3.
    pub name: String,
    /// One-line description from Table 3.
    pub description: String,
}

impl Project {
    /// Creates a project entry.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        Project {
            name: name.into(),
            description: description.into(),
        }
    }
}

/// The 18 open-source Scala/Java projects of Table 3 (the paper additionally
/// analyzes the Scala standard library, which we list as a 19th entry for the
/// statistics binary but exclude from the "18 projects" count).
pub fn table3_projects() -> Vec<Project> {
    vec![
        Project::new("Akka", "Transactional actors"),
        Project::new("CCSTM", "Software transactional memory"),
        Project::new("GooChaSca", "Google Charts API for Scala"),
        Project::new("Kestrel", "Tiny queue system based on starling"),
        Project::new("LiftWeb", "Web framework"),
        Project::new("LiftTicket", "Issue ticket system"),
        Project::new(
            "O/R Broker",
            "JDBC framework with support for externalized SQL",
        ),
        Project::new("scala0.orm", "O/R mapping tool"),
        Project::new("ScalaCheck", "Unit test automation"),
        Project::new("Scala compiler", "Compiles Scala source to Java bytecode"),
        Project::new("Scala Migrations", "Database migrations"),
        Project::new("ScalaNLP", "Natural language processing"),
        Project::new("ScalaQuery", "Typesafe database query API"),
        Project::new("Scalaz", "\"Scala on steroidz\" - scala extensions"),
        Project::new("simpledb-scala-binding", "Bindings for Amazon's SimpleDB"),
        Project::new("smr", "Map Reduce implementation"),
        Project::new("Specs", "Behaviour Driven Development framework"),
        Project::new("Talking Puffin", "Twitter client"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_eighteen_projects() {
        assert_eq!(table3_projects().len(), 18);
    }

    #[test]
    fn the_scala_compiler_is_in_the_corpus() {
        assert!(table3_projects().iter().any(|p| p.name == "Scala compiler"));
    }

    #[test]
    fn names_are_unique() {
        let projects = table3_projects();
        let mut names: Vec<&str> = projects.iter().map(|p| p.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), projects.len());
    }
}
