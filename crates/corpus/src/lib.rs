//! The usage-frequency corpus (paper §7.3 and Table 3).
//!
//! The paper mines 18 open-source Java/Scala projects plus the Scala standard
//! library for declaration usage counts (7516 declarations, 90 422 uses; 98 %
//! of declarations have fewer than 100 uses; the most used symbol, `&&`,
//! appears 5162 times). Those counts feed the weight formula of Table 1:
//! imported symbols weigh `215 + 785 / (1 + f(x))`.
//!
//! We do not have the original projects, so [`synthetic_corpus`] generates a
//! corpus with the same statistical shape over the [`insynth_apimodel`] API
//! model: a curated list of genuinely common API symbols receives the head of
//! a Zipf-like distribution and every other declaration falls in the long
//! tail. The generator is deterministic for a given seed.
//!
//! # Example
//!
//! ```
//! use insynth_apimodel::javaapi;
//! use insynth_corpus::synthetic_corpus;
//!
//! let corpus = synthetic_corpus(&javaapi::standard_model(), 42);
//! assert!(corpus.frequency("new FileInputStream") > corpus.frequency("new AWTPermission"));
//! assert!(corpus.fraction_below(100) > 0.9);
//! ```

mod projects;
mod synthetic;
pub mod trace;

pub use projects::{table3_projects, Project};
pub use synthetic::synthetic_corpus;
pub use trace::{
    generate_trace, Trace, TraceEnvSpec, TraceEvent, TraceEventKind, TraceGenConfig,
    TraceParseError, TraceSummary, TRACE_VERSION,
};

use std::collections::HashMap;

use insynth_core::{DeclKind, TypeEnv};

/// A usage-frequency corpus: per-symbol occurrence counts attributed to a set
/// of projects.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    projects: Vec<Project>,
    counts: HashMap<String, u64>,
}

impl Corpus {
    /// Creates an empty corpus attributed to the given projects.
    pub fn new(projects: Vec<Project>) -> Self {
        Corpus {
            projects,
            counts: HashMap::new(),
        }
    }

    /// Records `uses` occurrences of `symbol` (adds to any existing count).
    pub fn record(&mut self, symbol: impl Into<String>, uses: u64) {
        *self.counts.entry(symbol.into()).or_insert(0) += uses;
    }

    /// The number of recorded occurrences of `symbol` (0 if never seen).
    pub fn frequency(&self, symbol: &str) -> u64 {
        self.counts.get(symbol).copied().unwrap_or(0)
    }

    /// The projects the corpus was mined from.
    pub fn projects(&self) -> &[Project] {
        &self.projects
    }

    /// Number of distinct declarations with at least one use.
    pub fn total_declarations(&self) -> usize {
        self.counts.len()
    }

    /// Total number of recorded uses.
    pub fn total_uses(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The most frequently used symbol and its count, if any.
    pub fn max_entry(&self) -> Option<(&str, u64)> {
        self.counts
            .iter()
            .max_by_key(|(name, &count)| (count, std::cmp::Reverse(name.as_str())))
            .map(|(name, &count)| (name.as_str(), count))
    }

    /// Fraction of declarations with fewer than `threshold` uses (the paper
    /// reports 98 % below 100).
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        if self.counts.is_empty() {
            return 1.0;
        }
        let below = self.counts.values().filter(|&&c| c < threshold).count();
        below as f64 / self.counts.len() as f64
    }

    /// Applies the corpus to an environment: every `Imported` declaration gets
    /// its corpus frequency, which the engine's weight function then turns
    /// into the Table 1 imported-symbol weight.
    pub fn apply(&self, env: &mut TypeEnv) {
        for decl in env.iter_mut() {
            if decl.kind == DeclKind::Imported {
                decl.frequency = Some(self.frequency(&decl.name));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insynth_core::{Declaration, WeightConfig, WeightMode};
    use insynth_lambda::Ty;

    #[test]
    fn record_accumulates_and_frequency_defaults_to_zero() {
        let mut corpus = Corpus::new(vec![]);
        corpus.record("foo", 3);
        corpus.record("foo", 2);
        assert_eq!(corpus.frequency("foo"), 5);
        assert_eq!(corpus.frequency("bar"), 0);
        assert_eq!(corpus.total_uses(), 5);
        assert_eq!(corpus.total_declarations(), 1);
    }

    #[test]
    fn max_entry_and_fraction_below() {
        let mut corpus = Corpus::new(vec![]);
        corpus.record("a", 5000);
        corpus.record("b", 10);
        corpus.record("c", 20);
        assert_eq!(corpus.max_entry(), Some(("a", 5000)));
        let below = corpus.fraction_below(100);
        assert!((below - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn apply_sets_frequencies_only_on_imported_declarations() {
        let mut corpus = Corpus::new(vec![]);
        corpus.record("new File", 250);
        let mut env: TypeEnv = vec![
            Declaration::new("local", Ty::base("String"), DeclKind::Local),
            Declaration::new(
                "new File",
                Ty::fun(vec![Ty::base("String")], Ty::base("File")),
                DeclKind::Imported,
            ),
        ]
        .into_iter()
        .collect();
        corpus.apply(&mut env);
        assert_eq!(env.find("local").unwrap().frequency, None);
        assert_eq!(env.find("new File").unwrap().frequency, Some(250));

        // Frequent imported symbols end up cheaper under the full weight mode.
        let weights = WeightConfig::new(WeightMode::Full);
        let frequent = weights.declaration_weight(env.find("new File").unwrap());
        assert!(frequent.value() < 1000.0);
    }

    #[test]
    fn empty_corpus_reports_everything_below_any_threshold() {
        let corpus = Corpus::new(vec![]);
        assert_eq!(corpus.fraction_below(1), 1.0);
        assert!(corpus.max_entry().is_none());
    }
}
