//! Editor traces: a versioned, deterministic record of completion traffic.
//!
//! A trace is what an editor session looks like from the engine's side: a
//! sequence of events against named **program points** — open a point with
//! its local declarations, query it, page for more results, edit it by
//! delta, close it — with logical **ticks** instead of wall-clock
//! timestamps (the workspace bans `SystemTime::now`; replay timing is the
//! replay driver's job, not the trace's). The same trace can be replayed
//! against the library path (`Engine`/`Session`) or rendered to the JSON
//! protocol and driven through the server, which is what makes
//! library-vs-server overhead measurable on identical workloads.
//!
//! Two entry points:
//!
//! * [`generate_trace`] — a seeded generator with knobs for point count,
//!   hot-set skew (Zipf over points), delta mix, and burst shape. Same
//!   seed + knobs → byte-identical trace, scalable to millions of events.
//! * the line-oriented text codec ([`Trace::to_text`] /
//!   [`Trace::parse`]) — versioned, diffable, greppable.
//!
//! # Format (`insynth-trace v1`)
//!
//! ```text
//! insynth-trace v1
//! env figure1 4
//! o 0 0 p0_a:local:String p0_b:local:String
//! q 0 0 10 SequenceInputStream
//! u 1 0 +p0_d0:local:String ~p0_a:50
//! p 2 0 10 10 SequenceInputStream
//! c 3 0
//! ```
//!
//! One event per line: `<op> <tick> <point> <payload…>`, ops `o`pen,
//! `q`uery, `p`age, `u`pdate, `c`lose. Declarations are encoded
//! `name:kind:type[:f=freq][:w=weight]`; names and base-type names are
//! percent-escaped so spaces and metacharacters cannot corrupt framing.
//! Function types are `(A,B->C)`, curried right-associatively on parse.

use std::collections::HashMap;
use std::fmt::Write as _;

use insynth_core::{DeclKind, Declaration};
use insynth_lambda::Ty;
use rand::distributions::{Distribution, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The trace format version this module reads and writes.
pub const TRACE_VERSION: u32 = 1;

/// Which benchmark environment a trace's program points draw their ambient
/// declarations from. The trace stores the *recipe*, not the declarations:
/// resolving it (via `insynth_bench`) keeps the trace file small and the
/// corpus crate free of benchmark dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEnvSpec {
    /// The paper's Figure 1 environment with `filler` extra packages
    /// (`insynth_bench::phases_environment`).
    Figure1 { filler: usize },
    /// The scaled synthetic API model at roughly `target_decls` declarations
    /// (`insynth_bench::scaled_environment`).
    Scaled { target_decls: usize },
}

/// One timed event against a program point.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Logical timestamp. Ticks are non-decreasing across a trace; events
    /// sharing a tick form a burst that replay may issue concurrently.
    pub tick: u64,
    /// The program point the event targets. Points are dense small integers;
    /// the replay driver maps them to sessions.
    pub point: u32,
    pub kind: TraceEventKind,
}

/// The event payload.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// Open the point with these local declarations on top of the ambient
    /// environment. Reopening a closed point resets it to exactly this list.
    Open { locals: Vec<Declaration> },
    /// Ask for the best `n` completions of `goal`.
    Query { goal: Ty, n: usize },
    /// Page deeper into `goal`'s ranked stream: skip `cursor`, take `n`.
    Page { goal: Ty, n: usize, cursor: usize },
    /// Edit the point by delta.
    Update {
        adds: Vec<Declaration>,
        removes: Vec<String>,
        reweights: Vec<(String, f64)>,
    },
    /// Close the point, releasing its session.
    Close,
}

impl TraceEventKind {
    /// The single-letter opcode used in the text format.
    pub fn op(&self) -> char {
        match self {
            TraceEventKind::Open { .. } => 'o',
            TraceEventKind::Query { .. } => 'q',
            TraceEventKind::Page { .. } => 'p',
            TraceEventKind::Update { .. } => 'u',
            TraceEventKind::Close => 'c',
        }
    }
}

/// A complete versioned trace: the environment recipe plus the event log.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub env: TraceEnvSpec,
    pub events: Vec<TraceEvent>,
}

/// Per-kind event counts for a trace (the `inspect` summary and the
/// deterministic counters the CI gate pins).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    pub events: usize,
    pub opens: usize,
    pub queries: usize,
    pub pages: usize,
    pub updates: usize,
    pub removals: usize,
    pub closes: usize,
    pub points: usize,
    pub last_tick: u64,
}

impl Trace {
    /// Serializes to the versioned line-oriented text format. Byte-stable:
    /// the same trace always renders to the same string.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "insynth-trace v{TRACE_VERSION}");
        match self.env {
            TraceEnvSpec::Figure1 { filler } => {
                let _ = writeln!(out, "env figure1 {filler}");
            }
            TraceEnvSpec::Scaled { target_decls } => {
                let _ = writeln!(out, "env scaled {target_decls}");
            }
        }
        for event in &self.events {
            let _ = write!(out, "{} {} {}", event.kind.op(), event.tick, event.point);
            match &event.kind {
                TraceEventKind::Open { locals } => {
                    for decl in locals {
                        out.push(' ');
                        encode_decl(decl, &mut out);
                    }
                }
                TraceEventKind::Query { goal, n } => {
                    let _ = write!(out, " {n} ");
                    encode_ty(goal, &mut out);
                }
                TraceEventKind::Page { goal, n, cursor } => {
                    let _ = write!(out, " {n} {cursor} ");
                    encode_ty(goal, &mut out);
                }
                TraceEventKind::Update {
                    adds,
                    removes,
                    reweights,
                } => {
                    for decl in adds {
                        out.push_str(" +");
                        encode_decl(decl, &mut out);
                    }
                    for name in removes {
                        out.push_str(" -");
                        out.push_str(&escape(name));
                    }
                    for (name, weight) in reweights {
                        out.push_str(" ~");
                        out.push_str(&escape(name));
                        let _ = write!(out, ":{weight}");
                    }
                }
                TraceEventKind::Close => {}
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format produced by [`Trace::to_text`].
    pub fn parse(text: &str) -> Result<Trace, TraceParseError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| err(0, "empty trace"))?;
        if header.trim() != format!("insynth-trace v{TRACE_VERSION}") {
            return Err(err(1, format!("bad header {header:?}")));
        }
        let (env_no, env_line) = lines.next().ok_or_else(|| err(1, "missing env line"))?;
        let env = parse_env_line(env_line).map_err(|m| err(env_no + 1, m))?;
        let mut events = Vec::new();
        let mut last_tick = 0u64;
        for (no, line) in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let event = parse_event_line(line).map_err(|m| err(no + 1, m))?;
            if event.tick < last_tick {
                return Err(err(no + 1, "ticks must be non-decreasing"));
            }
            last_tick = event.tick;
            events.push(event);
        }
        Ok(Trace { env, events })
    }

    /// Counts events by kind (plus distinct points and the final tick).
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        let mut points = std::collections::HashSet::new();
        for event in &self.events {
            s.events += 1;
            points.insert(event.point);
            s.last_tick = event.tick;
            match &event.kind {
                TraceEventKind::Open { .. } => s.opens += 1,
                TraceEventKind::Query { .. } => s.queries += 1,
                TraceEventKind::Page { .. } => s.pages += 1,
                TraceEventKind::Update { removes, .. } => {
                    s.updates += 1;
                    s.removals += removes.len();
                }
                TraceEventKind::Close => s.closes += 1,
            }
        }
        s.points = points.len();
        s
    }
}

/// A parse failure: the 1-based line and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

fn err(line: usize, message: impl Into<String>) -> TraceParseError {
    TraceParseError {
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Token codecs
// ---------------------------------------------------------------------------

/// Characters with structural meaning somewhere in the format; escaped
/// everywhere so names can never corrupt framing.
fn is_meta(c: char) -> bool {
    matches!(
        c,
        '%' | ' ' | ':' | '(' | ')' | ',' | '-' | '+' | '~' | '\n'
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if is_meta(c) {
            let mut buf = [0u8; 4];
            for byte in c.encode_utf8(&mut buf).bytes() {
                let _ = write!(out, "%{byte:02X}");
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, String> {
    let mut bytes = Vec::with_capacity(s.len());
    let mut chars = s.bytes();
    while let Some(b) = chars.next() {
        if b == b'%' {
            let hi = chars.next().ok_or("truncated % escape")?;
            let lo = chars.next().ok_or("truncated % escape")?;
            let hex = [hi, lo];
            let hex = std::str::from_utf8(&hex).map_err(|_| "bad % escape")?;
            bytes.push(u8::from_str_radix(hex, 16).map_err(|_| "bad % escape")?);
        } else {
            bytes.push(b);
        }
    }
    String::from_utf8(bytes).map_err(|_| "escape decodes to invalid UTF-8".to_string())
}

fn encode_ty(ty: &Ty, out: &mut String) {
    match ty {
        Ty::Base(name) => out.push_str(&escape(name)),
        Ty::Arrow(..) => {
            let (args, ret) = ty.uncurry();
            out.push('(');
            for (i, arg) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_ty(arg, out);
            }
            out.push_str("->");
            encode_ty(ret, out);
            out.push(')');
        }
    }
}

/// Recursive-descent parser over the `encode_ty` grammar.
struct TyParser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> TyParser<'a> {
    fn parse(src: &'a str) -> Result<Ty, String> {
        let mut p = TyParser { src, pos: 0 };
        let ty = p.ty()?;
        if p.pos != p.src.len() {
            return Err(format!("trailing input in type {src:?}"));
        }
        Ok(ty)
    }

    fn peek(&self) -> Option<u8> {
        self.src.as_bytes().get(self.pos).copied()
    }

    fn ty(&mut self) -> Result<Ty, String> {
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let mut args = Vec::new();
            loop {
                args.push(self.ty()?);
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'-') => {
                        if self.src[self.pos..].starts_with("->") {
                            self.pos += 2;
                            break;
                        }
                        return Err(format!("stray '-' in type {:?}", self.src));
                    }
                    other => return Err(format!("expected ',' or '->', got {other:?}")),
                }
            }
            let ret = self.ty()?;
            if self.peek() != Some(b')') {
                return Err(format!("unterminated '(' in type {:?}", self.src));
            }
            self.pos += 1;
            Ok(Ty::fun(args, ret))
        } else {
            let start = self.pos;
            while let Some(b) = self.peek() {
                // Unescaped metacharacters end the base-type name; '%'
                // escapes pass through.
                if matches!(b, b'(' | b')' | b',' | b'-' | b':' | b' ' | b'+' | b'~') {
                    break;
                }
                self.pos += 1;
            }
            if self.pos == start {
                return Err(format!("empty type name in {:?}", self.src));
            }
            Ok(Ty::Base(unescape(&self.src[start..self.pos])?))
        }
    }
}

fn kind_name(kind: DeclKind) -> &'static str {
    match kind {
        DeclKind::Lambda => "lambda",
        DeclKind::Local => "local",
        DeclKind::Coercion => "coercion",
        DeclKind::Class => "class",
        DeclKind::Package => "package",
        DeclKind::Literal => "literal",
        DeclKind::Imported => "imported",
    }
}

fn kind_from_name(name: &str) -> Option<DeclKind> {
    Some(match name {
        "lambda" => DeclKind::Lambda,
        "local" => DeclKind::Local,
        "coercion" => DeclKind::Coercion,
        "class" => DeclKind::Class,
        "package" => DeclKind::Package,
        "literal" => DeclKind::Literal,
        "imported" => DeclKind::Imported,
        _ => return None,
    })
}

fn encode_decl(decl: &Declaration, out: &mut String) {
    out.push_str(&escape(&decl.name));
    out.push(':');
    out.push_str(kind_name(decl.kind));
    out.push(':');
    encode_ty(&decl.ty, out);
    if let Some(f) = decl.frequency {
        let _ = write!(out, ":f={f}");
    }
    if let Some(w) = decl.weight_override {
        let _ = write!(out, ":w={w}");
    }
}

fn parse_decl(token: &str) -> Result<Declaration, String> {
    let mut fields = token.split(':');
    let name = unescape(fields.next().ok_or("empty declaration")?)?;
    let kind_field = fields
        .next()
        .ok_or_else(|| format!("declaration {token:?} has no kind"))?;
    let kind = kind_from_name(kind_field)
        .ok_or_else(|| format!("unknown declaration kind {kind_field:?}"))?;
    let ty_field = fields
        .next()
        .ok_or_else(|| format!("declaration {token:?} has no type"))?;
    let mut decl = Declaration::new(name, TyParser::parse(ty_field)?, kind);
    for extra in fields {
        if let Some(f) = extra.strip_prefix("f=") {
            decl.frequency = Some(f.parse().map_err(|_| format!("bad frequency {extra:?}"))?);
        } else if let Some(w) = extra.strip_prefix("w=") {
            decl.weight_override = Some(w.parse().map_err(|_| format!("bad weight {extra:?}"))?);
        } else {
            return Err(format!("unknown declaration field {extra:?}"));
        }
    }
    Ok(decl)
}

fn parse_env_line(line: &str) -> Result<TraceEnvSpec, String> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some("env") {
        return Err(format!("expected env line, got {line:?}"));
    }
    let which = parts.next().ok_or("env line missing model")?;
    let arg = parts
        .next()
        .ok_or("env line missing parameter")?
        .parse::<usize>()
        .map_err(|_| "env parameter must be an integer".to_string())?;
    if parts.next().is_some() {
        return Err(format!("trailing input on env line {line:?}"));
    }
    match which {
        "figure1" => Ok(TraceEnvSpec::Figure1 { filler: arg }),
        "scaled" => Ok(TraceEnvSpec::Scaled { target_decls: arg }),
        other => Err(format!("unknown env model {other:?}")),
    }
}

fn parse_event_line(line: &str) -> Result<TraceEvent, String> {
    let mut parts = line.split(' ').filter(|t| !t.is_empty());
    let op = parts.next().ok_or("empty event line")?;
    let tick = parts
        .next()
        .ok_or("event missing tick")?
        .parse::<u64>()
        .map_err(|_| "tick must be an integer".to_string())?;
    let point = parts
        .next()
        .ok_or("event missing point")?
        .parse::<u32>()
        .map_err(|_| "point must be an integer".to_string())?;
    let kind = match op {
        "o" => TraceEventKind::Open {
            locals: parts.map(parse_decl).collect::<Result<_, _>>()?,
        },
        "q" | "p" => {
            let n = parts
                .next()
                .ok_or("query missing n")?
                .parse::<usize>()
                .map_err(|_| "n must be an integer".to_string())?;
            let cursor = if op == "p" {
                parts
                    .next()
                    .ok_or("page missing cursor")?
                    .parse::<usize>()
                    .map_err(|_| "cursor must be an integer".to_string())?
            } else {
                0
            };
            let goal = TyParser::parse(parts.next().ok_or("query missing goal type")?)?;
            if parts.next().is_some() {
                return Err(format!("trailing input on event {line:?}"));
            }
            if op == "q" {
                TraceEventKind::Query { goal, n }
            } else {
                TraceEventKind::Page { goal, n, cursor }
            }
        }
        "u" => {
            let mut adds = Vec::new();
            let mut removes = Vec::new();
            let mut reweights = Vec::new();
            for token in parts {
                if let Some(decl) = token.strip_prefix('+') {
                    adds.push(parse_decl(decl)?);
                } else if let Some(name) = token.strip_prefix('-') {
                    removes.push(unescape(name)?);
                } else if let Some(rw) = token.strip_prefix('~') {
                    let (name, weight) = rw
                        .split_once(':')
                        .ok_or_else(|| format!("reweight {token:?} missing ':weight'"))?;
                    reweights.push((
                        unescape(name)?,
                        weight
                            .parse::<f64>()
                            .map_err(|_| format!("bad reweight value {weight:?}"))?,
                    ));
                } else {
                    return Err(format!("unknown update token {token:?}"));
                }
            }
            TraceEventKind::Update {
                adds,
                removes,
                reweights,
            }
        }
        "c" => {
            if parts.next().is_some() {
                return Err(format!("trailing input on event {line:?}"));
            }
            TraceEventKind::Close
        }
        other => return Err(format!("unknown event op {other:?}")),
    };
    Ok(TraceEvent { tick, point, kind })
}

// ---------------------------------------------------------------------------
// Seeded generator
// ---------------------------------------------------------------------------

/// Knobs for [`generate_trace`]. The defaults describe a plausible editing
/// session: a hot working set (Zipf s=1.1 over points), one edit per ~6
/// queries, occasional paging, rare closes, short bursts.
#[derive(Debug, Clone)]
pub struct TraceGenConfig {
    pub seed: u64,
    /// Number of distinct program points.
    pub points: u32,
    /// Total events to generate.
    pub events: u64,
    /// Environment recipe recorded in the trace header.
    pub env: TraceEnvSpec,
    /// Zipf exponent for the point sampler: 0 = uniform traffic, larger =
    /// hotter hot set.
    pub zipf_exponent: f64,
    /// Probability an event on an open point is an update.
    pub update_fraction: f64,
    /// Probability an update also removes a previously added declaration
    /// (exercising the engine's fresh-prepare fallback).
    pub remove_fraction: f64,
    /// Probability an event on an open point pages deeper instead of
    /// starting a fresh query.
    pub page_fraction: f64,
    /// Probability an event on an open point closes it.
    pub close_fraction: f64,
    /// Maximum events sharing one tick (burst size ≥ 1).
    pub burst: u32,
    /// Queries ask for `1..=max_n` completions.
    pub max_n: usize,
    /// Goal types queries draw from (uniformly).
    pub goals: Vec<Ty>,
}

impl Default for TraceGenConfig {
    fn default() -> Self {
        TraceGenConfig {
            seed: 42,
            points: 8,
            events: 1000,
            env: TraceEnvSpec::Figure1 { filler: 4 },
            zipf_exponent: 1.1,
            update_fraction: 0.15,
            remove_fraction: 0.3,
            page_fraction: 0.2,
            close_fraction: 0.02,
            burst: 4,
            max_n: 10,
            // Inhabited in both the Figure 1 and the scaled environments.
            goals: vec![
                Ty::base("SequenceInputStream"),
                Ty::base("String"),
                Ty::base("BufferedReader"),
                Ty::base("FileInputStream"),
            ],
        }
    }
}

/// Per-point generator state.
#[derive(Default)]
struct PointState {
    open: bool,
    /// Names added by updates since the last open (removal candidates).
    added: Vec<String>,
    /// Monotonic counter naming added declarations (never reused, so a
    /// remove-then-add sequence cannot silently collide).
    next_add: u64,
    /// Paging cursor per goal index.
    cursors: HashMap<usize, usize>,
}

/// The two stable locals every point opens with. Names are prefixed with the
/// point id, so distinct points always have distinct environment
/// fingerprints and never share engine cache entries by accident.
fn base_locals(point: u32) -> Vec<Declaration> {
    vec![
        Declaration::new(format!("p{point}_a"), Ty::base("String"), DeclKind::Local),
        Declaration::new(
            format!("p{point}_b"),
            Ty::fun(vec![Ty::base("String")], Ty::base("String")),
            DeclKind::Local,
        ),
    ]
}

/// Generates a deterministic trace: a pure function of the config, so the
/// same seed and knobs always yield a byte-identical trace.
pub fn generate_trace(config: &TraceGenConfig) -> Trace {
    assert!(config.points > 0, "trace needs at least one point");
    assert!(
        !config.goals.is_empty(),
        "trace needs at least one goal type"
    );
    assert!(config.max_n > 0, "max_n must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.points as u64, config.zipf_exponent)
        .expect("Zipf parameters are validated above");
    let mut states: Vec<PointState> = (0..config.points).map(|_| PointState::default()).collect();
    let mut events = Vec::with_capacity(config.events.min(1 << 20) as usize);
    let mut tick = 0u64;
    let mut burst_left = 0u32;

    for _ in 0..config.events {
        if burst_left == 0 {
            tick += rng.gen_range(1u64..4);
            burst_left = if config.burst > 1 {
                rng.gen_range(1u32..config.burst + 1)
            } else {
                1
            };
        }
        burst_left -= 1;

        let point = (zipf.sample(&mut rng) - 1) as u32;
        let state = &mut states[point as usize];

        let kind = if !state.open {
            state.open = true;
            state.added.clear();
            state.cursors.clear();
            TraceEventKind::Open {
                locals: base_locals(point),
            }
        } else {
            let roll = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            if roll < config.close_fraction {
                state.open = false;
                TraceEventKind::Close
            } else if roll < config.close_fraction + config.update_fraction {
                let mut adds = Vec::new();
                let mut removes = Vec::new();
                let mut reweights = Vec::new();
                let id = state.next_add;
                state.next_add += 1;
                let decl = if rng.gen_bool(0.5) {
                    Declaration::new(
                        format!("p{point}_d{id}"),
                        Ty::base("String"),
                        DeclKind::Local,
                    )
                } else {
                    Declaration::new(
                        format!("p{point}_f{id}"),
                        Ty::fun(vec![Ty::base("String")], Ty::base("String")),
                        DeclKind::Imported,
                    )
                    .with_frequency(rng.gen_range(0u64..500))
                };
                state.added.push(decl.name.clone());
                adds.push(decl);
                if !state.added.is_empty() && rng.gen_bool(config.remove_fraction) {
                    let victim = rng.gen_range(0..state.added.len());
                    removes.push(state.added.swap_remove(victim));
                }
                if rng.gen_bool(0.25) {
                    reweights.push((format!("p{point}_a"), rng.gen_range(1u32..100) as f64));
                }
                TraceEventKind::Update {
                    adds,
                    removes,
                    reweights,
                }
            } else {
                let goal_idx = rng.gen_range(0..config.goals.len());
                let n = rng.gen_range(1..config.max_n + 1);
                let cursor = state.cursors.entry(goal_idx).or_insert(0);
                if *cursor > 0
                    && roll < config.close_fraction + config.update_fraction + config.page_fraction
                {
                    let at = *cursor;
                    *cursor += n;
                    TraceEventKind::Page {
                        goal: config.goals[goal_idx].clone(),
                        n,
                        cursor: at,
                    }
                } else {
                    *cursor = n;
                    TraceEventKind::Query {
                        goal: config.goals[goal_idx].clone(),
                        n,
                    }
                }
            }
        };
        events.push(TraceEvent { tick, point, kind });
    }

    Trace {
        env: config.env,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_roundtrips() {
        let config = TraceGenConfig {
            events: 500,
            ..TraceGenConfig::default()
        };
        let a = generate_trace(&config);
        let b = generate_trace(&config);
        assert_eq!(a.to_text(), b.to_text());
        let parsed = Trace::parse(&a.to_text()).expect("roundtrip parse");
        assert_eq!(parsed, a);

        let other = generate_trace(&TraceGenConfig { seed: 43, ..config });
        assert_ne!(a.to_text(), other.to_text());
    }

    #[test]
    fn summary_counts_reflect_the_mix() {
        let trace = generate_trace(&TraceGenConfig {
            events: 2000,
            ..TraceGenConfig::default()
        });
        let s = trace.summary();
        assert_eq!(s.events, 2000);
        assert!(s.opens >= 1, "every used point opens at least once");
        assert!(s.queries > s.updates, "queries dominate the default mix");
        assert!(s.updates > 0 && s.removals > 0 && s.pages > 0 && s.closes > 0);
        assert!(s.points <= 8);
        assert!(s.last_tick > 0);
    }

    #[test]
    fn escaping_survives_hostile_names() {
        let decl = Declaration::new(
            "weird name:with (all) the, meta-chars +%~",
            Ty::fun(
                vec![
                    Ty::base("A B"),
                    Ty::fun(vec![Ty::base("C:D")], Ty::base("E")),
                ],
                Ty::base("F,G"),
            ),
            DeclKind::Imported,
        )
        .with_frequency(7)
        .with_weight(12.5);
        let trace = Trace {
            env: TraceEnvSpec::Scaled {
                target_decls: 13000,
            },
            events: vec![
                TraceEvent {
                    tick: 0,
                    point: 3,
                    kind: TraceEventKind::Open {
                        locals: vec![decl.clone()],
                    },
                },
                TraceEvent {
                    tick: 1,
                    point: 3,
                    kind: TraceEventKind::Update {
                        adds: vec![],
                        removes: vec![decl.name.clone()],
                        reweights: vec![("an~other + name".to_string(), 3.25)],
                    },
                },
                TraceEvent {
                    tick: 4,
                    point: 3,
                    kind: TraceEventKind::Page {
                        goal: Ty::fun(vec![Ty::base("X")], Ty::base("Y Z")),
                        n: 5,
                        cursor: 10,
                    },
                },
            ],
        };
        let text = trace.to_text();
        assert_eq!(Trace::parse(&text).expect("roundtrip"), trace);
    }

    #[test]
    fn parse_rejects_malformed_traces() {
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("insynth-trace v99\nenv figure1 4\n").is_err());
        assert!(Trace::parse("insynth-trace v1\nenv mars 4\n").is_err());
        assert!(Trace::parse("insynth-trace v1\nenv figure1 4\nx 0 0\n").is_err());
        assert!(Trace::parse("insynth-trace v1\nenv figure1 4\nq 0 0 10\n").is_err(),);
        // Ticks must be non-decreasing.
        assert!(Trace::parse("insynth-trace v1\nenv figure1 4\nc 5 0\nc 4 0\n").is_err());
        // Close takes no payload.
        assert!(Trace::parse("insynth-trace v1\nenv figure1 4\nc 0 0 extra\n").is_err());
    }

    #[test]
    fn zipf_skew_concentrates_traffic() {
        let skewed = generate_trace(&TraceGenConfig {
            points: 16,
            events: 4000,
            zipf_exponent: 1.5,
            close_fraction: 0.0,
            ..TraceGenConfig::default()
        });
        let mut per_point = [0usize; 16];
        for e in &skewed.events {
            per_point[e.point as usize] += 1;
        }
        let hottest = *per_point.iter().max().unwrap();
        assert!(
            hottest > 4000 / 4,
            "expected a hot point under s=1.5, got {per_point:?}"
        );
    }
}
