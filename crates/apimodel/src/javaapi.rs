//! A hand-modelled slice of the Java and Scala-IDE APIs.
//!
//! The paper's benchmarks invoke InSynth in contexts where whole packages
//! (`java.io._`, `java.awt._`, `javax.swing._`, …) are imported, so that
//! thousands of declarations are visible. This module models the classes those
//! benchmarks actually exercise — constructors, the most common methods and
//! fields, and the inheritance hierarchy — plus a deterministic *filler*
//! generator ([`filler_package`]) that pads environments to the sizes reported
//! in Table 2 (3.3k–10.7k declarations) with plausible but irrelevant API
//! surface.
//!
//! The model is synthetic: method sets are abridged and parameter types are
//! occasionally simplified (e.g. `byte[]` becomes the base type `ByteArray`).
//! What matters for the reproduction is that the *shape* of the search
//! problem — fan-out per type, depth of constructor chains, presence of
//! subtyping and higher-order parameters — mirrors the original API.

use insynth_lambda::Ty;

use crate::model::{ApiModel, Class, Constructor, Field, Method, Package};

fn t(name: &str) -> Ty {
    Ty::base(name)
}

fn ctor(params: Vec<Ty>) -> Constructor {
    Constructor::new(params)
}

/// `java.lang`: strings, boxed primitives, `System`, threads, exceptions.
pub fn java_lang() -> Package {
    Package::new("java.lang")
        .with_class(
            Class::new("Object")
                .with_constructor(ctor(vec![]))
                .with_method(Method::new("toString", vec![], t("String")))
                .with_method(Method::new("hashCode", vec![], t("Int")))
                .with_method(Method::new("equals", vec![t("Object")], t("Boolean"))),
        )
        .with_class(
            Class::new("String")
                .with_method(Method::new("length", vec![], t("Int")))
                .with_method(Method::new("isEmpty", vec![], t("Boolean")))
                .with_method(Method::new("charAt", vec![t("Int")], t("Char")))
                .with_method(Method::new(
                    "substring",
                    vec![t("Int"), t("Int")],
                    t("String"),
                ))
                .with_method(Method::new("concat", vec![t("String")], t("String")))
                .with_method(Method::new("trim", vec![], t("String")))
                .with_method(Method::new("toUpperCase", vec![], t("String")))
                .with_method(Method::new("toLowerCase", vec![], t("String")))
                .with_method(Method::new("getBytes", vec![], t("ByteArray")))
                .with_method(Method::new("toCharArray", vec![], t("CharArray")))
                .with_method(Method::new_static("valueOf", vec![t("Int")], t("String")))
                .with_method(Method::new_static(
                    "valueOf",
                    vec![t("Object")],
                    t("String"),
                )),
        )
        .with_class(
            Class::new("StringBuilder")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("Int")]))
                .with_method(Method::new("append", vec![t("String")], t("StringBuilder")))
                .with_method(Method::new("toString", vec![], t("String")))
                .with_method(Method::new("length", vec![], t("Int"))),
        )
        .with_class(
            Class::new("StringBuffer")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_method(Method::new("append", vec![t("String")], t("StringBuffer")))
                .with_method(Method::new("toString", vec![], t("String"))),
        )
        .with_class(
            Class::new("Integer")
                .with_constructor(ctor(vec![t("Int")]))
                .with_constructor(ctor(vec![t("String")]))
                .with_method(Method::new("intValue", vec![], t("Int")))
                .with_method(Method::new_static("parseInt", vec![t("String")], t("Int")))
                .with_method(Method::new_static("valueOf", vec![t("Int")], t("Integer")))
                .with_method(Method::new_static(
                    "toBinaryString",
                    vec![t("Int")],
                    t("String"),
                ))
                .with_field(Field::new_static("MAX_VALUE", t("Int")))
                .with_field(Field::new_static("MIN_VALUE", t("Int"))),
        )
        .with_class(
            Class::new("Long")
                .with_constructor(ctor(vec![t("Long")]))
                .with_method(Method::new("longValue", vec![], t("Long")))
                .with_method(Method::new_static(
                    "parseLong",
                    vec![t("String")],
                    t("Long"),
                )),
        )
        .with_class(
            Class::new("Double")
                .with_constructor(ctor(vec![t("DoubleVal")]))
                .with_method(Method::new("doubleValue", vec![], t("DoubleVal")))
                .with_method(Method::new_static(
                    "parseDouble",
                    vec![t("String")],
                    t("DoubleVal"),
                )),
        )
        .with_class(
            Class::new("Boolean")
                .with_constructor(ctor(vec![t("BooleanVal")]))
                .with_method(Method::new("booleanValue", vec![], t("BooleanVal")))
                .with_method(Method::new_static(
                    "parseBoolean",
                    vec![t("String")],
                    t("Boolean"),
                )),
        )
        .with_class(
            Class::new("Character")
                .with_constructor(ctor(vec![t("Char")]))
                .with_method(Method::new("charValue", vec![], t("Char"))),
        )
        .with_class(
            Class::new("Math")
                .with_method(Method::new_static("abs", vec![t("Int")], t("Int")))
                .with_method(Method::new_static(
                    "max",
                    vec![t("Int"), t("Int")],
                    t("Int"),
                ))
                .with_method(Method::new_static(
                    "min",
                    vec![t("Int"), t("Int")],
                    t("Int"),
                ))
                .with_method(Method::new_static(
                    "sqrt",
                    vec![t("DoubleVal")],
                    t("DoubleVal"),
                ))
                .with_method(Method::new_static("random", vec![], t("DoubleVal"))),
        )
        .with_class(
            Class::new("System")
                .with_field(Field::new_static("out", t("PrintStream")))
                .with_field(Field::new_static("err", t("PrintStream")))
                .with_field(Field::new_static("in", t("InputStream")))
                .with_method(Method::new_static("currentTimeMillis", vec![], t("Long")))
                .with_method(Method::new_static("nanoTime", vec![], t("Long")))
                .with_method(Method::new_static(
                    "getProperty",
                    vec![t("String")],
                    t("String"),
                ))
                .with_method(Method::new_static("getenv", vec![t("String")], t("String"))),
        )
        .with_class(
            Class::new("Thread")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Runnable")]))
                .with_constructor(ctor(vec![t("Runnable"), t("String")]))
                .with_method(Method::new("start", vec![], t("Unit")))
                .with_method(Method::new("join", vec![], t("Unit")))
                .with_method(Method::new_static("currentThread", vec![], t("Thread")))
                .with_method(Method::new_static("sleep", vec![t("Long")], t("Unit"))),
        )
        .with_class(Class::new("Runnable"))
        .with_class(
            Class::new("Exception")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_method(Method::new("getMessage", vec![], t("String"))),
        )
        .with_class(
            Class::new("RuntimeException")
                .extends("Exception")
                .with_constructor(ctor(vec![t("String")])),
        )
        .with_class(
            Class::new("IllegalArgumentException")
                .extends("RuntimeException")
                .with_constructor(ctor(vec![t("String")])),
        )
        .with_class(
            Class::new("ClassLoader")
                .with_method(Method::new("loadClass", vec![t("String")], t("Class")))
                .with_method(Method::new_static(
                    "getSystemClassLoader",
                    vec![],
                    t("ClassLoader"),
                )),
        )
        .with_class(
            Class::new("Class")
                .with_method(Method::new("getName", vec![], t("String")))
                .with_method(Method::new_static("forName", vec![t("String")], t("Class"))),
        )
}

/// `java.io`: the stream / reader / writer hierarchy used by most benchmarks.
pub fn java_io() -> Package {
    Package::new("java.io")
        // --- byte input streams ---
        .with_class(
            Class::new("InputStream")
                .with_method(Method::new("read", vec![], t("Int")))
                .with_method(Method::new("read", vec![t("ByteArray")], t("Int")))
                .with_method(Method::new(
                    "read",
                    vec![t("ByteArray"), t("Int"), t("Int")],
                    t("Int"),
                ))
                .with_method(Method::new("skip", vec![t("Long")], t("Long")))
                .with_method(Method::new("available", vec![], t("Int")))
                .with_method(Method::new("mark", vec![t("Int")], t("Unit")))
                .with_method(Method::new("reset", vec![], t("Unit")))
                .with_method(Method::new("close", vec![], t("Unit"))),
        )
        .with_class(
            Class::new("FileInputStream")
                .extends("InputStream")
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("File")]))
                .with_constructor(ctor(vec![t("FileDescriptor")]))
                .with_method(Method::new("getFD", vec![], t("FileDescriptor")))
                .with_method(Method::new("getChannel", vec![], t("FileChannel"))),
        )
        .with_class(
            Class::new("ByteArrayInputStream")
                .extends("InputStream")
                .with_constructor(ctor(vec![t("ByteArray")]))
                .with_constructor(ctor(vec![t("ByteArray"), t("Int"), t("Int")])),
        )
        .with_class(Class::new("FilterInputStream").extends("InputStream"))
        .with_class(
            Class::new("BufferedInputStream")
                .extends("FilterInputStream")
                .with_constructor(ctor(vec![t("InputStream")]))
                .with_constructor(ctor(vec![t("InputStream"), t("Int")])),
        )
        .with_class(
            Class::new("DataInputStream")
                .extends("FilterInputStream")
                .with_constructor(ctor(vec![t("InputStream")]))
                .with_method(Method::new("readInt", vec![], t("Int")))
                .with_method(Method::new("readUTF", vec![], t("String"))),
        )
        .with_class(
            Class::new("ObjectInputStream")
                .extends("InputStream")
                .with_constructor(ctor(vec![t("InputStream")]))
                .with_method(Method::new("readObject", vec![], t("Object"))),
        )
        .with_class(
            Class::new("SequenceInputStream")
                .extends("InputStream")
                .with_constructor(ctor(vec![t("InputStream"), t("InputStream")])),
        )
        .with_class(
            Class::new("PipedInputStream")
                .extends("InputStream")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("PipedOutputStream")])),
        )
        .with_class(
            Class::new("PushbackInputStream")
                .extends("FilterInputStream")
                .with_constructor(ctor(vec![t("InputStream")])),
        )
        // --- byte output streams ---
        .with_class(
            Class::new("OutputStream")
                .with_method(Method::new("write", vec![t("Int")], t("Unit")))
                .with_method(Method::new("write", vec![t("ByteArray")], t("Unit")))
                .with_method(Method::new(
                    "write",
                    vec![t("ByteArray"), t("Int"), t("Int")],
                    t("Unit"),
                ))
                .with_method(Method::new("flush", vec![], t("Unit")))
                .with_method(Method::new("close", vec![], t("Unit"))),
        )
        .with_class(
            Class::new("FileOutputStream")
                .extends("OutputStream")
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("File")]))
                .with_constructor(ctor(vec![t("FileDescriptor")]))
                .with_constructor(ctor(vec![t("String"), t("Boolean")]))
                .with_constructor(ctor(vec![t("File"), t("Boolean")])),
        )
        .with_class(
            Class::new("ByteArrayOutputStream")
                .extends("OutputStream")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int")]))
                .with_method(Method::new("toByteArray", vec![], t("ByteArray")))
                .with_method(Method::new("size", vec![], t("Int"))),
        )
        .with_class(Class::new("FilterOutputStream").extends("OutputStream"))
        .with_class(
            Class::new("BufferedOutputStream")
                .extends("FilterOutputStream")
                .with_constructor(ctor(vec![t("OutputStream")]))
                .with_constructor(ctor(vec![t("OutputStream"), t("Int")])),
        )
        .with_class(
            Class::new("DataOutputStream")
                .extends("FilterOutputStream")
                .with_constructor(ctor(vec![t("OutputStream")]))
                .with_method(Method::new("writeInt", vec![t("Int")], t("Unit")))
                .with_method(Method::new("writeUTF", vec![t("String")], t("Unit"))),
        )
        .with_class(
            Class::new("ObjectOutputStream")
                .extends("OutputStream")
                .with_constructor(ctor(vec![t("OutputStream")]))
                .with_method(Method::new("writeObject", vec![t("Object")], t("Unit"))),
        )
        .with_class(
            Class::new("PipedOutputStream")
                .extends("OutputStream")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("PipedInputStream")])),
        )
        .with_class(
            Class::new("PrintStream")
                .extends("FilterOutputStream")
                .with_constructor(ctor(vec![t("OutputStream")]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("File")]))
                // The real class carries ten println/print overloads; the
                // same-shape pairs collapse under σ, which is exactly the
                // compression §3.2 reports on overload-heavy APIs.
                .with_method(Method::new("println", vec![t("String")], t("Unit")))
                .with_method(Method::new("print", vec![t("String")], t("Unit")))
                .with_method(Method::new("println", vec![t("Object")], t("Unit")))
                .with_method(Method::new("print", vec![t("Object")], t("Unit")))
                .with_method(Method::new("println", vec![t("Int")], t("Unit")))
                .with_method(Method::new("print", vec![t("Int")], t("Unit")))
                .with_method(Method::new("println", vec![t("Char")], t("Unit")))
                .with_method(Method::new("print", vec![t("Char")], t("Unit")))
                .with_method(Method::new("write", vec![t("Int")], t("Unit")))
                .with_method(Method::new("println", vec![], t("Unit")))
                .with_method(Method::new("flush", vec![], t("Unit")))
                .with_method(Method::new("checkError", vec![], t("Boolean")))
                .with_method(Method::new(
                    "format",
                    vec![t("String"), t("ObjectArray")],
                    t("PrintStream"),
                ))
                .with_method(Method::new(
                    "printf",
                    vec![t("String"), t("ObjectArray")],
                    t("PrintStream"),
                ))
                .with_method(Method::new("append", vec![t("Char")], t("PrintStream"))),
        )
        // --- character readers ---
        .with_class(
            Class::new("Reader")
                .with_method(Method::new("read", vec![], t("Int")))
                .with_method(Method::new("close", vec![], t("Unit"))),
        )
        .with_class(
            Class::new("InputStreamReader")
                .extends("Reader")
                .with_constructor(ctor(vec![t("InputStream")]))
                .with_constructor(ctor(vec![t("InputStream"), t("String")]))
                .with_method(Method::new("getEncoding", vec![], t("String"))),
        )
        .with_class(
            Class::new("FileReader")
                .extends("InputStreamReader")
                .with_constructor(ctor(vec![t("File")]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("FileDescriptor")])),
        )
        .with_class(
            Class::new("BufferedReader")
                .extends("Reader")
                .with_constructor(ctor(vec![t("Reader")]))
                .with_constructor(ctor(vec![t("Reader"), t("Int")]))
                .with_method(Method::new("readLine", vec![], t("String"))),
        )
        .with_class(
            Class::new("LineNumberReader")
                .extends("BufferedReader")
                .with_constructor(ctor(vec![t("Reader")]))
                .with_constructor(ctor(vec![t("Reader"), t("Int")]))
                .with_method(Method::new("getLineNumber", vec![], t("Int"))),
        )
        .with_class(
            Class::new("StringReader")
                .extends("Reader")
                .with_constructor(ctor(vec![t("String")])),
        )
        .with_class(
            Class::new("CharArrayReader")
                .extends("Reader")
                .with_constructor(ctor(vec![t("CharArray")])),
        )
        .with_class(
            Class::new("PipedReader")
                .extends("Reader")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("PipedWriter")])),
        )
        .with_class(Class::new("FilterReader").extends("Reader"))
        .with_class(
            Class::new("PushbackReader")
                .extends("FilterReader")
                .with_constructor(ctor(vec![t("Reader")])),
        )
        // --- character writers ---
        .with_class(
            Class::new("Writer")
                .with_method(Method::new("write", vec![t("String")], t("Unit")))
                .with_method(Method::new("write", vec![t("Int")], t("Unit")))
                .with_method(Method::new("write", vec![t("CharArray")], t("Unit")))
                .with_method(Method::new(
                    "write",
                    vec![t("String"), t("Int"), t("Int")],
                    t("Unit"),
                ))
                .with_method(Method::new(
                    "write",
                    vec![t("CharArray"), t("Int"), t("Int")],
                    t("Unit"),
                ))
                .with_method(Method::new("append", vec![t("Char")], t("Writer")))
                .with_method(Method::new("append", vec![t("String")], t("Writer")))
                .with_method(Method::new("flush", vec![], t("Unit")))
                .with_method(Method::new("close", vec![], t("Unit"))),
        )
        .with_class(
            Class::new("OutputStreamWriter")
                .extends("Writer")
                .with_constructor(ctor(vec![t("OutputStream")]))
                .with_constructor(ctor(vec![t("OutputStream"), t("String")])),
        )
        .with_class(
            Class::new("FileWriter")
                .extends("OutputStreamWriter")
                .with_constructor(ctor(vec![t("File")]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("String"), t("Boolean")]))
                .with_constructor(ctor(vec![t("File"), t("Boolean")])),
        )
        .with_class(
            Class::new("BufferedWriter")
                .extends("Writer")
                .with_constructor(ctor(vec![t("Writer")]))
                .with_constructor(ctor(vec![t("Writer"), t("Int")]))
                .with_method(Method::new("newLine", vec![], t("Unit"))),
        )
        .with_class(
            Class::new("PrintWriter")
                .extends("Writer")
                .with_constructor(ctor(vec![t("Writer")]))
                .with_constructor(ctor(vec![t("OutputStream")]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("File")]))
                .with_method(Method::new("println", vec![t("String")], t("Unit")))
                .with_method(Method::new("print", vec![t("String")], t("Unit")))
                .with_method(Method::new("println", vec![t("Object")], t("Unit")))
                .with_method(Method::new("print", vec![t("Object")], t("Unit")))
                .with_method(Method::new("println", vec![t("Int")], t("Unit")))
                .with_method(Method::new("print", vec![t("Int")], t("Unit")))
                .with_method(Method::new("println", vec![], t("Unit")))
                .with_method(Method::new("checkError", vec![], t("Boolean")))
                .with_method(Method::new(
                    "format",
                    vec![t("String"), t("ObjectArray")],
                    t("PrintWriter"),
                ))
                .with_method(Method::new(
                    "printf",
                    vec![t("String"), t("ObjectArray")],
                    t("PrintWriter"),
                ))
                .with_method(Method::new("append", vec![t("Char")], t("PrintWriter"))),
        )
        .with_class(
            Class::new("StringWriter")
                .extends("Writer")
                .with_constructor(ctor(vec![]))
                .with_method(Method::new("toString", vec![], t("String"))),
        )
        .with_class(
            Class::new("CharArrayWriter")
                .extends("Writer")
                .with_constructor(ctor(vec![])),
        )
        .with_class(
            Class::new("PipedWriter")
                .extends("Writer")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("PipedReader")])),
        )
        // --- misc ---
        .with_class(
            Class::new("StreamTokenizer")
                .with_constructor(ctor(vec![t("Reader")]))
                .with_method(Method::new("nextToken", vec![], t("Int"))),
        )
        .with_class(
            Class::new("File")
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("String"), t("String")]))
                .with_constructor(ctor(vec![t("File"), t("String")]))
                .with_method(Method::new("getName", vec![], t("String")))
                .with_method(Method::new("getPath", vec![], t("String")))
                .with_method(Method::new("getAbsolutePath", vec![], t("String")))
                .with_method(Method::new("exists", vec![], t("Boolean")))
                .with_method(Method::new("length", vec![], t("Long")))
                .with_method(Method::new("delete", vec![], t("Boolean")))
                .with_method(Method::new_static(
                    "createTempFile",
                    vec![t("String"), t("String")],
                    t("File"),
                )),
        )
        .with_class(
            Class::new("FileDescriptor")
                .with_constructor(ctor(vec![]))
                .with_field(Field::new_static("in", t("FileDescriptor")))
                .with_field(Field::new_static("out", t("FileDescriptor")))
                .with_field(Field::new_static("err", t("FileDescriptor"))),
        )
        .with_class(
            Class::new("RandomAccessFile")
                .with_constructor(ctor(vec![t("String"), t("String")]))
                .with_constructor(ctor(vec![t("File"), t("String")]))
                .with_method(Method::new("readLine", vec![], t("String"))),
        )
        .with_class(
            Class::new("IOException")
                .extends("Exception")
                .with_constructor(ctor(vec![t("String")])),
        )
        .with_class(
            Class::new("FileNotFoundException")
                .extends("IOException")
                .with_constructor(ctor(vec![t("String")])),
        )
}

/// `java.awt`: components, containers, layout managers and geometry.
pub fn java_awt() -> Package {
    Package::new("java.awt")
        .with_class(
            Class::new("Component")
                .with_method(Method::new("getWidth", vec![], t("Int")))
                .with_method(Method::new("getHeight", vec![], t("Int")))
                .with_method(Method::new("getLocation", vec![], t("Point")))
                .with_method(Method::new("getSize", vec![], t("Dimension")))
                .with_method(Method::new("setVisible", vec![t("Boolean")], t("Unit")))
                .with_method(Method::new("repaint", vec![], t("Unit")))
                .with_method(Method::new("getGraphics", vec![], t("Graphics"))),
        )
        .with_class(
            Class::new("Container")
                .extends("Component")
                .with_method(Method::new("getLayout", vec![], t("LayoutManager")))
                .with_method(Method::new(
                    "setLayout",
                    vec![t("LayoutManager")],
                    t("Unit"),
                ))
                .with_method(Method::new("add", vec![t("Component")], t("Component")))
                .with_method(Method::new("getComponentCount", vec![], t("Int"))),
        )
        .with_class(
            Class::new("Panel")
                .extends("Container")
                .extends("Accessible")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("LayoutManager")])),
        )
        .with_class(Class::new("Accessible"))
        .with_class(
            Class::new("Canvas")
                .extends("Component")
                .with_constructor(ctor(vec![])),
        )
        .with_class(
            Class::new("Window")
                .extends("Container")
                .with_constructor(ctor(vec![t("Frame")]))
                .with_method(Method::new("pack", vec![], t("Unit")))
                .with_method(Method::new("dispose", vec![], t("Unit"))),
        )
        .with_class(
            Class::new("Frame")
                .extends("Window")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_method(Method::new("setTitle", vec![t("String")], t("Unit"))),
        )
        .with_class(
            Class::new("Dialog")
                .extends("Window")
                .with_constructor(ctor(vec![t("Frame")]))
                .with_constructor(ctor(vec![t("Frame"), t("String")])),
        )
        .with_class(Class::new("LayoutManager"))
        .with_class(
            Class::new("GridBagLayout")
                .extends("LayoutManager")
                .with_constructor(ctor(vec![])),
        )
        .with_class(
            Class::new("GridBagConstraints")
                .with_constructor(ctor(vec![]))
                .with_field(Field::new("gridx", t("Int")))
                .with_field(Field::new("gridy", t("Int")))
                .with_field(Field::new("gridwidth", t("Int")))
                .with_field(Field::new("gridheight", t("Int")))
                .with_field(Field::new("weightx", t("DoubleVal")))
                .with_field(Field::new("weighty", t("DoubleVal"))),
        )
        .with_class(
            Class::new("BorderLayout")
                .extends("LayoutManager")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int"), t("Int")]))
                .with_field(Field::new_static("CENTER", t("String")))
                .with_field(Field::new_static("NORTH", t("String"))),
        )
        .with_class(
            Class::new("FlowLayout")
                .extends("LayoutManager")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int")])),
        )
        .with_class(
            Class::new("GridLayout")
                .extends("LayoutManager")
                .with_constructor(ctor(vec![t("Int"), t("Int")])),
        )
        .with_class(
            Class::new("CardLayout")
                .extends("LayoutManager")
                .with_constructor(ctor(vec![])),
        )
        .with_class(
            Class::new("DisplayMode")
                .with_constructor(ctor(vec![t("Int"), t("Int"), t("Int"), t("Int")]))
                .with_method(Method::new("getWidth", vec![], t("Int")))
                .with_method(Method::new("getHeight", vec![], t("Int"))),
        )
        .with_class(
            Class::new("Point")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int"), t("Int")]))
                .with_constructor(ctor(vec![t("Point")]))
                .with_field(Field::new("x", t("Int")))
                .with_field(Field::new("y", t("Int"))),
        )
        .with_class(
            Class::new("Dimension")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int"), t("Int")]))
                .with_field(Field::new("width", t("Int")))
                .with_field(Field::new("height", t("Int"))),
        )
        .with_class(
            Class::new("Rectangle")
                .with_constructor(ctor(vec![t("Int"), t("Int"), t("Int"), t("Int")]))
                .with_constructor(ctor(vec![t("Point"), t("Dimension")])),
        )
        .with_class(Class::new("Insets").with_constructor(ctor(vec![
            t("Int"),
            t("Int"),
            t("Int"),
            t("Int"),
        ])))
        .with_class(
            Class::new("Color")
                .with_constructor(ctor(vec![t("Int"), t("Int"), t("Int")]))
                .with_constructor(ctor(vec![t("Int")]))
                .with_field(Field::new_static("RED", t("Color")))
                .with_field(Field::new_static("BLUE", t("Color")))
                .with_field(Field::new_static("BLACK", t("Color")))
                .with_field(Field::new_static("WHITE", t("Color"))),
        )
        .with_class(
            Class::new("Font")
                .with_constructor(ctor(vec![t("String"), t("Int"), t("Int")]))
                .with_method(Method::new("getSize", vec![], t("Int"))),
        )
        .with_class(
            Class::new("Graphics")
                .with_method(Method::new(
                    "drawLine",
                    vec![t("Int"), t("Int"), t("Int"), t("Int")],
                    t("Unit"),
                ))
                .with_method(Method::new("setColor", vec![t("Color")], t("Unit"))),
        )
        .with_class(
            Class::new("AWTPermission")
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("String"), t("String")])),
        )
        .with_class(Class::new("MediaTracker").with_constructor(ctor(vec![t("Component")])))
        .with_class(
            Class::new("Toolkit")
                .with_method(Method::new_static(
                    "getDefaultToolkit",
                    vec![],
                    t("Toolkit"),
                ))
                .with_method(Method::new("getScreenSize", vec![], t("Dimension")))
                .with_method(Method::new("getImage", vec![t("String")], t("Image"))),
        )
        .with_class(Class::new("Image").with_method(Method::new("getWidth", vec![], t("Int"))))
        .with_class(Class::new("Cursor").with_constructor(ctor(vec![t("Int")])))
        .with_class(
            Class::new("Robot")
                .with_constructor(ctor(vec![]))
                .with_method(Method::new("delay", vec![t("Int")], t("Unit"))),
        )
}

/// `java.awt.event`: listeners and events (needed by the Swing benchmarks).
pub fn java_awt_event() -> Package {
    Package::new("java.awt.event")
        .with_class(Class::new("ActionListener").with_method(Method::new(
            "actionPerformed",
            vec![t("ActionEvent")],
            t("Unit"),
        )))
        .with_class(
            Class::new("ActionEvent")
                .with_constructor(ctor(vec![t("Object"), t("Int"), t("String")]))
                .with_method(Method::new("getActionCommand", vec![], t("String"))),
        )
        .with_class(Class::new("KeyEvent").with_method(Method::new("getKeyCode", vec![], t("Int"))))
        .with_class(
            Class::new("MouseEvent")
                .with_method(Method::new("getX", vec![], t("Int")))
                .with_method(Method::new("getY", vec![], t("Int"))),
        )
        .with_class(Class::new("WindowEvent").with_method(Method::new(
            "getWindow",
            vec![],
            t("Window"),
        )))
        .with_class(Class::new("ItemEvent").with_method(Method::new(
            "getStateChange",
            vec![],
            t("Int"),
        )))
}

/// `javax.swing`: the widget classes exercised by the Swing benchmarks.
pub fn javax_swing() -> Package {
    Package::new("javax.swing")
        .with_class(Class::new("Icon"))
        .with_class(
            Class::new("JComponent")
                .extends("Container")
                .with_method(Method::new("setToolTipText", vec![t("String")], t("Unit"))),
        )
        .with_class(
            Class::new("AbstractButton")
                .extends("JComponent")
                .with_method(Method::new("setText", vec![t("String")], t("Unit")))
                .with_method(Method::new("getText", vec![], t("String")))
                .with_method(Method::new(
                    "addActionListener",
                    vec![t("ActionListener")],
                    t("Unit"),
                )),
        )
        .with_class(
            Class::new("JButton")
                .extends("AbstractButton")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("Icon")]))
                .with_constructor(ctor(vec![t("String"), t("Icon")])),
        )
        .with_class(
            Class::new("JToggleButton")
                .extends("AbstractButton")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("String"), t("Boolean")])),
        )
        .with_class(
            Class::new("JCheckBox")
                .extends("JToggleButton")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("String"), t("Boolean")]))
                .with_constructor(ctor(vec![t("Icon")])),
        )
        .with_class(
            Class::new("JRadioButton")
                .extends("JToggleButton")
                .with_constructor(ctor(vec![t("String")])),
        )
        .with_class(
            Class::new("JLabel")
                .extends("JComponent")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("Icon")])),
        )
        .with_class(
            Class::new("JTextComponent")
                .extends("JComponent")
                .with_method(Method::new("setText", vec![t("String")], t("Unit")))
                .with_method(Method::new("getText", vec![], t("String"))),
        )
        .with_class(
            Class::new("JTextField")
                .extends("JTextComponent")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("Int")])),
        )
        .with_class(
            Class::new("AbstractFormatter")
                .with_method(Method::new("valueToString", vec![t("Object")], t("String")))
                .with_method(Method::new("stringToValue", vec![t("String")], t("Object"))),
        )
        .with_class(
            Class::new("DefaultFormatter")
                .extends("AbstractFormatter")
                .with_constructor(ctor(vec![])),
        )
        .with_class(
            Class::new("JFormattedTextField")
                .extends("JTextField")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("AbstractFormatter")]))
                .with_constructor(ctor(vec![t("Object")])),
        )
        .with_class(
            Class::new("JTextArea")
                .extends("JTextComponent")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("Int"), t("Int")]))
                .with_constructor(ctor(vec![t("String"), t("Int"), t("Int")])),
        )
        .with_class(
            Class::new("JTable")
                .extends("JComponent")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int"), t("Int")]))
                .with_constructor(ctor(vec![t("ObjectMatrix"), t("ObjectArray")]))
                .with_method(Method::new("getRowCount", vec![], t("Int"))),
        )
        .with_class(
            Class::new("JTree")
                .extends("JComponent")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("ObjectArray")]))
                .with_method(Method::new("getRowCount", vec![], t("Int"))),
        )
        .with_class(
            Class::new("JViewport")
                .extends("JComponent")
                .with_constructor(ctor(vec![]))
                .with_method(Method::new("getView", vec![], t("Component"))),
        )
        .with_class(
            Class::new("JWindow")
                .extends("Window")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Frame")]))
                .with_constructor(ctor(vec![t("Window")])),
        )
        .with_class(
            Class::new("JFrame")
                .extends("Frame")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_method(Method::new("getContentPane", vec![], t("Container"))),
        )
        .with_class(
            Class::new("JDialog")
                .extends("Dialog")
                .with_constructor(ctor(vec![t("Frame")]))
                .with_constructor(ctor(vec![t("Frame"), t("String")])),
        )
        .with_class(
            Class::new("JPanel")
                .extends("JComponent")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("LayoutManager")])),
        )
        .with_class(
            Class::new("JScrollPane")
                .extends("JComponent")
                .with_constructor(ctor(vec![t("Component")]))
                .with_constructor(ctor(vec![])),
        )
        .with_class(
            Class::new("JSplitPane")
                .extends("JComponent")
                .with_constructor(ctor(vec![t("Int"), t("Component"), t("Component")])),
        )
        .with_class(
            Class::new("JTabbedPane")
                .extends("JComponent")
                .with_constructor(ctor(vec![])),
        )
        .with_class(
            Class::new("JToolBar")
                .extends("JComponent")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")])),
        )
        .with_class(
            Class::new("JMenuBar")
                .extends("JComponent")
                .with_constructor(ctor(vec![])),
        )
        .with_class(
            Class::new("JMenu")
                .extends("JComponent")
                .with_constructor(ctor(vec![t("String")])),
        )
        .with_class(
            Class::new("JMenuItem")
                .extends("JComponent")
                .with_constructor(ctor(vec![t("String")])),
        )
        .with_class(
            Class::new("JSlider")
                .extends("JComponent")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int"), t("Int"), t("Int")])),
        )
        .with_class(
            Class::new("JProgressBar")
                .extends("JComponent")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int"), t("Int")])),
        )
        .with_class(
            Class::new("JComboBox")
                .extends("JComponent")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("ObjectArray")])),
        )
        .with_class(
            Class::new("JList")
                .extends("JComponent")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("ObjectArray")])),
        )
        .with_class(
            Class::new("JSpinner")
                .extends("JComponent")
                .with_constructor(ctor(vec![])),
        )
        .with_class(
            Class::new("GroupLayout")
                .extends("LayoutManager")
                .with_constructor(ctor(vec![t("Container")])),
        )
        .with_class(
            Class::new("BoxLayout")
                .extends("LayoutManager")
                .with_constructor(ctor(vec![t("Container"), t("Int")])),
        )
        .with_class(
            Class::new("SpringLayout")
                .extends("LayoutManager")
                .with_constructor(ctor(vec![])),
        )
        .with_class(
            Class::new("DefaultBoundedRangeModel")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int"), t("Int"), t("Int"), t("Int")]))
                .with_method(Method::new("getValue", vec![], t("Int"))),
        )
        .with_class(
            Class::new("ImageIcon")
                .extends("Icon")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("Image")]))
                .with_constructor(ctor(vec![t("String"), t("String")])),
        )
        .with_class(
            Class::new("Timer")
                .with_constructor(ctor(vec![t("Int"), t("ActionListener")]))
                .with_method(Method::new("start", vec![], t("Unit")))
                .with_method(Method::new("stop", vec![], t("Unit"))),
        )
        .with_class(
            Class::new("TransferHandler")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")])),
        )
        .with_class(Class::new("SwingUtilities").with_method(Method::new_static(
            "invokeLater",
            vec![t("Runnable")],
            t("Unit"),
        )))
        .with_class(
            Class::new("JOptionPane")
                .with_method(Method::new_static(
                    "showMessageDialog",
                    vec![t("Component"), t("Object")],
                    t("Unit"),
                ))
                .with_method(Method::new_static(
                    "showInputDialog",
                    vec![t("Component"), t("Object")],
                    t("String"),
                )),
        )
        .with_class(
            Class::new("BorderFactory")
                .with_method(Method::new_static("createEmptyBorder", vec![], t("Border")))
                .with_method(Method::new_static(
                    "createTitledBorder",
                    vec![t("String")],
                    t("Border"),
                )),
        )
        .with_class(Class::new("Border"))
        .with_class(
            Class::new("ButtonGroup")
                .with_constructor(ctor(vec![]))
                .with_method(Method::new("add", vec![t("AbstractButton")], t("Unit"))),
        )
}

/// `java.net`: sockets and URLs.
pub fn java_net() -> Package {
    Package::new("java.net")
        .with_class(
            Class::new("URL")
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("String"), t("String"), t("Int"), t("String")]))
                .with_constructor(ctor(vec![t("URL"), t("String")]))
                .with_method(Method::new("openStream", vec![], t("InputStream")))
                .with_method(Method::new("openConnection", vec![], t("URLConnection")))
                .with_method(Method::new("getHost", vec![], t("String"))),
        )
        .with_class(
            Class::new("URI")
                .with_constructor(ctor(vec![t("String")]))
                .with_method(Method::new("toURL", vec![], t("URL"))),
        )
        .with_class(
            Class::new("URLConnection")
                .with_method(Method::new("getInputStream", vec![], t("InputStream")))
                .with_method(Method::new("getOutputStream", vec![], t("OutputStream"))),
        )
        .with_class(
            Class::new("HttpURLConnection")
                .extends("URLConnection")
                .with_method(Method::new("getResponseCode", vec![], t("Int"))),
        )
        .with_class(
            Class::new("ServerSocket")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int")]))
                .with_constructor(ctor(vec![t("Int"), t("Int")]))
                .with_method(Method::new("accept", vec![], t("Socket")))
                .with_method(Method::new("close", vec![], t("Unit"))),
        )
        .with_class(
            Class::new("Socket")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String"), t("Int")]))
                .with_constructor(ctor(vec![t("InetAddress"), t("Int")]))
                .with_method(Method::new("getInputStream", vec![], t("InputStream")))
                .with_method(Method::new("getOutputStream", vec![], t("OutputStream")))
                .with_method(Method::new("close", vec![], t("Unit"))),
        )
        .with_class(
            Class::new("DatagramSocket")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int")]))
                .with_constructor(ctor(vec![t("Int"), t("InetAddress")]))
                .with_method(Method::new("send", vec![t("DatagramPacket")], t("Unit")))
                .with_method(Method::new("receive", vec![t("DatagramPacket")], t("Unit"))),
        )
        .with_class(
            Class::new("MulticastSocket")
                .extends("DatagramSocket")
                .with_constructor(ctor(vec![t("Int")])),
        )
        .with_class(
            Class::new("DatagramPacket")
                .with_constructor(ctor(vec![t("ByteArray"), t("Int")]))
                .with_constructor(ctor(vec![
                    t("ByteArray"),
                    t("Int"),
                    t("InetAddress"),
                    t("Int"),
                ])),
        )
        .with_class(
            Class::new("InetAddress")
                .with_method(Method::new_static(
                    "getByName",
                    vec![t("String")],
                    t("InetAddress"),
                ))
                .with_method(Method::new_static("getLocalHost", vec![], t("InetAddress")))
                .with_method(Method::new("getHostName", vec![], t("String"))),
        )
        .with_class(
            Class::new("InetSocketAddress")
                .with_constructor(ctor(vec![t("String"), t("Int")]))
                .with_constructor(ctor(vec![t("Int")])),
        )
}

/// Adds the shared `java.util.Collection` member surface to a collection
/// class: the add/remove/contains family plus the bulk operations. The
/// same-shape groups (`add`/`remove`/`contains` all `(Object) → Boolean`,
/// the four bulk methods all `(Collection) → Boolean`) collapse under σ —
/// the overload-richness the paper's environments exhibit.
fn with_collection_members(class: Class) -> Class {
    class
        .with_method(Method::new("add", vec![t("Object")], t("Boolean")))
        .with_method(Method::new("remove", vec![t("Object")], t("Boolean")))
        .with_method(Method::new("contains", vec![t("Object")], t("Boolean")))
        .with_method(Method::new("addAll", vec![t("Collection")], t("Boolean")))
        .with_method(Method::new(
            "removeAll",
            vec![t("Collection")],
            t("Boolean"),
        ))
        .with_method(Method::new(
            "retainAll",
            vec![t("Collection")],
            t("Boolean"),
        ))
        .with_method(Method::new(
            "containsAll",
            vec![t("Collection")],
            t("Boolean"),
        ))
        .with_method(Method::new("size", vec![], t("Int")))
        .with_method(Method::new("isEmpty", vec![], t("Boolean")))
        .with_method(Method::new("clear", vec![], t("Unit")))
        .with_method(Method::new("iterator", vec![], t("Iterator")))
        .with_method(Method::new("toArray", vec![], t("ObjectArray")))
}

/// `java.util`: collections and utility classes. The collection hierarchy is
/// subtype-rich (every concrete collection reaches `Collection` through the
/// abstract base classes, producing coercions per §6) and overload-rich (the
/// shared member surface collapses heavily under σ).
pub fn java_util() -> Package {
    Package::new("java.util")
        .with_class(Class::new("Collection"))
        .with_class(Class::new("AbstractCollection").extends("Collection"))
        .with_class(Class::new("AbstractList").extends("AbstractCollection"))
        .with_class(Class::new("AbstractSet").extends("AbstractCollection"))
        .with_class(with_collection_members(
            Class::new("ArrayList")
                .extends("AbstractList")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int")]))
                .with_constructor(ctor(vec![t("Collection")]))
                .with_method(Method::new("get", vec![t("Int")], t("Object")))
                .with_method(Method::new("set", vec![t("Int"), t("Object")], t("Object")))
                .with_method(Method::new("indexOf", vec![t("Object")], t("Int")))
                .with_method(Method::new("lastIndexOf", vec![t("Object")], t("Int"))),
        ))
        .with_class(with_collection_members(
            Class::new("LinkedList")
                .extends("AbstractList")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Collection")]))
                .with_method(Method::new("addFirst", vec![t("Object")], t("Unit")))
                .with_method(Method::new("addLast", vec![t("Object")], t("Unit")))
                .with_method(Method::new("getFirst", vec![], t("Object")))
                .with_method(Method::new("getLast", vec![], t("Object"))),
        ))
        .with_class(with_collection_members(
            Class::new("Vector")
                .extends("AbstractList")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int")]))
                .with_method(Method::new("elementAt", vec![t("Int")], t("Object")))
                .with_method(Method::new("firstElement", vec![], t("Object")))
                .with_method(Method::new("lastElement", vec![], t("Object")))
                .with_method(Method::new("elements", vec![], t("Enumeration"))),
        ))
        .with_class(
            Class::new("Stack")
                .extends("Vector")
                .with_constructor(ctor(vec![]))
                .with_method(Method::new("push", vec![t("Object")], t("Object")))
                .with_method(Method::new("pop", vec![], t("Object")))
                .with_method(Method::new("peek", vec![], t("Object"))),
        )
        .with_class(with_collection_members(
            Class::new("ArrayDeque")
                .extends("AbstractCollection")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int")]))
                .with_method(Method::new("push", vec![t("Object")], t("Unit")))
                .with_method(Method::new("pop", vec![], t("Object")))
                .with_method(Method::new("peekFirst", vec![], t("Object")))
                .with_method(Method::new("peekLast", vec![], t("Object"))),
        ))
        .with_class(with_collection_members(
            Class::new("PriorityQueue")
                .extends("AbstractCollection")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int")]))
                .with_method(Method::new("poll", vec![], t("Object")))
                .with_method(Method::new("peek", vec![], t("Object"))),
        ))
        .with_class(
            Class::new("HashMap")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int")]))
                .with_method(Method::new(
                    "put",
                    vec![t("Object"), t("Object")],
                    t("Object"),
                ))
                .with_method(Method::new("get", vec![t("Object")], t("Object")))
                .with_method(Method::new("remove", vec![t("Object")], t("Object")))
                .with_method(Method::new(
                    "getOrDefault",
                    vec![t("Object"), t("Object")],
                    t("Object"),
                ))
                .with_method(Method::new("containsKey", vec![t("Object")], t("Boolean")))
                .with_method(Method::new(
                    "containsValue",
                    vec![t("Object")],
                    t("Boolean"),
                ))
                .with_method(Method::new("size", vec![], t("Int")))
                .with_method(Method::new("isEmpty", vec![], t("Boolean"))),
        )
        .with_class(
            Class::new("LinkedHashMap")
                .extends("HashMap")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int")])),
        )
        .with_class(
            Class::new("Hashtable")
                .with_constructor(ctor(vec![]))
                .with_method(Method::new(
                    "put",
                    vec![t("Object"), t("Object")],
                    t("Object"),
                ))
                .with_method(Method::new("get", vec![t("Object")], t("Object"))),
        )
        .with_class(
            Class::new("TreeMap")
                .with_constructor(ctor(vec![]))
                .with_method(Method::new("firstKey", vec![], t("Object")))
                .with_method(Method::new("lastKey", vec![], t("Object")))
                .with_method(Method::new(
                    "put",
                    vec![t("Object"), t("Object")],
                    t("Object"),
                ))
                .with_method(Method::new("get", vec![t("Object")], t("Object"))),
        )
        .with_class(with_collection_members(
            Class::new("HashSet")
                .extends("AbstractSet")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int")]))
                .with_constructor(ctor(vec![t("Collection")])),
        ))
        .with_class(
            Class::new("LinkedHashSet")
                .extends("HashSet")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Collection")])),
        )
        .with_class(with_collection_members(
            Class::new("TreeSet")
                .extends("AbstractSet")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Collection")]))
                .with_method(Method::new("first", vec![], t("Object")))
                .with_method(Method::new("last", vec![], t("Object"))),
        ))
        .with_class(
            Class::new("Collections")
                .with_method(Method::new_static(
                    "sort",
                    vec![t("AbstractList")],
                    t("Unit"),
                ))
                .with_method(Method::new_static(
                    "reverse",
                    vec![t("AbstractList")],
                    t("Unit"),
                ))
                .with_method(Method::new_static(
                    "shuffle",
                    vec![t("AbstractList")],
                    t("Unit"),
                ))
                .with_method(Method::new_static(
                    "max",
                    vec![t("Collection")],
                    t("Object"),
                ))
                .with_method(Method::new_static(
                    "min",
                    vec![t("Collection")],
                    t("Object"),
                ))
                .with_method(Method::new_static("emptyList", vec![], t("AbstractList"))),
        )
        .with_class(
            Class::new("Arrays")
                .with_method(Method::new_static(
                    "asList",
                    vec![t("ObjectArray")],
                    t("AbstractList"),
                ))
                .with_method(Method::new_static(
                    "sort",
                    vec![t("ObjectArray")],
                    t("Unit"),
                ))
                .with_method(Method::new_static(
                    "fill",
                    vec![t("ObjectArray")],
                    t("Unit"),
                ))
                .with_method(Method::new_static(
                    "toString",
                    vec![t("ObjectArray")],
                    t("String"),
                ))
                .with_method(Method::new_static(
                    "hashCode",
                    vec![t("ObjectArray")],
                    t("Int"),
                )),
        )
        .with_class(
            Class::new("Objects")
                .with_method(Method::new_static(
                    "equals",
                    vec![t("Object"), t("Object")],
                    t("Boolean"),
                ))
                .with_method(Method::new_static(
                    "deepEquals",
                    vec![t("Object"), t("Object")],
                    t("Boolean"),
                ))
                .with_method(Method::new_static("hashCode", vec![t("Object")], t("Int")))
                .with_method(Method::new_static(
                    "toString",
                    vec![t("Object")],
                    t("String"),
                ))
                .with_method(Method::new_static(
                    "requireNonNull",
                    vec![t("Object")],
                    t("Object"),
                )),
        )
        .with_class(
            Class::new("Iterator")
                .with_method(Method::new("hasNext", vec![], t("Boolean")))
                .with_method(Method::new("next", vec![], t("Object"))),
        )
        .with_class(Class::new("Enumeration").with_method(Method::new(
            "nextElement",
            vec![],
            t("Object"),
        )))
        .with_class(
            Class::new("Date")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Long")]))
                .with_method(Method::new("getTime", vec![], t("Long"))),
        )
        .with_class(
            Class::new("Calendar")
                .with_method(Method::new_static("getInstance", vec![], t("Calendar")))
                .with_method(Method::new("getTime", vec![], t("Date"))),
        )
        .with_class(
            Class::new("Random")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Long")]))
                .with_method(Method::new("nextInt", vec![t("Int")], t("Int")))
                .with_method(Method::new("nextDouble", vec![], t("DoubleVal"))),
        )
        .with_class(
            Class::new("Scanner")
                .with_constructor(ctor(vec![t("InputStream")]))
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("File")]))
                .with_method(Method::new("nextLine", vec![], t("String")))
                .with_method(Method::new("nextInt", vec![], t("Int"))),
        )
        .with_class(
            Class::new("StringTokenizer")
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("String"), t("String")]))
                .with_method(Method::new("nextToken", vec![], t("String")))
                .with_method(Method::new("countTokens", vec![], t("Int"))),
        )
        .with_class(
            Class::new("Properties")
                .with_constructor(ctor(vec![]))
                .with_method(Method::new("getProperty", vec![t("String")], t("String")))
                .with_method(Method::new("load", vec![t("InputStream")], t("Unit"))),
        )
        .with_class(
            Class::new("Locale")
                .with_constructor(ctor(vec![t("String")]))
                .with_constructor(ctor(vec![t("String"), t("String")]))
                .with_field(Field::new_static("US", t("Locale"))),
        )
        .with_class(
            Class::new("UUID")
                .with_method(Method::new_static("randomUUID", vec![], t("UUID")))
                .with_method(Method::new("toString", vec![], t("String"))),
        )
        .with_class(
            Class::new("BitSet")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("Int")])),
        )
        .with_class(
            Class::new("Observable")
                .with_constructor(ctor(vec![]))
                .with_method(Method::new("notifyObservers", vec![], t("Unit"))),
        )
}

/// A miniature model of the Scala IDE classes used by the §2.2 TreeFilter
/// example (higher-order constructor argument).
/// `java.nio`: buffers, paths and the `Files` static surface. The buffer
/// classes are the deepest overload families in the JDK — `ByteBuffer` alone
/// carries a dozen absolute/relative `put`/`get` variants whose shapes
/// collapse heavily under σ — and `Files` contributes the wide static-factory
/// surface (`Path → X` for many `X`) that drives environment fan-out.
pub fn java_nio() -> Package {
    Package::new("java.nio")
        .with_class(
            Class::new("Path")
                .with_method(Method::new("toAbsolutePath", vec![], t("Path")))
                .with_method(Method::new("getParent", vec![], t("Path")))
                .with_method(Method::new("getFileName", vec![], t("Path")))
                .with_method(Method::new("resolve", vec![t("String")], t("Path")))
                .with_method(Method::new("resolveSibling", vec![t("String")], t("Path")))
                .with_method(Method::new("relativize", vec![t("Path")], t("Path")))
                .with_method(Method::new("startsWith", vec![t("Path")], t("Boolean")))
                .with_method(Method::new("endsWith", vec![t("Path")], t("Boolean")))
                .with_method(Method::new("toFile", vec![], t("File")))
                .with_method(Method::new("toUri", vec![], t("URI"))),
        )
        .with_class(
            Class::new("Paths")
                .with_method(Method::new_static("get", vec![t("String")], t("Path")))
                .with_method(Method::new_static(
                    "get2",
                    vec![t("String"), t("String")],
                    t("Path"),
                )),
        )
        .with_class(
            Class::new("Files")
                .with_method(Method::new_static(
                    "readAllBytes",
                    vec![t("Path")],
                    t("ByteArray"),
                ))
                .with_method(Method::new_static(
                    "readAllLines",
                    vec![t("Path")],
                    t("ListString"),
                ))
                .with_method(Method::new_static(
                    "readString",
                    vec![t("Path")],
                    t("String"),
                ))
                .with_method(Method::new_static(
                    "write",
                    vec![t("Path"), t("ByteArray")],
                    t("Path"),
                ))
                .with_method(Method::new_static(
                    "writeString",
                    vec![t("Path"), t("String")],
                    t("Path"),
                ))
                .with_method(Method::new_static(
                    "newInputStream",
                    vec![t("Path")],
                    t("InputStream"),
                ))
                .with_method(Method::new_static(
                    "newOutputStream",
                    vec![t("Path")],
                    t("OutputStream"),
                ))
                .with_method(Method::new_static(
                    "newBufferedReader",
                    vec![t("Path")],
                    t("BufferedReader"),
                ))
                .with_method(Method::new_static(
                    "newBufferedWriter",
                    vec![t("Path")],
                    t("BufferedWriter"),
                ))
                .with_method(Method::new_static("exists", vec![t("Path")], t("Boolean")))
                .with_method(Method::new_static(
                    "isDirectory",
                    vec![t("Path")],
                    t("Boolean"),
                ))
                .with_method(Method::new_static(
                    "isReadable",
                    vec![t("Path")],
                    t("Boolean"),
                ))
                .with_method(Method::new_static("size", vec![t("Path")], t("Long")))
                .with_method(Method::new_static("createFile", vec![t("Path")], t("Path")))
                .with_method(Method::new_static(
                    "createDirectory",
                    vec![t("Path")],
                    t("Path"),
                ))
                .with_method(Method::new_static(
                    "copy",
                    vec![t("Path"), t("Path")],
                    t("Path"),
                ))
                .with_method(Method::new_static(
                    "move",
                    vec![t("Path"), t("Path")],
                    t("Path"),
                ))
                .with_method(Method::new_static("delete", vec![t("Path")], t("Unit")))
                .with_method(Method::new_static("lines", vec![t("Path")], t("Stream")))
                .with_method(Method::new_static("list", vec![t("Path")], t("Stream")))
                .with_method(Method::new_static("walk", vec![t("Path")], t("Stream"))),
        )
        .with_class(
            Class::new("Buffer")
                .with_method(Method::new("capacity", vec![], t("Int")))
                .with_method(Method::new("position", vec![], t("Int")))
                .with_method(Method::new("limit", vec![], t("Int")))
                .with_method(Method::new("remaining", vec![], t("Int")))
                .with_method(Method::new("hasRemaining", vec![], t("Boolean")))
                .with_method(Method::new("clear", vec![], t("Buffer")))
                .with_method(Method::new("flip", vec![], t("Buffer")))
                .with_method(Method::new("rewind", vec![], t("Buffer"))),
        )
        .with_class(
            Class::new("ByteBuffer")
                .extends("Buffer")
                .with_method(Method::new_static(
                    "allocate",
                    vec![t("Int")],
                    t("ByteBuffer"),
                ))
                .with_method(Method::new_static(
                    "allocateDirect",
                    vec![t("Int")],
                    t("ByteBuffer"),
                ))
                .with_method(Method::new_static(
                    "wrap",
                    vec![t("ByteArray")],
                    t("ByteBuffer"),
                ))
                .with_method(Method::new("put", vec![t("Byte")], t("ByteBuffer")))
                .with_method(Method::new(
                    "putAt",
                    vec![t("Int"), t("Byte")],
                    t("ByteBuffer"),
                ))
                .with_method(Method::new("putInt", vec![t("Int")], t("ByteBuffer")))
                .with_method(Method::new("putLong", vec![t("Long")], t("ByteBuffer")))
                .with_method(Method::new("putDouble", vec![t("Double")], t("ByteBuffer")))
                .with_method(Method::new("get", vec![], t("Byte")))
                .with_method(Method::new("getAt", vec![t("Int")], t("Byte")))
                .with_method(Method::new("getInt", vec![], t("Int")))
                .with_method(Method::new("getLong", vec![], t("Long")))
                .with_method(Method::new("getDouble", vec![], t("Double")))
                .with_method(Method::new("array", vec![], t("ByteArray")))
                .with_method(Method::new("compact", vec![], t("ByteBuffer")))
                .with_method(Method::new("duplicate", vec![], t("ByteBuffer")))
                .with_method(Method::new("slice", vec![], t("ByteBuffer"))),
        )
        .with_class(
            Class::new("CharBuffer")
                .extends("Buffer")
                .with_method(Method::new_static(
                    "allocate",
                    vec![t("Int")],
                    t("CharBuffer"),
                ))
                .with_method(Method::new_static(
                    "wrap",
                    vec![t("String")],
                    t("CharBuffer"),
                ))
                .with_method(Method::new("put", vec![t("Char")], t("CharBuffer")))
                .with_method(Method::new("putString", vec![t("String")], t("CharBuffer")))
                .with_method(Method::new("get", vec![], t("Char")))
                .with_method(Method::new("getAt", vec![t("Int")], t("Char"))),
        )
        .with_class(
            Class::new("FileChannel")
                .with_method(Method::new("read", vec![t("ByteBuffer")], t("Int")))
                .with_method(Method::new("write", vec![t("ByteBuffer")], t("Int")))
                .with_method(Method::new("size", vec![], t("Long")))
                .with_method(Method::new("positionTo", vec![t("Long")], t("FileChannel")))
                .with_method(Method::new("force", vec![t("Boolean")], t("Unit")))
                .with_method(Method::new("close", vec![], t("Unit"))),
        )
        .with_class(
            Class::new("Charset")
                .with_method(Method::new_static(
                    "forName",
                    vec![t("String")],
                    t("Charset"),
                ))
                .with_method(Method::new_static("defaultCharset", vec![], t("Charset")))
                .with_method(Method::new("encode", vec![t("String")], t("ByteBuffer")))
                .with_method(Method::new(
                    "decode",
                    vec![t("ByteBuffer")],
                    t("CharBuffer"),
                ))
                .with_method(Method::new("name", vec![], t("String"))),
        )
        .with_class(
            Class::new("StandardCharsets")
                .with_field(Field::new_static("UTF_8", t("Charset")))
                .with_field(Field::new_static("US_ASCII", t("Charset")))
                .with_field(Field::new_static("ISO_8859_1", t("Charset"))),
        )
}

/// `java.text`: the format/parse surface. The `format` family is a textbook
/// σ-overload group — every formatter exposes `(X) → String` for several `X`
/// plus the `StringBuffer`-threading variant — and the parsers all map
/// `String` back into their domain type.
pub fn java_text() -> Package {
    Package::new("java.text")
        .with_class(
            Class::new("Format")
                .with_method(Method::new("format", vec![t("Object")], t("String")))
                .with_method(Method::new("parseObject", vec![t("String")], t("Object"))),
        )
        .with_class(
            Class::new("NumberFormat")
                .extends("Format")
                .with_method(Method::new_static("getInstance", vec![], t("NumberFormat")))
                .with_method(Method::new_static(
                    "getIntegerInstance",
                    vec![],
                    t("NumberFormat"),
                ))
                .with_method(Method::new_static(
                    "getCurrencyInstance",
                    vec![],
                    t("NumberFormat"),
                ))
                .with_method(Method::new_static(
                    "getPercentInstance",
                    vec![],
                    t("NumberFormat"),
                ))
                .with_method(Method::new("formatDouble", vec![t("Double")], t("String")))
                .with_method(Method::new("formatLong", vec![t("Long")], t("String")))
                .with_method(Method::new("parse", vec![t("String")], t("Number")))
                .with_method(Method::new(
                    "setMaximumFractionDigits",
                    vec![t("Int")],
                    t("Unit"),
                ))
                .with_method(Method::new(
                    "setGroupingUsed",
                    vec![t("Boolean")],
                    t("Unit"),
                )),
        )
        .with_class(
            Class::new("DecimalFormat")
                .extends("NumberFormat")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_method(Method::new("applyPattern", vec![t("String")], t("Unit")))
                .with_method(Method::new("toPattern", vec![], t("String"))),
        )
        .with_class(
            Class::new("DateFormat")
                .extends("Format")
                .with_method(Method::new_static(
                    "getDateInstance",
                    vec![],
                    t("DateFormat"),
                ))
                .with_method(Method::new_static(
                    "getTimeInstance",
                    vec![],
                    t("DateFormat"),
                ))
                .with_method(Method::new_static(
                    "getDateTimeInstance",
                    vec![],
                    t("DateFormat"),
                ))
                .with_method(Method::new("formatDate", vec![t("Date")], t("String")))
                .with_method(Method::new("parse", vec![t("String")], t("Date"))),
        )
        .with_class(
            Class::new("SimpleDateFormat")
                .extends("DateFormat")
                .with_constructor(ctor(vec![]))
                .with_constructor(ctor(vec![t("String")]))
                .with_method(Method::new("applyPattern", vec![t("String")], t("Unit")))
                .with_method(Method::new("toPattern", vec![], t("String"))),
        )
        .with_class(
            Class::new("MessageFormat")
                .extends("Format")
                .with_constructor(ctor(vec![t("String")]))
                .with_method(Method::new_static(
                    "formatPattern",
                    vec![t("String"), t("ObjectArray")],
                    t("String"),
                ))
                .with_method(Method::new(
                    "formatArgs",
                    vec![t("ObjectArray")],
                    t("String"),
                )),
        )
        .with_class(
            Class::new("Collator")
                .with_method(Method::new_static("getInstance", vec![], t("Collator")))
                .with_method(Method::new(
                    "compare",
                    vec![t("String"), t("String")],
                    t("Int"),
                ))
                .with_method(Method::new(
                    "equals",
                    vec![t("String"), t("String")],
                    t("Boolean"),
                )),
        )
        .with_class(
            Class::new("BreakIterator")
                .with_method(Method::new_static(
                    "getWordInstance",
                    vec![],
                    t("BreakIterator"),
                ))
                .with_method(Method::new_static(
                    "getLineInstance",
                    vec![],
                    t("BreakIterator"),
                ))
                .with_method(Method::new("setText", vec![t("String")], t("Unit")))
                .with_method(Method::new("first", vec![], t("Int")))
                .with_method(Method::new("next", vec![], t("Int"))),
        )
}

/// `java.util.stream`: the pipeline surface. Nearly every method is
/// higher-order — `map`/`filter`/`reduce` take function-typed arguments whose
/// σ images stay *nested* (Definition 3.2 keeps higher-order argument
/// structure) — so this package exercises exactly the part of the calculus
/// the flat overload families do not.
pub fn java_util_stream() -> Package {
    let obj_to_obj = || Ty::fun(vec![t("Object")], t("Object"));
    let obj_pred = || Ty::fun(vec![t("Object")], t("Boolean"));
    let obj_consumer = || Ty::fun(vec![t("Object")], t("Unit"));
    let obj_binop = || Ty::fun(vec![t("Object"), t("Object")], t("Object"));
    let int_unop = || Ty::fun(vec![t("Int")], t("Int"));
    Package::new("java.util.stream")
        .with_class(
            Class::new("Stream")
                .with_method(Method::new_static("of", vec![t("Object")], t("Stream")))
                .with_method(Method::new_static("empty", vec![], t("Stream")))
                .with_method(Method::new_static(
                    "concat",
                    vec![t("Stream"), t("Stream")],
                    t("Stream"),
                ))
                .with_method(Method::new("map", vec![obj_to_obj()], t("Stream")))
                .with_method(Method::new("flatMap", vec![obj_to_obj()], t("Stream")))
                .with_method(Method::new("filter", vec![obj_pred()], t("Stream")))
                .with_method(Method::new("peek", vec![obj_consumer()], t("Stream")))
                .with_method(Method::new("forEach", vec![obj_consumer()], t("Unit")))
                .with_method(Method::new("anyMatch", vec![obj_pred()], t("Boolean")))
                .with_method(Method::new("allMatch", vec![obj_pred()], t("Boolean")))
                .with_method(Method::new("noneMatch", vec![obj_pred()], t("Boolean")))
                .with_method(Method::new("reduce", vec![obj_binop()], t("Object")))
                .with_method(Method::new(
                    "reduceFrom",
                    vec![t("Object"), obj_binop()],
                    t("Object"),
                ))
                .with_method(Method::new("collect", vec![t("Collector")], t("Object")))
                .with_method(Method::new("sorted", vec![], t("Stream")))
                .with_method(Method::new("distinct", vec![], t("Stream")))
                .with_method(Method::new("limit", vec![t("Long")], t("Stream")))
                .with_method(Method::new("skip", vec![t("Long")], t("Stream")))
                .with_method(Method::new("count", vec![], t("Long")))
                .with_method(Method::new("toArray", vec![], t("ObjectArray")))
                .with_method(Method::new(
                    "mapToInt",
                    vec![Ty::fun(vec![t("Object")], t("Int"))],
                    t("IntStream"),
                )),
        )
        .with_class(
            Class::new("IntStream")
                .with_method(Method::new_static(
                    "range",
                    vec![t("Int"), t("Int")],
                    t("IntStream"),
                ))
                .with_method(Method::new_static(
                    "rangeClosed",
                    vec![t("Int"), t("Int")],
                    t("IntStream"),
                ))
                .with_method(Method::new_static("of", vec![t("Int")], t("IntStream")))
                .with_method(Method::new("map", vec![int_unop()], t("IntStream")))
                .with_method(Method::new(
                    "filter",
                    vec![Ty::fun(vec![t("Int")], t("Boolean"))],
                    t("IntStream"),
                ))
                .with_method(Method::new(
                    "forEach",
                    vec![Ty::fun(vec![t("Int")], t("Unit"))],
                    t("Unit"),
                ))
                .with_method(Method::new("sum", vec![], t("Int")))
                .with_method(Method::new("max", vec![], t("OptionalInt")))
                .with_method(Method::new("min", vec![], t("OptionalInt")))
                .with_method(Method::new("average", vec![], t("OptionalDouble")))
                .with_method(Method::new("count", vec![], t("Long")))
                .with_method(Method::new("boxed", vec![], t("Stream")))
                .with_method(Method::new(
                    "mapToObj",
                    vec![Ty::fun(vec![t("Int")], t("Object"))],
                    t("Stream"),
                )),
        )
        .with_class(
            Class::new("LongStream")
                .with_method(Method::new_static(
                    "range",
                    vec![t("Long"), t("Long")],
                    t("LongStream"),
                ))
                .with_method(Method::new_static("of", vec![t("Long")], t("LongStream")))
                .with_method(Method::new(
                    "map",
                    vec![Ty::fun(vec![t("Long")], t("Long"))],
                    t("LongStream"),
                ))
                .with_method(Method::new("sum", vec![], t("Long")))
                .with_method(Method::new("boxed", vec![], t("Stream"))),
        )
        .with_class(
            Class::new("DoubleStream")
                .with_method(Method::new_static(
                    "of",
                    vec![t("Double")],
                    t("DoubleStream"),
                ))
                .with_method(Method::new(
                    "map",
                    vec![Ty::fun(vec![t("Double")], t("Double"))],
                    t("DoubleStream"),
                ))
                .with_method(Method::new("sum", vec![], t("Double")))
                .with_method(Method::new("boxed", vec![], t("Stream"))),
        )
        .with_class(Class::new("Collector").with_method(Method::new(
            "characteristics",
            vec![],
            t("Object"),
        )))
        .with_class(
            Class::new("Collectors")
                .with_method(Method::new_static("toList", vec![], t("Collector")))
                .with_method(Method::new_static("toSet", vec![], t("Collector")))
                .with_method(Method::new_static(
                    "joining",
                    vec![t("String")],
                    t("Collector"),
                ))
                .with_method(Method::new_static(
                    "groupingBy",
                    vec![obj_to_obj()],
                    t("Collector"),
                ))
                .with_method(Method::new_static(
                    "partitioningBy",
                    vec![obj_pred()],
                    t("Collector"),
                ))
                .with_method(Method::new_static("counting", vec![], t("Collector"))),
        )
        .with_class(
            Class::new("OptionalInt")
                .with_method(Method::new("getAsInt", vec![], t("Int")))
                .with_method(Method::new("isPresent", vec![], t("Boolean")))
                .with_method(Method::new("orElse", vec![t("Int")], t("Int"))),
        )
        .with_class(
            Class::new("OptionalDouble")
                .with_method(Method::new("getAsDouble", vec![], t("Double")))
                .with_method(Method::new("isPresent", vec![], t("Boolean")))
                .with_method(Method::new("orElse", vec![t("Double")], t("Double"))),
        )
        .with_class(Class::new("StreamSupport").with_method(Method::new_static(
            "stream",
            vec![t("Object"), t("Boolean")],
            t("Stream"),
        )))
}

/// The number of declarations one [`synthetic_tier`] package contributes —
/// the sizing arithmetic callers use to hit a target environment size.
pub fn synthetic_tier_decls(classes: usize, methods_per_class: usize) -> usize {
    // Per class: one nullary constructor plus the methods.
    classes * (1 + methods_per_class)
}

/// A scalable synthetic API tier emulating the *structure* of large real
/// APIs, used to grow environments to IDE scale (~50k declarations).
///
/// Where [`filler_package`] is realistic noise, the tier reproduces the
/// statistics that matter to σ-compression and search: every class carries a
/// deep same-shape overload family (eight signature shapes cycling, so a
/// 16-method class has each shape twice), a quarter of the shapes are
/// factories returning a *neighbour* class (environment fan-out), one shape
/// is higher-order (nested σ images), and one threads the class itself
/// (builder chains). Deterministic in all arguments; `synthetic_tier_decls`
/// predicts the declaration count exactly.
pub fn synthetic_tier(index: usize, classes: usize, methods_per_class: usize) -> Package {
    let prefix = format!("Gen{index}");
    let mut package = Package::new(format!("synthetic.tier{index}"));
    for c in 0..classes {
        let name = format!("{prefix}Api{c}");
        let neighbour = format!("{prefix}Api{}", (c + 1) % classes.max(1));
        let across = format!("{prefix}Api{}", (c + 7) % classes.max(1));
        let mut class = Class::new(&name).with_constructor(ctor(vec![]));
        for m in 0..methods_per_class {
            let (params, ret) = match m % 8 {
                // The flat overload family: same σ image, different names.
                0 => (vec![t("String")], t(&name)),
                1 => (vec![t("Int")], t(&name)),
                // Factories fanning out to neighbour classes.
                2 => (vec![], t(&neighbour)),
                3 => (vec![t("String")], t(&across)),
                // Builder chain threading the receiver type.
                4 => (vec![t(&name), t(&name)], t(&name)),
                // Projections back into common types.
                5 => (vec![t(&neighbour)], t("String")),
                6 => (vec![], t("Int")),
                // Higher-order callback: σ keeps the argument nested.
                _ => (vec![Ty::fun(vec![t(&name)], t("Boolean"))], t(&neighbour)),
            };
            class = class.with_method(Method::new(format!("m{m}"), params, ret));
        }
        package = package.with_class(class);
    }
    package
}

pub fn scala_ide() -> Package {
    Package::new("scala.tools.eclipse.javaelements")
        .with_class(Class::new("Tree").with_method(Method::new("symbol", vec![], t("Symbol"))))
        .with_class(Class::new("Symbol").with_method(Method::new("name", vec![], t("String"))))
        .with_class(Class::new("Global"))
        .with_class(
            Class::new("FilterTypeTreeTraverser")
                .extends("TypeTreeTraverser")
                .with_constructor(ctor(vec![Ty::fun(vec![t("Tree")], t("Boolean"))]))
                .with_method(Method::new("traverse", vec![t("Tree")], t("Unit")))
                .with_field(Field::new("hits", t("ListBuffer"))),
        )
        .with_class(
            Class::new("TreeWrapper")
                .with_constructor(ctor(vec![t("Tree")]))
                .with_method(Method::new(
                    "filter",
                    vec![Ty::fun(vec![t("Tree")], t("Boolean"))],
                    t("ListTree"),
                )),
        )
        .with_class(
            Class::new("ListBuffer")
                .with_constructor(ctor(vec![]))
                .with_method(Method::new("toList", vec![], t("ListTree"))),
        )
        .with_class(Class::new("ListTree"))
        .with_class(Class::new("TypeTreeTraverser").with_method(Method::new(
            "traverse",
            vec![t("Tree")],
            t("Unit"),
        )))
}

/// A deterministic filler package used to pad environments to paper-scale
/// sizes. Classes are named `{prefix}Support{i}`; every class has a nullary
/// constructor and `methods_per_class` methods. The method signatures cycle
/// through six shapes against a per-class neighbour type, so that a class
/// with twelve methods carries every shape twice — the overload-richness of
/// real APIs, which is what makes the σ-compression of §3.2 measurable.
/// Half the shapes mention a common type (`String` or `Int`), so the filler
/// genuinely competes in the search (realistic noise), while the rest return
/// filler types.
pub fn filler_package(index: usize, classes: usize, methods_per_class: usize) -> Package {
    let prefix = format!("Lib{index}");
    let mut package = Package::new(format!("lib.generated{index}"));
    for c in 0..classes {
        let name = format!("{prefix}Support{c}");
        let neighbour = format!("{prefix}Support{}", (c + 1) % classes);
        let mut class = Class::new(&name).with_constructor(ctor(vec![]));
        for m in 0..methods_per_class {
            let (params, ret) = match m % 6 {
                0 => (vec![t("String")], t(&neighbour)),
                1 => (vec![t("Int")], t(&neighbour)),
                2 => (vec![t(&neighbour)], t("String")),
                3 => (vec![t(&neighbour), t("Int")], t("Int")),
                4 => (vec![t("String"), t("Int")], t(&neighbour)),
                _ => (vec![], t(&neighbour)),
            };
            class = class.with_method(Method::new(format!("op{m}"), params, ret));
        }
        package = package.with_class(class);
    }
    package
}

/// The standard model: every hand-modelled package plus a default amount of
/// filler. This is the model used by the examples; the benchmark suite builds
/// its own models with per-benchmark filler to match the paper's environment
/// sizes.
pub fn standard_model() -> ApiModel {
    let mut model = ApiModel::new();
    model.add_package(java_lang());
    model.add_package(java_io());
    model.add_package(java_awt());
    model.add_package(java_awt_event());
    model.add_package(javax_swing());
    model.add_package(java_net());
    model.add_package(java_nio());
    model.add_package(java_text());
    model.add_package(java_util());
    model.add_package(java_util_stream());
    model.add_package(scala_ide());
    for i in 0..4 {
        model.add_package(filler_package(i, 40, 12));
    }
    model
}

/// Classes per [`synthetic_tier`] package in [`scaled_model`].
pub const SCALED_TIER_CLASSES: usize = 64;
/// Methods per class in each [`scaled_model`] tier.
pub const SCALED_TIER_METHODS: usize = 16;

/// The standard model grown with as many [`synthetic_tier`] packages as it
/// takes to reach at least `target_decls` total declarations. Each tier adds
/// `synthetic_tier_decls(SCALED_TIER_CLASSES, SCALED_TIER_METHODS)` = 1088
/// declarations, so the overshoot is bounded by one tier. Deterministic in
/// `target_decls`; this is how the benchmark ladder reaches ~50k declarations.
pub fn scaled_model(target_decls: usize) -> ApiModel {
    let mut model = standard_model();
    let mut tier = 0;
    while model.total_declarations() < target_decls {
        model.add_package(synthetic_tier(
            tier,
            SCALED_TIER_CLASSES,
            SCALED_TIER_METHODS,
        ));
        tier += 1;
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::{extract, ProgramPoint};

    #[test]
    fn standard_model_contains_the_benchmark_classes() {
        let model = standard_model();
        for class in [
            "SequenceInputStream",
            "BufferedReader",
            "FileInputStream",
            "GridBagConstraints",
            "JFormattedTextField",
            "JTree",
            "DatagramSocket",
            "URL",
            "Timer",
            "FilterTypeTreeTraverser",
            "Panel",
            "Container",
        ] {
            assert!(model.find_class(class).is_some(), "missing class {class}");
        }
    }

    #[test]
    fn io_hierarchy_reaches_the_stream_roots() {
        let model = standard_model();
        let lattice = model.subtype_lattice();
        assert!(lattice.is_subtype("FileInputStream", "InputStream"));
        assert!(lattice.is_subtype("BufferedInputStream", "InputStream"));
        assert!(lattice.is_subtype("FileReader", "Reader"));
        assert!(lattice.is_subtype("LineNumberReader", "Reader"));
        assert!(lattice.is_subtype("Panel", "Component"));
        assert!(lattice.is_subtype("JCheckBox", "Container"));
    }

    #[test]
    fn filler_packages_are_deterministic_and_sized() {
        let a = filler_package(3, 20, 10);
        let b = filler_package(3, 20, 10);
        assert_eq!(a, b);
        assert_eq!(a.classes.len(), 20);
        // Each class: 1 constructor + 10 methods.
        assert_eq!(a.declaration_count(), 20 * 11);
    }

    #[test]
    fn synthetic_tiers_are_deterministic_and_predictably_sized() {
        let a = synthetic_tier(5, 32, 16);
        let b = synthetic_tier(5, 32, 16);
        assert_eq!(a, b);
        assert_eq!(a.classes.len(), 32);
        assert_eq!(a.declaration_count(), synthetic_tier_decls(32, 16));
        // The higher-order shape must survive into the model: at least one
        // method per class takes a function-typed parameter.
        let class = &a.classes[0];
        assert!(class
            .methods
            .iter()
            .any(|m| m.params.iter().any(|p| !p.is_base())));
    }

    #[test]
    fn scaled_model_reaches_the_requested_size() {
        let model = scaled_model(12_000);
        let total = model.total_declarations();
        assert!(total >= 12_000, "got {total}");
        // Overshoot is bounded by a single tier.
        assert!(
            total < 12_000 + synthetic_tier_decls(SCALED_TIER_CLASSES, SCALED_TIER_METHODS),
            "got {total}"
        );
        assert!(model.find_package("synthetic.tier0").is_some());
    }

    #[test]
    fn nio_text_and_stream_packages_are_registered() {
        let model = standard_model();
        for class in ["ByteBuffer", "Files", "SimpleDateFormat", "Collectors"] {
            assert!(model.find_class(class).is_some(), "missing class {class}");
        }
        let lattice = model.subtype_lattice();
        assert!(lattice.is_subtype("ByteBuffer", "Buffer"));
        assert!(lattice.is_subtype("DecimalFormat", "NumberFormat"));
        assert!(lattice.is_subtype("SimpleDateFormat", "Format"));
    }

    #[test]
    fn importing_java_io_yields_hundreds_of_declarations() {
        let model = standard_model();
        let env = extract(
            &model,
            &ProgramPoint::new()
                .with_import("java.io")
                .with_import("java.lang"),
        );
        assert!(env.len() > 200, "got {}", env.len());
    }

    #[test]
    fn full_import_reaches_paper_scale() {
        let model = standard_model();
        let mut point = ProgramPoint::new();
        for package in model.packages() {
            point = point.with_import(package.name.clone());
        }
        let env = extract(&model, &point);
        assert!(env.len() > 2500, "got {}", env.len());
    }
}
