//! The API model: packages, classes and their members.

use insynth_lambda::Ty;

/// A constructor of a class.
///
/// # Example
///
/// ```
/// use insynth_apimodel::Constructor;
/// use insynth_lambda::Ty;
/// let c = Constructor::new(vec![Ty::base("String")]);
/// assert_eq!(c.params.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Constructor {
    /// Parameter types, in declaration order.
    pub params: Vec<Ty>,
}

impl Constructor {
    /// Creates a constructor with the given parameter types.
    pub fn new(params: Vec<Ty>) -> Self {
        Constructor { params }
    }
}

/// A method of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// Parameter types (not counting the receiver).
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
    /// `true` for static methods (no receiver).
    pub is_static: bool,
}

impl Method {
    /// Creates an instance method.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Ty) -> Self {
        Method {
            name: name.into(),
            params,
            ret,
            is_static: false,
        }
    }

    /// Creates a static method.
    pub fn new_static(name: impl Into<String>, params: Vec<Ty>, ret: Ty) -> Self {
        Method {
            name: name.into(),
            params,
            ret,
            is_static: true,
        }
    }
}

/// A field of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
    /// `true` for static fields.
    pub is_static: bool,
}

impl Field {
    /// Creates an instance field.
    pub fn new(name: impl Into<String>, ty: Ty) -> Self {
        Field {
            name: name.into(),
            ty,
            is_static: false,
        }
    }

    /// Creates a static field (a class-level constant).
    pub fn new_static(name: impl Into<String>, ty: Ty) -> Self {
        Field {
            name: name.into(),
            ty,
            is_static: true,
        }
    }
}

/// A class (or interface/trait) of the modelled API.
///
/// # Example
///
/// ```
/// use insynth_apimodel::{Class, Constructor, Method};
/// use insynth_lambda::Ty;
///
/// let c = Class::new("BufferedReader")
///     .extends("Reader")
///     .with_constructor(Constructor::new(vec![Ty::base("Reader")]))
///     .with_method(Method::new("readLine", vec![], Ty::base("String")));
/// assert_eq!(c.name, "BufferedReader");
/// assert_eq!(c.supertypes, vec!["Reader".to_owned()]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Class {
    /// Simple (unqualified) class name; also used as the base type name.
    pub name: String,
    /// Direct supertypes (class names).
    pub supertypes: Vec<String>,
    /// Constructors.
    pub constructors: Vec<Constructor>,
    /// Methods (instance and static).
    pub methods: Vec<Method>,
    /// Fields (instance and static).
    pub fields: Vec<Field>,
}

impl Class {
    /// Creates an empty class with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Class {
            name: name.into(),
            ..Class::default()
        }
    }

    /// Adds a direct supertype.
    pub fn extends(mut self, supertype: impl Into<String>) -> Self {
        self.supertypes.push(supertype.into());
        self
    }

    /// Adds a constructor.
    pub fn with_constructor(mut self, c: Constructor) -> Self {
        self.constructors.push(c);
        self
    }

    /// Adds a method.
    pub fn with_method(mut self, m: Method) -> Self {
        self.methods.push(m);
        self
    }

    /// Adds a field.
    pub fn with_field(mut self, f: Field) -> Self {
        self.fields.push(f);
        self
    }

    /// Number of declarations this class contributes when imported:
    /// constructors + methods + fields.
    pub fn member_count(&self) -> usize {
        self.constructors.len() + self.methods.len() + self.fields.len()
    }
}

/// A package: a named group of classes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Package {
    /// Fully qualified package name, e.g. `java.io`.
    pub name: String,
    /// The classes of the package.
    pub classes: Vec<Class>,
}

impl Package {
    /// Creates an empty package.
    pub fn new(name: impl Into<String>) -> Self {
        Package {
            name: name.into(),
            classes: Vec::new(),
        }
    }

    /// Adds a class.
    pub fn with_class(mut self, class: Class) -> Self {
        self.classes.push(class);
        self
    }

    /// Total number of declarations contributed by the package.
    pub fn declaration_count(&self) -> usize {
        self.classes.iter().map(Class::member_count).sum()
    }
}

/// A whole API model: the set of packages visible to the project, together
/// with the class hierarchy they induce.
///
/// # Example
///
/// ```
/// use insynth_apimodel::{ApiModel, Class, Package};
///
/// let mut model = ApiModel::new();
/// model.add_package(Package::new("p").with_class(Class::new("A").extends("B")));
/// assert!(model.find_class("A").is_some());
/// assert_eq!(model.subtype_lattice().direct_edges().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ApiModel {
    packages: Vec<Package>,
}

impl ApiModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a package to the model.
    pub fn add_package(&mut self, package: Package) {
        self.packages.push(package);
    }

    /// All packages.
    pub fn packages(&self) -> &[Package] {
        &self.packages
    }

    /// Finds a package by name.
    pub fn find_package(&self, name: &str) -> Option<&Package> {
        self.packages.iter().find(|p| p.name == name)
    }

    /// Finds a class by simple name anywhere in the model.
    pub fn find_class(&self, name: &str) -> Option<&Class> {
        self.packages
            .iter()
            .flat_map(|p| p.classes.iter())
            .find(|c| c.name == name)
    }

    /// The package a class belongs to, if any.
    pub fn package_of(&self, class_name: &str) -> Option<&Package> {
        self.packages
            .iter()
            .find(|p| p.classes.iter().any(|c| c.name == class_name))
    }

    /// Total number of declarations across all packages.
    pub fn total_declarations(&self) -> usize {
        self.packages.iter().map(Package::declaration_count).sum()
    }

    /// The subtype lattice induced by every `extends` edge in the model.
    pub fn subtype_lattice(&self) -> insynth_core::SubtypeLattice {
        let mut lattice = insynth_core::SubtypeLattice::new();
        for package in &self.packages {
            for class in &package.classes {
                for sup in &class.supertypes {
                    lattice.add(class.name.clone(), sup.clone());
                }
            }
        }
        lattice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ApiModel {
        let mut m = ApiModel::new();
        m.add_package(
            Package::new("java.io")
                .with_class(
                    Class::new("FileInputStream")
                        .extends("InputStream")
                        .with_constructor(Constructor::new(vec![Ty::base("String")]))
                        .with_constructor(Constructor::new(vec![Ty::base("File")]))
                        .with_method(Method::new("read", vec![], Ty::base("Int"))),
                )
                .with_class(Class::new("InputStream").with_method(Method::new(
                    "close",
                    vec![],
                    Ty::base("Unit"),
                ))),
        );
        m
    }

    #[test]
    fn find_class_and_package() {
        let m = sample();
        assert!(m.find_class("FileInputStream").is_some());
        assert!(m.find_class("Missing").is_none());
        assert_eq!(m.package_of("InputStream").unwrap().name, "java.io");
        assert!(m.find_package("java.io").is_some());
    }

    #[test]
    fn declaration_counts_sum_members() {
        let m = sample();
        // FileInputStream: 2 constructors + 1 method; InputStream: 1 method.
        assert_eq!(m.total_declarations(), 4);
        assert_eq!(m.find_package("java.io").unwrap().declaration_count(), 4);
    }

    #[test]
    fn subtype_lattice_collects_extends_edges() {
        let m = sample();
        let lattice = m.subtype_lattice();
        assert!(lattice.is_subtype("FileInputStream", "InputStream"));
        assert!(!lattice.is_subtype("InputStream", "FileInputStream"));
    }

    #[test]
    fn class_builder_accumulates_members() {
        let c = Class::new("X")
            .with_constructor(Constructor::new(vec![]))
            .with_method(Method::new_static(
                "of",
                vec![Ty::base("Int")],
                Ty::base("X"),
            ))
            .with_field(Field::new_static("EMPTY", Ty::base("X")));
        assert_eq!(c.member_count(), 3);
        assert!(c.methods[0].is_static);
        assert!(c.fields[0].is_static);
    }
}
