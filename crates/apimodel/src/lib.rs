//! The program / API model substrate.
//!
//! The paper's tool runs inside the Scala Eclipse plugin and asks the Scala
//! presentation compiler for every declaration visible at the cursor. This
//! crate replaces that substrate with an explicit model:
//!
//! * [`ApiModel`] — packages, classes, constructors, methods, fields and the
//!   subtype hierarchy of a (synthetic but realistic) Java/Scala API,
//! * [`ProgramPoint`] — the local context of a completion query (local values,
//!   members of the enclosing class, imported packages, literal placeholders),
//! * [`extract`] — turns a model + program point into the flat, weighted
//!   declaration list ([`insynth_core::TypeEnv`]) the engine consumes,
//!   including coercion declarations derived from the subtype lattice,
//! * [`render_snippet`] — renders synthesized terms in Scala-like surface
//!   syntax (`new C(...)`, `recv.m(...)`, `x => e`),
//! * [`javaapi`] — a hand-modelled slice of `java.io`, `java.awt`,
//!   `javax.swing`, `java.net`, `java.lang` and `java.util` covering the 50
//!   evaluation benchmarks, plus a deterministic filler generator used to pad
//!   environments to the paper's reported sizes (3.3k–10.7k declarations).
//!
//! # Example
//!
//! ```
//! use insynth_apimodel::{extract, javaapi, ProgramPoint};
//! use insynth_core::{Engine, Query, SynthesisConfig};
//! use insynth_lambda::Ty;
//!
//! let model = javaapi::standard_model();
//! let point = ProgramPoint::new()
//!     .with_local("name", Ty::base("String"))
//!     .with_import("java.io");
//! let env = extract(&model, &point);
//! let session = Engine::new(SynthesisConfig::default()).prepare(&env);
//! let result = session.query(&Query::new(Ty::base("FileInputStream")));
//! assert!(!result.snippets.is_empty());
//! ```

pub mod javaapi;
mod model;
mod render;
mod scope;

pub use model::{ApiModel, Class, Constructor, Field, Method, Package};
pub use render::{render_snippet, render_term};
pub use scope::{extract, ProgramPoint};
