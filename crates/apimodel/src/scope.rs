//! Program points and declaration extraction.
//!
//! A [`ProgramPoint`] captures what the Scala presentation compiler would see
//! at the cursor: local values, members of the enclosing class and package,
//! literal placeholders, and the set of imported packages. [`extract`] turns a
//! point plus an [`ApiModel`] into the flat declaration list the engine
//! consumes, using the same encoding conventions the renderer understands:
//!
//! * constructors are named `new C` and typed `P1 → … → Pn → C`;
//! * instance methods are named `C#m` and typed `C → P1 → … → Pn → R`
//!   (the receiver becomes the first argument);
//! * instance fields are named `C#f@` and typed `C → T`;
//! * static methods / fields are named `C.m` / `C.f@`;
//! * every subtype edge of the imported classes becomes a coercion
//!   declaration (paper §6).

use insynth_core::{DeclKind, Declaration, TypeEnv};
use insynth_lambda::Ty;

use crate::model::{ApiModel, Class};

/// The completion context at a cursor position.
///
/// # Example
///
/// ```
/// use insynth_apimodel::ProgramPoint;
/// use insynth_lambda::Ty;
///
/// let point = ProgramPoint::new()
///     .with_local("body", Ty::base("String"))
///     .with_import("java.io")
///     .with_literal("\"UTF-8\"", Ty::base("String"));
/// assert_eq!(point.locals().len(), 1);
/// assert_eq!(point.imports(), ["java.io"]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramPoint {
    locals: Vec<(String, Ty)>,
    class_members: Vec<(String, Ty)>,
    package_members: Vec<(String, Ty)>,
    literals: Vec<(String, Ty)>,
    imports: Vec<String>,
}

impl ProgramPoint {
    /// Creates an empty program point (nothing in scope, nothing imported).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a local value (same method as the cursor; weight class "Local").
    pub fn with_local(mut self, name: impl Into<String>, ty: Ty) -> Self {
        self.locals.push((name.into(), ty));
        self
    }

    /// Adds a member of the enclosing class (weight class "Class").
    pub fn with_class_member(mut self, name: impl Into<String>, ty: Ty) -> Self {
        self.class_members.push((name.into(), ty));
        self
    }

    /// Adds a member of the enclosing package (weight class "Package").
    pub fn with_package_member(mut self, name: impl Into<String>, ty: Ty) -> Self {
        self.package_members.push((name.into(), ty));
        self
    }

    /// Adds a literal placeholder (weight class "Literal").
    pub fn with_literal(mut self, text: impl Into<String>, ty: Ty) -> Self {
        self.literals.push((text.into(), ty));
        self
    }

    /// Imports every declaration of a package (weight class "Imported").
    pub fn with_import(mut self, package: impl Into<String>) -> Self {
        self.imports.push(package.into());
        self
    }

    /// The local values.
    pub fn locals(&self) -> &[(String, Ty)] {
        &self.locals
    }

    /// The imported package names.
    pub fn imports(&self) -> Vec<&str> {
        self.imports.iter().map(String::as_str).collect()
    }
}

/// The canonical declaration name of a constructor of `class`.
pub fn constructor_name(class: &str) -> String {
    format!("new {class}")
}

/// The canonical declaration name of an instance method `class#method`.
pub fn method_name(class: &str, method: &str) -> String {
    format!("{class}#{method}")
}

/// The canonical declaration name of an instance field `class#field@`.
pub fn field_name(class: &str, field: &str) -> String {
    format!("{class}#{field}@")
}

/// The canonical declaration name of a static method `class.method`.
pub fn static_method_name(class: &str, method: &str) -> String {
    format!("{class}.{method}")
}

/// The canonical declaration name of a static field `class.field@`.
pub fn static_field_name(class: &str, field: &str) -> String {
    format!("{class}.{field}@")
}

/// Extracts the full declaration list visible at `point` from `model`.
///
/// The result contains, in order: locals, enclosing-class members,
/// enclosing-package members, literals, every member of every imported
/// package, and one coercion declaration per subtype edge whose subclass lives
/// in an imported package (transitively closed).
pub fn extract(model: &ApiModel, point: &ProgramPoint) -> TypeEnv {
    let mut env = TypeEnv::new();

    for (name, ty) in &point.locals {
        env.push(Declaration::new(name.clone(), ty.clone(), DeclKind::Local));
    }
    for (name, ty) in &point.class_members {
        env.push(Declaration::new(name.clone(), ty.clone(), DeclKind::Class));
    }
    for (name, ty) in &point.package_members {
        env.push(Declaration::new(
            name.clone(),
            ty.clone(),
            DeclKind::Package,
        ));
    }
    for (name, ty) in &point.literals {
        env.push(Declaration::new(
            name.clone(),
            ty.clone(),
            DeclKind::Literal,
        ));
    }

    let mut imported_classes: Vec<&Class> = Vec::new();
    for package_name in &point.imports {
        let Some(package) = model.find_package(package_name) else {
            continue;
        };
        for class in &package.classes {
            imported_classes.push(class);
            extract_class(class, &mut env);
        }
    }

    // Subtyping: coercions for every (transitive) supertype edge reachable
    // from an imported class.
    let lattice = model.subtype_lattice();
    let imported_names: Vec<&str> = imported_classes.iter().map(|c| c.name.as_str()).collect();
    for decl in lattice.coercion_declarations() {
        // coercion type is Sub -> Sup; keep it if Sub was imported.
        let sub = decl.ty.uncurry().0[0].result_base().to_owned();
        if imported_names.contains(&sub.as_str()) {
            env.push(decl);
        }
    }

    env
}

fn extract_class(class: &Class, env: &mut TypeEnv) {
    let class_ty = Ty::base(class.name.clone());

    for ctor in &class.constructors {
        env.push(Declaration::new(
            constructor_name(&class.name),
            Ty::fun(ctor.params.clone(), class_ty.clone()),
            DeclKind::Imported,
        ));
    }

    for method in &class.methods {
        let (name, ty) = if method.is_static {
            (
                static_method_name(&class.name, &method.name),
                Ty::fun(method.params.clone(), method.ret.clone()),
            )
        } else {
            let mut params = vec![class_ty.clone()];
            params.extend(method.params.clone());
            (
                method_name(&class.name, &method.name),
                Ty::fun(params, method.ret.clone()),
            )
        };
        env.push(Declaration::new(name, ty, DeclKind::Imported));
    }

    for field in &class.fields {
        let (name, ty) = if field.is_static {
            (
                static_field_name(&class.name, &field.name),
                field.ty.clone(),
            )
        } else {
            (
                field_name(&class.name, &field.name),
                Ty::fun(vec![class_ty.clone()], field.ty.clone()),
            )
        };
        env.push(Declaration::new(name, ty, DeclKind::Imported));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Class, Constructor, Field, Method, Package};

    fn model() -> ApiModel {
        let mut m = ApiModel::new();
        m.add_package(
            Package::new("java.io")
                .with_class(
                    Class::new("FileInputStream")
                        .extends("InputStream")
                        .with_constructor(Constructor::new(vec![Ty::base("String")]))
                        .with_method(Method::new("available", vec![], Ty::base("Int"))),
                )
                .with_class(Class::new("InputStream")),
        );
        m.add_package(
            Package::new("java.lang").with_class(
                Class::new("System")
                    .with_field(Field::new_static("out", Ty::base("PrintStream")))
                    .with_method(Method::new_static(
                        "getenv",
                        vec![Ty::base("String")],
                        Ty::base("String"),
                    )),
            ),
        );
        m
    }

    #[test]
    fn locals_literals_and_members_get_their_kinds() {
        let env = extract(
            &model(),
            &ProgramPoint::new()
                .with_local("name", Ty::base("String"))
                .with_class_member("helper", Ty::base("Helper"))
                .with_package_member("shared", Ty::base("Shared"))
                .with_literal("\"x\"", Ty::base("String")),
        );
        assert_eq!(env.find("name").unwrap().kind, DeclKind::Local);
        assert_eq!(env.find("helper").unwrap().kind, DeclKind::Class);
        assert_eq!(env.find("shared").unwrap().kind, DeclKind::Package);
        assert_eq!(env.find("\"x\"").unwrap().kind, DeclKind::Literal);
    }

    #[test]
    fn imported_constructors_and_methods_are_encoded() {
        let env = extract(&model(), &ProgramPoint::new().with_import("java.io"));
        let ctor = env.find("new FileInputStream").expect("constructor");
        assert_eq!(ctor.kind, DeclKind::Imported);
        assert_eq!(
            ctor.ty,
            Ty::fun(vec![Ty::base("String")], Ty::base("FileInputStream"))
        );
        let method = env.find("FileInputStream#available").expect("method");
        assert_eq!(
            method.ty,
            Ty::fun(vec![Ty::base("FileInputStream")], Ty::base("Int"))
        );
    }

    #[test]
    fn static_members_have_no_receiver() {
        let env = extract(&model(), &ProgramPoint::new().with_import("java.lang"));
        let field = env.find("System.out@").expect("static field");
        assert_eq!(field.ty, Ty::base("PrintStream"));
        let method = env.find("System.getenv").expect("static method");
        assert_eq!(
            method.ty,
            Ty::fun(vec![Ty::base("String")], Ty::base("String"))
        );
    }

    #[test]
    fn coercions_follow_imported_subtype_edges() {
        let env = extract(&model(), &ProgramPoint::new().with_import("java.io"));
        let coercion = env
            .find(&insynth_core::coercion_name(
                "FileInputStream",
                "InputStream",
            ))
            .expect("coercion declaration");
        assert_eq!(coercion.kind, DeclKind::Coercion);
    }

    #[test]
    fn unimported_packages_contribute_nothing() {
        let env = extract(&model(), &ProgramPoint::new().with_import("java.io"));
        assert!(env.find("System.getenv").is_none());
    }

    #[test]
    fn unknown_import_is_ignored() {
        let env = extract(&model(), &ProgramPoint::new().with_import("does.not.exist"));
        assert!(env.is_empty());
    }
}
