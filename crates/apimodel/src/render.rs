//! Scala-style rendering of synthesized terms.
//!
//! The engine works on plain lambda terms whose head symbols use the encoding
//! of [`crate::scope`] (`new C`, `C#m`, `C#f@`, `C.m`, `C.f@`). This module
//! renders such terms the way the InSynth plugin displays them in the IDE:
//!
//! * `new C(arg, …)` for constructors (parentheses always present),
//! * `recv.m(arg, …)` for instance methods, `recv.f` for instance fields,
//! * `C.m(arg, …)` / `C.f` for static members,
//! * `x => body` / `(x, y) => body` for lambda abstractions,
//! * plain `name(arg, …)` for locals and other unencoded heads.

use insynth_core::Snippet;
use insynth_lambda::Term;

/// Renders a synthesized term in Scala-like surface syntax.
///
/// # Example
///
/// ```
/// use insynth_apimodel::render_term;
/// use insynth_lambda::Term;
///
/// let term = Term::app(
///     "new BufferedReader",
///     vec![Term::app("new FileReader", vec![Term::var("fileName")])],
/// );
/// assert_eq!(render_term(&term), "new BufferedReader(new FileReader(fileName))");
/// ```
pub fn render_term(term: &Term) -> String {
    let args: Vec<String> = term.args.iter().map(render_term).collect();
    let body = render_head(&term.head, &args);
    if term.params.is_empty() {
        body
    } else if term.params.len() == 1 {
        format!("{} => {}", term.params[0].name, body)
    } else {
        let names: Vec<&str> = term.params.iter().map(|p| p.name.as_str()).collect();
        format!("({}) => {}", names.join(", "), body)
    }
}

/// Renders a snippet (its coercion-erased term).
///
/// # Example
///
/// ```
/// use insynth_apimodel::{extract, javaapi, render_snippet, ProgramPoint};
/// use insynth_core::{Engine, Query, SynthesisConfig};
/// use insynth_lambda::Ty;
///
/// let model = javaapi::standard_model();
/// let point = ProgramPoint::new()
///     .with_local("fileName", Ty::base("String"))
///     .with_import("java.io");
/// let env = extract(&model, &point);
/// let session = Engine::new(SynthesisConfig::default()).prepare(&env);
/// let result = session.query(&Query::new(Ty::base("FileReader")).with_n(5));
/// assert!(result.snippets.iter().any(|s| render_snippet(s) == "new FileReader(fileName)"));
/// ```
pub fn render_snippet(snippet: &Snippet) -> String {
    render_term(&snippet.term)
}

fn render_head(head: &str, args: &[String]) -> String {
    // Constructor: `new C`.
    if let Some(class) = head.strip_prefix("new ") {
        return format!("new {class}({})", args.join(", "));
    }

    // Instance member: `C#m` or `C#f@`.
    if let Some((_, member)) = head.split_once('#') {
        if let Some((receiver, rest)) = args.split_first() {
            if let Some(field) = member.strip_suffix('@') {
                return format!("{receiver}.{field}");
            }
            return format!("{receiver}.{member}({})", rest.join(", "));
        }
    }

    // Static member: `C.m` or `C.f@`.
    if head.contains('.') && !head.starts_with('"') {
        if let Some(stripped) = head.strip_suffix('@') {
            return stripped.to_owned();
        }
        return format!("{head}({})", args.join(", "));
    }

    // Plain local / literal / binder.
    if args.is_empty() {
        head.to_owned()
    } else {
        format!("{head}({})", args.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insynth_lambda::{Param, Ty};

    #[test]
    fn constructors_always_get_parentheses() {
        assert_eq!(render_term(&Term::var("new JTree")), "new JTree()");
        assert_eq!(
            render_term(&Term::app("new FileReader", vec![Term::var("f")])),
            "new FileReader(f)"
        );
    }

    #[test]
    fn instance_methods_render_with_receiver() {
        let term = Term::app("Container#getLayout", vec![Term::var("panel")]);
        assert_eq!(render_term(&term), "panel.getLayout()");
        let term2 = Term::app(
            "TreeWrapper#filter",
            vec![Term::var("wrapper"), Term::var("pred")],
        );
        assert_eq!(render_term(&term2), "wrapper.filter(pred)");
    }

    #[test]
    fn instance_fields_render_without_parentheses() {
        let term = Term::app("Traverser#hits@", vec![Term::var("ft")]);
        assert_eq!(render_term(&term), "ft.hits");
    }

    #[test]
    fn static_members_render_with_class_prefix() {
        assert_eq!(
            render_term(&Term::app("System.getenv", vec![Term::var("key")])),
            "System.getenv(key)"
        );
        assert_eq!(render_term(&Term::var("System.out@")), "System.out");
    }

    #[test]
    fn lambdas_render_in_scala_arrow_syntax() {
        let term = Term::app(
            "new FilterTypeTreeTraverser",
            vec![Term::lambda(
                vec![Param::new("var1", Ty::base("Tree"))],
                Term::app("p", vec![Term::var("var1")]),
            )],
        );
        assert_eq!(
            render_term(&term),
            "new FilterTypeTreeTraverser(var1 => p(var1))"
        );
    }

    #[test]
    fn multi_parameter_lambdas_use_parenthesized_binders() {
        let term = Term::lambda(
            vec![
                Param::new("a", Ty::base("A")),
                Param::new("b", Ty::base("B")),
            ],
            Term::app("combine", vec![Term::var("a"), Term::var("b")]),
        );
        assert_eq!(render_term(&term), "(a, b) => combine(a, b)");
    }

    #[test]
    fn plain_heads_render_unchanged() {
        assert_eq!(render_term(&Term::var("body")), "body");
        assert_eq!(
            render_term(&Term::app("helper", vec![Term::var("x")])),
            "helper(x)"
        );
        // String literals containing dots must not be mistaken for statics.
        assert_eq!(render_term(&Term::var("\"file.txt\"")), "\"file.txt\"");
    }

    #[test]
    fn nested_mixed_rendering() {
        // new SequenceInputStream(new FileInputStream(body), new FileInputStream(sig))
        let fis = |v: &str| Term::app("new FileInputStream", vec![Term::var(v)]);
        let term = Term::app("new SequenceInputStream", vec![fis("body"), fis("sig")]);
        assert_eq!(
            render_term(&term),
            "new SequenceInputStream(new FileInputStream(body), new FileInputStream(sig))"
        );
    }
}
