//! A forward-chaining saturation prover (ground inverse-method style).
//!
//! This is the "Imogen-like" baseline of the Table 2 comparison. Imogen is a
//! polarized inverse-method prover: it works *forward* from axioms, deriving
//! new sequents until the goal sequent is subsumed. Our baseline keeps the
//! forward character but works on ground facts of the form "atom `a` is
//! provable under assumption set Δ":
//!
//! * every hypothesis is decomposed into clauses `A1, …, An ⇒ head`,
//! * a clause fires in a context once all of its antecedents are provable
//!   there; implicational antecedents `C ⊃ D` are provable in Δ iff `D` is
//!   provable in Δ ∪ {C} (which creates a new, larger context),
//! * saturation runs across all contexts until no new fact appears.
//!
//! The decomposition mirrors how inverse-method provers specialize their rules
//! to the subformulas of the query, and the context-indexed facts play the
//! role of derived sequents.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use crate::{Formula, ProverLimits};

/// Attempts to prove `hypotheses ⊢ goal` by forward saturation.
///
/// Returns `Some(true)` / `Some(false)` on a verdict, `None` on resource
/// exhaustion.
///
/// # Example
///
/// ```
/// use insynth_provers::{forward, Formula, ProverLimits};
///
/// let hyps = vec![
///     Formula::atom("P"),
///     Formula::imp(Formula::atom("P"), Formula::atom("Q")),
/// ];
/// assert_eq!(forward::prove(&hyps, &Formula::atom("Q"), &ProverLimits::default()), Some(true));
/// ```
pub fn prove(hypotheses: &[Formula], goal: &Formula, limits: &ProverLimits) -> Option<bool> {
    let mut engine = Saturator::new(limits);

    // Right rules applied upfront: strip the goal down to atomic sub-goals,
    // collecting the antecedents as extra hypotheses.
    let mut antecedents: Vec<Formula> = Vec::new();
    let mut goals: Vec<(Vec<Formula>, String)> = Vec::new();
    collect_goals(goal, &mut antecedents, &mut goals);

    for (extra, atom) in goals {
        let mut ctx = hypotheses.to_vec();
        ctx.extend(extra);
        let ctx_id = engine.intern_context(ctx);
        match engine.provable_atom(ctx_id, &atom) {
            None => return None,
            Some(false) => return Some(false),
            Some(true) => {}
        }
    }
    Some(true)
}

/// Splits a goal into atomic sub-goals, accumulating implication antecedents.
fn collect_goals(goal: &Formula, extra: &mut Vec<Formula>, out: &mut Vec<(Vec<Formula>, String)>) {
    match goal {
        Formula::Atom(p) => out.push((extra.clone(), p.clone())),
        Formula::And(a, b) => {
            collect_goals(a, extra, out);
            collect_goals(b, extra, out);
        }
        Formula::Imp(a, b) => {
            extra.push((**a).clone());
            collect_goals(b, extra, out);
            extra.pop();
        }
    }
}

/// A clause `antecedents ⇒ head` obtained by decomposing a hypothesis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Clause {
    antecedents: Vec<Formula>,
    head: String,
}

/// Decomposes a hypothesis into clauses: conjunctions split, nested
/// implications accumulate antecedents, conjunction heads distribute.
fn decompose(formula: &Formula, antecedents: &mut Vec<Formula>, out: &mut Vec<Clause>) {
    match formula {
        Formula::Atom(p) => out.push(Clause {
            antecedents: antecedents.clone(),
            head: p.clone(),
        }),
        Formula::And(a, b) => {
            decompose(a, antecedents, out);
            decompose(b, antecedents, out);
        }
        Formula::Imp(a, b) => {
            antecedents.push((**a).clone());
            decompose(b, antecedents, out);
            antecedents.pop();
        }
    }
}

struct Saturator<'a> {
    limits: &'a ProverLimits,
    started: Instant,
    steps: usize,
    contexts: Vec<Vec<Formula>>,
    context_ids: HashMap<Vec<Formula>, usize>,
    clauses: Vec<Vec<Clause>>,
    /// Facts `(context, atom)` known to be provable.
    facts: HashSet<(usize, String)>,
    exhausted: bool,
}

impl<'a> Saturator<'a> {
    fn new(limits: &'a ProverLimits) -> Self {
        Saturator {
            limits,
            started: Instant::now(),
            steps: 0,
            contexts: Vec::new(),
            context_ids: HashMap::new(),
            clauses: Vec::new(),
            facts: HashSet::new(),
            exhausted: false,
        }
    }

    fn tick(&mut self) -> bool {
        self.steps += 1;
        if self.steps >= self.limits.max_steps {
            self.exhausted = true;
            return false;
        }
        if self.steps.is_multiple_of(2048) && self.started.elapsed() > self.limits.time_limit {
            self.exhausted = true;
            return false;
        }
        true
    }

    fn intern_context(&mut self, mut ctx: Vec<Formula>) -> usize {
        ctx.sort();
        ctx.dedup();
        if let Some(&id) = self.context_ids.get(&ctx) {
            return id;
        }
        let id = self.contexts.len();
        let mut clauses = Vec::new();
        for f in &ctx {
            let mut ants = Vec::new();
            decompose(f, &mut ants, &mut clauses);
        }
        self.contexts.push(ctx.clone());
        self.context_ids.insert(ctx, id);
        self.clauses.push(clauses);
        id
    }

    /// Whether `atom` is provable in context `ctx_id`, saturating to a global
    /// fixpoint first.
    fn provable_atom(&mut self, ctx_id: usize, atom: &str) -> Option<bool> {
        self.saturate()?;
        if self.exhausted {
            return None;
        }
        Some(self.facts.contains(&(ctx_id, atom.to_owned())))
    }

    /// Runs forward saturation across every known context; contexts created
    /// while evaluating implicational antecedents join the next round.
    fn saturate(&mut self) -> Option<()> {
        loop {
            let mut changed = false;
            let context_count = self.contexts.len();
            for ctx_id in 0..context_count {
                let clauses = self.clauses[ctx_id].clone();
                for clause in clauses {
                    if !self.tick() {
                        return None;
                    }
                    if self.facts.contains(&(ctx_id, clause.head.clone())) {
                        continue;
                    }
                    let mut all = true;
                    for ant in &clause.antecedents {
                        match self.antecedent_holds(ctx_id, ant) {
                            Some(true) => {}
                            Some(false) => {
                                all = false;
                                break;
                            }
                            None => return None,
                        }
                    }
                    if all && self.facts.insert((ctx_id, clause.head.clone())) {
                        changed = true;
                    }
                }
            }
            if self.contexts.len() > context_count {
                // New contexts were created; they need their own facts.
                changed = true;
            }
            if !changed {
                return Some(());
            }
        }
    }

    /// Whether an antecedent formula currently holds in a context. For
    /// implications this may create (and defer to) an extended context — the
    /// answer then becomes available in a later saturation round.
    fn antecedent_holds(&mut self, ctx_id: usize, ant: &Formula) -> Option<bool> {
        if !self.tick() {
            return None;
        }
        match ant {
            Formula::Atom(p) => Some(self.facts.contains(&(ctx_id, p.clone()))),
            Formula::And(a, b) => {
                let left = self.antecedent_holds(ctx_id, a)?;
                if !left {
                    return Some(false);
                }
                self.antecedent_holds(ctx_id, b)
            }
            Formula::Imp(a, b) => {
                let mut extended = self.contexts[ctx_id].clone();
                extended.push((**a).clone());
                let extended_id = self.intern_context(extended);
                self.antecedent_in_context(extended_id, b)
            }
        }
    }

    fn antecedent_in_context(&mut self, ctx_id: usize, f: &Formula) -> Option<bool> {
        match f {
            Formula::Atom(p) => Some(self.facts.contains(&(ctx_id, p.clone()))),
            Formula::And(a, b) => {
                let left = self.antecedent_in_context(ctx_id, a)?;
                if !left {
                    return Some(false);
                }
                self.antecedent_in_context(ctx_id, b)
            }
            Formula::Imp(a, b) => {
                let mut extended = self.contexts[ctx_id].clone();
                extended.push((**a).clone());
                let extended_id = self.intern_context(extended);
                self.antecedent_in_context(extended_id, b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(name: &str) -> Formula {
        Formula::atom(name)
    }

    fn limits() -> ProverLimits {
        ProverLimits::default()
    }

    #[test]
    fn facts_and_modus_ponens() {
        assert_eq!(prove(&[a("P")], &a("P"), &limits()), Some(true));
        let hyps = vec![a("P"), Formula::imp(a("P"), a("Q"))];
        assert_eq!(prove(&hyps, &a("Q"), &limits()), Some(true));
        assert_eq!(prove(&hyps, &a("R"), &limits()), Some(false));
    }

    #[test]
    fn implication_goals_assume_their_antecedent() {
        assert_eq!(
            prove(&[], &Formula::imp(a("P"), a("P")), &limits()),
            Some(true)
        );
        let goal = Formula::imp(a("P"), Formula::imp(a("Q"), a("P")));
        assert_eq!(prove(&[], &goal, &limits()), Some(true));
    }

    #[test]
    fn conjunction_goals_need_both_parts() {
        assert_eq!(
            prove(&[a("P")], &Formula::and(a("P"), a("Q")), &limits()),
            Some(false)
        );
        assert_eq!(
            prove(&[a("P"), a("Q")], &Formula::and(a("P"), a("Q")), &limits()),
            Some(true)
        );
    }

    #[test]
    fn conjunctive_hypotheses_split() {
        assert_eq!(
            prove(&[Formula::and(a("P"), a("Q"))], &a("Q"), &limits()),
            Some(true)
        );
    }

    #[test]
    fn higher_order_antecedents_need_extended_contexts() {
        // ((P -> Q) -> R) with Q provable unconditionally: R holds because
        // P -> Q is provable (Q holds even with P assumed).
        let hyps = vec![Formula::imp(Formula::imp(a("P"), a("Q")), a("R")), a("Q")];
        assert_eq!(prove(&hyps, &a("R"), &limits()), Some(true));
        // Without Q, R must not be derivable.
        let hyps2 = vec![Formula::imp(Formula::imp(a("P"), a("Q")), a("R"))];
        assert_eq!(prove(&hyps2, &a("R"), &limits()), Some(false));
    }

    #[test]
    fn peirce_law_is_not_provable() {
        let peirce = Formula::imp(Formula::imp(Formula::imp(a("P"), a("Q")), a("P")), a("P"));
        assert_eq!(prove(&[], &peirce, &limits()), Some(false));
    }

    #[test]
    fn chained_constructors_like_type_inhabitation() {
        // String, String -> FIS, FIS -> BIS ⊢ BIS (the Table 2 shape).
        let hyps = vec![
            a("String"),
            Formula::imp(a("String"), a("FileInputStream")),
            Formula::imp(a("FileInputStream"), a("BufferedInputStream")),
        ];
        assert_eq!(
            prove(&hyps, &a("BufferedInputStream"), &limits()),
            Some(true)
        );
    }

    #[test]
    fn step_limit_yields_none() {
        let hyps = vec![a("P"), Formula::imp(a("P"), a("Q"))];
        let tight = ProverLimits {
            max_steps: 1,
            ..ProverLimits::default()
        };
        assert_eq!(prove(&hyps, &a("Q"), &tight), None);
    }
}
