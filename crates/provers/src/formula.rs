//! Propositional formulas and the type-inhabitation-to-provability encoding.

use std::fmt;

use insynth_core::TypeEnv;
use insynth_lambda::Ty;

/// An intuitionistic propositional formula over the →/∧ fragment.
///
/// Type inhabitation in the simply typed lambda calculus corresponds, via the
/// Curry–Howard isomorphism, to provability of the corresponding implicational
/// formula in intuitionistic logic; conjunction appears when a curried
/// function type is read as a product-argument type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Formula {
    /// An atomic proposition (a base type name).
    Atom(String),
    /// Implication `A ⊃ B`.
    Imp(Box<Formula>, Box<Formula>),
    /// Conjunction `A ∧ B`.
    And(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// An atomic proposition.
    pub fn atom(name: impl Into<String>) -> Formula {
        Formula::Atom(name.into())
    }

    /// The implication `a ⊃ b`.
    pub fn imp(a: Formula, b: Formula) -> Formula {
        Formula::Imp(Box::new(a), Box::new(b))
    }

    /// The conjunction `a ∧ b`.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// Returns `true` for atoms.
    pub fn is_atom(&self) -> bool {
        matches!(self, Formula::Atom(_))
    }

    /// Structural size (number of connectives plus atoms).
    pub fn size(&self) -> usize {
        match self {
            Formula::Atom(_) => 1,
            Formula::Imp(a, b) | Formula::And(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(name) => write!(f, "{name}"),
            Formula::Imp(a, b) => {
                if a.is_atom() {
                    write!(f, "{a} -> {b}")
                } else {
                    write!(f, "({a}) -> {b}")
                }
            }
            Formula::And(a, b) => write!(f, "({a} & {b})"),
        }
    }
}

/// Converts a simple type to its Curry–Howard formula: base types become
/// atoms, arrows become implications.
///
/// # Example
///
/// ```
/// use insynth_lambda::Ty;
/// use insynth_provers::ty_to_formula;
///
/// let ty = Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C"));
/// assert_eq!(ty_to_formula(&ty).to_string(), "A -> B -> C");
/// ```
pub fn ty_to_formula(ty: &Ty) -> Formula {
    match ty {
        Ty::Base(name) => Formula::atom(name.clone()),
        Ty::Arrow(a, b) => Formula::imp(ty_to_formula(a), ty_to_formula(b)),
    }
}

/// Builds the inhabitation query for `goal` under `env`: the hypotheses are
/// the formulas of every declaration type, the conclusion is the formula of
/// the goal type. The query is provable in intuitionistic logic iff the goal
/// type is inhabited.
pub fn inhabitation_query(env: &TypeEnv, goal: &Ty) -> (Vec<Formula>, Formula) {
    let hyps = env.iter().map(|d| ty_to_formula(&d.ty)).collect();
    (hyps, ty_to_formula(goal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insynth_core::{DeclKind, Declaration};

    #[test]
    fn base_types_become_atoms() {
        assert_eq!(ty_to_formula(&Ty::base("Int")), Formula::atom("Int"));
    }

    #[test]
    fn arrows_become_implications_right_associatively() {
        let f = ty_to_formula(&Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C")));
        assert_eq!(
            f,
            Formula::imp(
                Formula::atom("A"),
                Formula::imp(Formula::atom("B"), Formula::atom("C"))
            )
        );
    }

    #[test]
    fn higher_order_arguments_nest_on_the_left() {
        let f = ty_to_formula(&Ty::fun(
            vec![Ty::fun(vec![Ty::base("A")], Ty::base("B"))],
            Ty::base("C"),
        ));
        assert_eq!(f.to_string(), "(A -> B) -> C");
    }

    #[test]
    fn query_collects_one_hypothesis_per_declaration() {
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "f",
                Ty::fun(vec![Ty::base("A")], Ty::base("B")),
                DeclKind::Local,
            ),
        ]
        .into_iter()
        .collect();
        let (hyps, goal) = inhabitation_query(&env, &Ty::base("B"));
        assert_eq!(hyps.len(), 2);
        assert_eq!(goal, Formula::atom("B"));
    }

    #[test]
    fn size_and_display() {
        let f = Formula::and(
            Formula::atom("A"),
            Formula::imp(Formula::atom("B"), Formula::atom("C")),
        );
        assert_eq!(f.size(), 5);
        assert_eq!(f.to_string(), "(A & B -> C)");
    }
}
