//! Baseline intuitionistic propositional provers.
//!
//! Table 2 compares InSynth's own "prover" (the exploration + pattern
//! generation phases, which decide type inhabitation) against two
//! state-of-the-art intuitionistic provers: Imogen (a forward, inverse-method
//! prover) and fCube (a backward tableau/sequent prover). Neither is available
//! as a Rust library, so this crate implements two from-scratch baselines with
//! the same proof-theoretic flavour:
//!
//! * [`g4ip`] — a backward, contraction-free sequent-calculus prover in the
//!   style of Dyckhoff's G4ip / LJT (our "fCube-like" baseline),
//! * [`forward`] — a forward-chaining saturation prover in the spirit of the
//!   ground inverse method (our "Imogen-like" baseline).
//!
//! Both are complete for the →/∧ fragment of intuitionistic propositional
//! logic, which is exactly the fragment type-inhabitation queries need
//! (a declaration `x : τ1 → … → τn → v` is the hypothesis
//! `τ1 ⊃ … ⊃ τn ⊃ v`). Queries are built with [`inhabitation_query`].
//!
//! # Example
//!
//! ```
//! use insynth_core::{Declaration, DeclKind, TypeEnv};
//! use insynth_lambda::Ty;
//! use insynth_provers::{forward, g4ip, inhabitation_query, ProverLimits};
//!
//! let env: TypeEnv = vec![
//!     Declaration::simple("a", Ty::base("A"), DeclKind::Local),
//!     Declaration::simple("f", Ty::fun(vec![Ty::base("A")], Ty::base("B")), DeclKind::Local),
//! ]
//! .into_iter()
//! .collect();
//! let (hyps, goal) = inhabitation_query(&env, &Ty::base("B"));
//! assert_eq!(g4ip::prove(&hyps, &goal, &ProverLimits::default()), Some(true));
//! assert_eq!(forward::prove(&hyps, &goal, &ProverLimits::default()), Some(true));
//! ```

pub mod formula;
pub mod forward;
pub mod g4ip;

pub use formula::{inhabitation_query, ty_to_formula, Formula};

use std::time::Duration;

/// Resource limits for a prover call.
///
/// Provers return `None` when a limit is hit before a verdict is reached
/// (mirroring the timeouts the paper applies to Imogen and fCube).
#[derive(Debug, Clone)]
pub struct ProverLimits {
    /// Wall-clock limit.
    pub time_limit: Duration,
    /// Maximum number of rule applications / derived sequents.
    pub max_steps: usize,
}

impl Default for ProverLimits {
    fn default() -> Self {
        ProverLimits {
            time_limit: Duration::from_secs(10),
            max_steps: 5_000_000,
        }
    }
}
