//! A contraction-free backward sequent prover (Dyckhoff's G4ip / LJT style).
//!
//! This is the "fCube-like" baseline of the Table 2 comparison: a complete
//! backward prover for the →/∧ fragment of intuitionistic propositional
//! logic. The left-implication rule is split by the shape of the antecedent,
//! which removes the need for contraction and guarantees termination:
//!
//! * `p ⊃ B` (atomic antecedent) fires only when `p` is already in the
//!   context and is then replaced by `B`;
//! * `(C ∧ D) ⊃ B` is replaced by `C ⊃ (D ⊃ B)`;
//! * `(C ⊃ D) ⊃ B` is the only non-invertible case: prove `C ⊃ D` with the
//!   hypothesis `D ⊃ B`, then continue with `B`.

use std::time::Instant;

use crate::{Formula, ProverLimits};

/// Attempts to prove `hypotheses ⊢ goal`.
///
/// Returns `Some(true)` / `Some(false)` when a verdict was reached and `None`
/// when a resource limit was hit first.
///
/// # Example
///
/// ```
/// use insynth_provers::{g4ip, Formula, ProverLimits};
///
/// // Peirce's law is classically valid but not intuitionistically provable.
/// let peirce = Formula::imp(
///     Formula::imp(
///         Formula::imp(Formula::atom("P"), Formula::atom("Q")),
///         Formula::atom("P"),
///     ),
///     Formula::atom("P"),
/// );
/// assert_eq!(g4ip::prove(&[], &peirce, &ProverLimits::default()), Some(false));
/// ```
pub fn prove(hypotheses: &[Formula], goal: &Formula, limits: &ProverLimits) -> Option<bool> {
    let mut state = State {
        started: Instant::now(),
        steps: 0,
        limits,
    };
    let mut ctx: Vec<Formula> = hypotheses.to_vec();
    prove_seq(&mut ctx, goal, &mut state)
}

struct State<'a> {
    started: Instant,
    steps: usize,
    limits: &'a ProverLimits,
}

impl State<'_> {
    fn tick(&mut self) -> bool {
        self.steps += 1;
        if self.steps >= self.limits.max_steps {
            return false;
        }
        if self.steps.is_multiple_of(1024) && self.started.elapsed() > self.limits.time_limit {
            return false;
        }
        true
    }
}

fn prove_seq(ctx: &mut Vec<Formula>, goal: &Formula, state: &mut State<'_>) -> Option<bool> {
    if !state.tick() {
        return None;
    }
    match goal {
        Formula::And(a, b) => match prove_seq(ctx, a, state)? {
            true => prove_seq(ctx, b, state),
            false => Some(false),
        },
        Formula::Imp(a, b) => {
            ctx.push((**a).clone());
            let result = prove_seq(ctx, b, state);
            ctx.pop();
            result
        }
        Formula::Atom(p) => prove_atomic(ctx.clone(), p, state),
    }
}

fn prove_atomic(mut ctx: Vec<Formula>, p: &str, state: &mut State<'_>) -> Option<bool> {
    // Saturate the invertible left rules.
    loop {
        if !state.tick() {
            return None;
        }
        if ctx.iter().any(|f| matches!(f, Formula::Atom(q) if q == p)) {
            return Some(true);
        }

        // L∧: replace A ∧ B by A, B.
        if let Some(idx) = ctx.iter().position(|f| matches!(f, Formula::And(..))) {
            let Formula::And(a, b) = ctx.swap_remove(idx) else {
                unreachable!()
            };
            ctx.push(*a);
            ctx.push(*b);
            continue;
        }

        // L⊃ with atomic antecedent: q ⊃ B fires when q is in the context.
        let atomic_imp = ctx.iter().position(|f| {
            matches!(f, Formula::Imp(a, _) if matches!(a.as_ref(), Formula::Atom(q) if ctx.iter().any(|g| matches!(g, Formula::Atom(r) if r == q))))
        });
        if let Some(idx) = atomic_imp {
            let Formula::Imp(_, b) = ctx.swap_remove(idx) else {
                unreachable!()
            };
            ctx.push(*b);
            continue;
        }

        // L⊃ with conjunctive antecedent: (C ∧ D) ⊃ B becomes C ⊃ (D ⊃ B).
        let conj_imp = ctx.iter().position(
            |f| matches!(f, Formula::Imp(a, _) if matches!(a.as_ref(), Formula::And(..))),
        );
        if let Some(idx) = conj_imp {
            let Formula::Imp(a, b) = ctx.swap_remove(idx) else {
                unreachable!()
            };
            let Formula::And(c, d) = *a else {
                unreachable!()
            };
            ctx.push(Formula::imp(*c, Formula::imp(*d, *b)));
            continue;
        }

        break;
    }

    // Non-invertible case: try every (C ⊃ D) ⊃ B in the context.
    let candidates: Vec<usize> = ctx
        .iter()
        .enumerate()
        .filter_map(|(i, f)| {
            matches!(f, Formula::Imp(a, _) if matches!(a.as_ref(), Formula::Imp(..))).then_some(i)
        })
        .collect();

    for idx in candidates {
        let Formula::Imp(a, b) = ctx[idx].clone() else {
            unreachable!()
        };
        let Formula::Imp(c, d) = (*a).clone() else {
            unreachable!()
        };

        let mut without: Vec<Formula> = ctx.clone();
        without.swap_remove(idx);

        // First premise: Γ, D ⊃ B ⊢ C ⊃ D.
        let mut first_ctx = without.clone();
        first_ctx.push(Formula::imp((*d).clone(), (*b).clone()));
        let first = prove_seq(
            &mut first_ctx,
            &Formula::imp((*c).clone(), (*d).clone()),
            state,
        )?;
        if !first {
            continue;
        }

        // Second premise: Γ, B ⊢ p.
        let mut second_ctx = without;
        second_ctx.push((*b).clone());
        if prove_atomic(second_ctx, p, state)? {
            return Some(true);
        }
    }

    Some(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(name: &str) -> Formula {
        Formula::atom(name)
    }

    fn limits() -> ProverLimits {
        ProverLimits::default()
    }

    #[test]
    fn axiom_and_missing_atom() {
        assert_eq!(prove(&[a("P")], &a("P"), &limits()), Some(true));
        assert_eq!(prove(&[a("Q")], &a("P"), &limits()), Some(false));
        assert_eq!(prove(&[], &a("P"), &limits()), Some(false));
    }

    #[test]
    fn identity_and_weakening() {
        // ⊢ P -> P and ⊢ P -> Q -> P
        assert_eq!(
            prove(&[], &Formula::imp(a("P"), a("P")), &limits()),
            Some(true)
        );
        assert_eq!(
            prove(
                &[],
                &Formula::imp(a("P"), Formula::imp(a("Q"), a("P"))),
                &limits()
            ),
            Some(true)
        );
    }

    #[test]
    fn modus_ponens_chain() {
        // P, P -> Q, Q -> R ⊢ R
        let hyps = vec![
            a("P"),
            Formula::imp(a("P"), a("Q")),
            Formula::imp(a("Q"), a("R")),
        ];
        assert_eq!(prove(&hyps, &a("R"), &limits()), Some(true));
        assert_eq!(prove(&hyps, &a("S"), &limits()), Some(false));
    }

    #[test]
    fn conjunction_introduction_and_elimination() {
        // P, Q ⊢ P & Q and P & Q ⊢ P
        assert_eq!(
            prove(&[a("P"), a("Q")], &Formula::and(a("P"), a("Q")), &limits()),
            Some(true)
        );
        assert_eq!(
            prove(&[Formula::and(a("P"), a("Q"))], &a("P"), &limits()),
            Some(true)
        );
        assert_eq!(
            prove(&[Formula::and(a("P"), a("Q"))], &a("R"), &limits()),
            Some(false)
        );
    }

    #[test]
    fn conjunctive_antecedent_implication() {
        // (P & Q) -> R, P, Q ⊢ R
        let hyps = vec![
            Formula::imp(Formula::and(a("P"), a("Q")), a("R")),
            a("P"),
            a("Q"),
        ];
        assert_eq!(prove(&hyps, &a("R"), &limits()), Some(true));
    }

    #[test]
    fn nested_implication_antecedent() {
        // ((P -> Q) -> R), (P -> Q) ⊢ R  — needs the non-invertible rule.
        let hyps = vec![
            Formula::imp(Formula::imp(a("P"), a("Q")), a("R")),
            Formula::imp(a("P"), a("Q")),
        ];
        assert_eq!(prove(&hyps, &a("R"), &limits()), Some(true));
    }

    #[test]
    fn peirce_law_is_not_provable() {
        let peirce = Formula::imp(Formula::imp(Formula::imp(a("P"), a("Q")), a("P")), a("P"));
        assert_eq!(prove(&[], &peirce, &limits()), Some(false));
    }

    #[test]
    fn double_negation_style_goal() {
        // ⊢ ((P -> Q) -> Q) is not provable without P, but
        // P ⊢ (P -> Q) -> Q is.
        let goal = Formula::imp(Formula::imp(a("P"), a("Q")), a("Q"));
        assert_eq!(prove(&[], &goal, &limits()), Some(false));
        assert_eq!(prove(&[a("P")], &goal, &limits()), Some(true));
    }

    #[test]
    fn step_limit_yields_none() {
        let hyps = vec![a("P"), Formula::imp(a("P"), a("Q"))];
        let tight = ProverLimits {
            max_steps: 1,
            ..ProverLimits::default()
        };
        assert_eq!(prove(&hyps, &a("Q"), &tight), None);
    }
}
