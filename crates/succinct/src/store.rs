//! Interning store for succinct types and environments.

use std::collections::HashMap;

use insynth_intern::{Id, IdVec, Interner, Symbol};
use insynth_lambda::Ty;

use crate::env::{EnvData, EnvId};
use crate::view::TypeStore;

/// The structural data of a succinct type `{t1, …, tn} → v`.
///
/// The argument set is kept sorted and de-duplicated, which is exactly what
/// makes the representation "succinct": argument order and multiplicity are
/// quotiented away (paper Definition 3.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SuccinctTy {
    /// Sorted, de-duplicated argument types.
    pub args: Vec<SuccinctTyId>,
    /// Name of the base return type `v`.
    pub ret: Symbol,
}

impl SuccinctTy {
    /// Returns `true` if this succinct type has no arguments, i.e. it is (the
    /// image of) a base type `∅ → v`.
    pub fn is_base(&self) -> bool {
        self.args.is_empty()
    }
}

/// Interned handle to a [`SuccinctTy`].
pub type SuccinctTyId = Id<SuccinctTy>;

/// Arena interning succinct types, base-type names and succinct environments.
///
/// All ids handed out by one store are only meaningful for that store.
///
/// # Example
///
/// ```
/// use insynth_lambda::Ty;
/// use insynth_succinct::SuccinctStore;
///
/// let mut store = SuccinctStore::new();
/// let int = store.sigma(&Ty::base("Int"));
/// assert!(store.ty(int).is_base());
/// assert_eq!(store.display_ty(int), "Int");
/// ```
#[derive(Debug, Default, Clone)]
pub struct SuccinctStore {
    base_names: Interner,
    tys: IdVec<SuccinctTy>,
    ty_map: HashMap<SuccinctTy, SuccinctTyId>,
    envs: IdVec<EnvData>,
    env_map: HashMap<Vec<SuccinctTyId>, EnvId>,
}

impl SuccinctStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a base-type name.
    pub fn base_symbol(&mut self, name: &str) -> Symbol {
        self.base_names.intern(name)
    }

    /// Resolves a base-type symbol back to its name.
    pub fn base_name(&self, sym: Symbol) -> &str {
        self.base_names.resolve(sym)
    }

    /// Number of distinct succinct types interned so far.
    pub fn ty_count(&self) -> usize {
        self.tys.len()
    }

    /// Number of distinct environments interned so far.
    pub fn env_count(&self) -> usize {
        self.envs.len()
    }

    /// Interns the succinct type `{args} → ret`, sorting and de-duplicating
    /// the argument set.
    pub fn mk_ty(&mut self, mut args: Vec<SuccinctTyId>, ret: Symbol) -> SuccinctTyId {
        args.sort_unstable();
        args.dedup();
        let data = SuccinctTy { args, ret };
        if let Some(&id) = self.ty_map.get(&data) {
            return id;
        }
        let id = self.tys.push(data.clone());
        self.ty_map.insert(data, id);
        id
    }

    /// Interns the base succinct type `∅ → name`.
    ///
    /// Delegates to the [`TypeStore`] default — the calculus logic lives in
    /// one place and is shared with [`crate::ScratchStore`].
    pub fn mk_base(&mut self, name: &str) -> SuccinctTyId {
        TypeStore::mk_base(self, name)
    }

    /// The σ conversion from simple types to succinct types (§3.2); see
    /// [`TypeStore::sigma`] for the single shared implementation.
    pub fn sigma(&mut self, ty: &Ty) -> SuccinctTyId {
        TypeStore::sigma(self, ty)
    }

    /// Looks at the structural data of a succinct type.
    pub fn ty(&self, id: SuccinctTyId) -> &SuccinctTy {
        &self.tys[id]
    }

    /// The argument set `A(t)` of a succinct type.
    pub fn args_of(&self, id: SuccinctTyId) -> &[SuccinctTyId] {
        &self.tys[id].args
    }

    /// The return base type `R(t)` of a succinct type.
    pub fn ret_of(&self, id: SuccinctTyId) -> Symbol {
        self.tys[id].ret
    }

    /// Renders a succinct type, e.g. `{Int, String} -> File`.
    pub fn display_ty(&self, id: SuccinctTyId) -> String {
        TypeStore::display_ty(self, id)
    }

    /// Interns an environment (a finite set of succinct types).
    pub fn mk_env(&mut self, types: impl IntoIterator<Item = SuccinctTyId>) -> EnvId {
        let mut sorted: Vec<SuccinctTyId> = types.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(&id) = self.env_map.get(&sorted) {
            return id;
        }
        let id = self.envs.push(EnvData::new(sorted.clone()));
        self.env_map.insert(sorted, id);
        id
    }

    /// The empty environment.
    pub fn empty_env(&mut self) -> EnvId {
        TypeStore::empty_env(self)
    }

    /// Converts a whole simple-type environment (the images `σ(τi)` of every
    /// declaration type) into an interned succinct environment.
    pub fn sigma_env<'a>(&mut self, tys: impl IntoIterator<Item = &'a Ty>) -> EnvId {
        TypeStore::sigma_env(self, tys)
    }

    /// The member types of an environment, sorted.
    pub fn env_types(&self, env: EnvId) -> &[SuccinctTyId] {
        self.envs[env].types()
    }

    /// Returns `true` if `ty` is a member of `env`.
    pub fn env_contains(&self, env: EnvId, ty: SuccinctTyId) -> bool {
        self.envs[env].contains(ty)
    }

    /// Number of member types of an environment.
    pub fn env_len(&self, env: EnvId) -> usize {
        self.envs[env].len()
    }

    /// Interns `env ∪ extra`.
    pub fn env_union(&mut self, env: EnvId, extra: &[SuccinctTyId]) -> EnvId {
        TypeStore::env_union(self, env, extra)
    }

    /// Returns `true` if every member of `small` is a member of `big`.
    pub fn env_subset(&self, small: EnvId, big: EnvId) -> bool {
        TypeStore::env_subset(self, small, big)
    }

    /// Renders an environment, e.g. `{Int, {Int} -> String}`.
    pub fn display_env(&self, env: EnvId) -> String {
        TypeStore::display_env(self, env)
    }

    /// Number of distinct base-type names interned so far.
    pub fn symbol_count(&self) -> usize {
        self.base_names.len()
    }

    /// Looks up an already-interned base-type name without interning it.
    pub fn lookup_symbol(&self, name: &str) -> Option<Symbol> {
        self.base_names.get(name)
    }

    /// Looks up an already-interned succinct type without interning it. The
    /// argument set must already be sorted and de-duplicated (as stored).
    pub fn lookup_ty(&self, data: &SuccinctTy) -> Option<SuccinctTyId> {
        self.ty_map.get(data).copied()
    }

    /// Looks up an already-interned environment without interning it. The
    /// member list must already be sorted and de-duplicated (as stored).
    pub fn lookup_env(&self, types: &[SuccinctTyId]) -> Option<EnvId> {
        self.env_map.get(types).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_of_base_type_is_nullary() {
        let mut s = SuccinctStore::new();
        let t = s.sigma(&Ty::base("Int"));
        assert!(s.ty(t).is_base());
        assert_eq!(s.base_name(s.ret_of(t)), "Int");
    }

    #[test]
    fn sigma_collapses_argument_order() {
        let mut s = SuccinctStore::new();
        let ab = s.sigma(&Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C")));
        let ba = s.sigma(&Ty::fun(vec![Ty::base("B"), Ty::base("A")], Ty::base("C")));
        assert_eq!(ab, ba);
    }

    #[test]
    fn sigma_collapses_duplicate_arguments() {
        let mut s = SuccinctStore::new();
        let one = s.sigma(&Ty::fun(vec![Ty::base("A")], Ty::base("C")));
        let two = s.sigma(&Ty::fun(vec![Ty::base("A"), Ty::base("A")], Ty::base("C")));
        assert_eq!(one, two);
    }

    #[test]
    fn sigma_flattens_currying() {
        // A -> (B -> C)  and the "uncurried view" {A, B} -> C agree.
        let mut s = SuccinctStore::new();
        let curried = s.sigma(&Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C")));
        let a = s.mk_base("A");
        let b = s.mk_base("B");
        let c = s.base_symbol("C");
        let direct = s.mk_ty(vec![a, b], c);
        assert_eq!(curried, direct);
    }

    #[test]
    fn sigma_keeps_higher_order_arguments_nested() {
        // (A -> B) -> C  must become {{A} -> B} -> C, not {A, B} -> C.
        let mut s = SuccinctStore::new();
        let hof = s.sigma(&Ty::fun(
            vec![Ty::fun(vec![Ty::base("A")], Ty::base("B"))],
            Ty::base("C"),
        ));
        let args = s.args_of(hof).to_vec();
        assert_eq!(args.len(), 1);
        assert!(!s.ty(args[0]).is_base());
        assert_eq!(s.display_ty(hof), "{{A} -> B} -> C");
    }

    #[test]
    fn paper_example_environment() {
        // Γo = {a : Int, f : Int -> Int -> Int -> String}
        // Γ = {Int, {Int} -> String}
        let mut s = SuccinctStore::new();
        let a = s.sigma(&Ty::base("Int"));
        let f = s.sigma(&Ty::fun(
            vec![Ty::base("Int"), Ty::base("Int"), Ty::base("Int")],
            Ty::base("String"),
        ));
        let env = s.mk_env(vec![a, f]);
        assert_eq!(s.env_len(env), 2);
        assert_eq!(s.args_of(f).len(), 1);
        assert_eq!(s.base_name(s.ret_of(f)), "String");
    }

    #[test]
    fn environments_are_interned_sets() {
        let mut s = SuccinctStore::new();
        let a = s.mk_base("A");
        let b = s.mk_base("B");
        let e1 = s.mk_env(vec![a, b]);
        let e2 = s.mk_env(vec![b, a, a]);
        assert_eq!(e1, e2);
        assert_eq!(s.env_len(e1), 2);
    }

    #[test]
    fn env_union_is_idempotent_and_monotone() {
        let mut s = SuccinctStore::new();
        let a = s.mk_base("A");
        let b = s.mk_base("B");
        let e = s.mk_env(vec![a]);
        let e_ab = s.env_union(e, &[b]);
        assert!(s.env_contains(e_ab, a));
        assert!(s.env_contains(e_ab, b));
        // Union with an already-present member returns the same interned env.
        assert_eq!(s.env_union(e_ab, &[a]), e_ab);
        assert!(s.env_subset(e, e_ab));
        assert!(!s.env_subset(e_ab, e));
    }

    #[test]
    fn display_renders_sets_and_arrows() {
        let mut s = SuccinctStore::new();
        let int = s.mk_base("Int");
        let string = s.base_symbol("String");
        let f = s.mk_ty(vec![int], string);
        let env = s.mk_env(vec![int, f]);
        let rendered = s.display_env(env);
        assert!(rendered.contains("Int"));
        assert!(rendered.contains("{Int} -> String"));
    }

    #[test]
    fn ty_count_tracks_distinct_types_only() {
        let mut s = SuccinctStore::new();
        s.sigma(&Ty::fun(vec![Ty::base("A")], Ty::base("B")));
        s.sigma(&Ty::fun(vec![Ty::base("A")], Ty::base("B")));
        // A, B and {A}->B.
        assert_eq!(s.ty_count(), 3);
    }
}
