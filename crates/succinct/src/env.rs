//! Interned succinct environments.

use insynth_intern::Id;

use crate::store::SuccinctTyId;

/// The member set of an interned environment: a sorted, de-duplicated list of
/// succinct type ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvData {
    types: Vec<SuccinctTyId>,
}

impl EnvData {
    /// Creates environment data from an already sorted, de-duplicated list.
    pub(crate) fn new(types: Vec<SuccinctTyId>) -> Self {
        debug_assert!(types.windows(2).all(|w| w[0] < w[1]), "env must be sorted");
        EnvData { types }
    }

    /// The member types, sorted ascending by id.
    pub fn types(&self) -> &[SuccinctTyId] {
        &self.types
    }

    /// Membership test (binary search).
    pub fn contains(&self, ty: SuccinctTyId) -> bool {
        self.types.binary_search(&ty).is_ok()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Returns `true` for the empty environment.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

/// Interned handle to a succinct environment Γ.
pub type EnvId = Id<EnvData>;

#[cfg(test)]
mod tests {
    use crate::SuccinctStore;

    #[test]
    fn contains_uses_membership_not_identity() {
        let mut s = SuccinctStore::new();
        let a = s.mk_base("A");
        let b = s.mk_base("B");
        let c = s.mk_base("C");
        let env = s.mk_env(vec![a, c]);
        assert!(s.env_contains(env, a));
        assert!(!s.env_contains(env, b));
        assert!(s.env_contains(env, c));
    }

    #[test]
    fn empty_env_is_empty() {
        let mut s = SuccinctStore::new();
        let e = s.empty_env();
        assert_eq!(s.env_len(e), 0);
        assert_eq!(s.env_types(e), &[]);
    }
}
