//! The [`TypeStore`] abstraction over succinct-type stores.
//!
//! Two stores implement it: the owning [`SuccinctStore`] arena and the
//! per-query [`ScratchStore`](crate::ScratchStore) overlay. The calculus
//! rules and the synthesis phases are written against this trait so the same
//! code serves both single-shot use (one mutable store per query) and the
//! session API (a shared frozen store plus a private overlay per query).

use insynth_intern::Symbol;
use insynth_lambda::Ty;

use crate::{EnvId, SuccinctStore, SuccinctTy, SuccinctTyId};

/// Interning store for succinct types, base-type names and environments.
///
/// Required methods cover raw interning and resolution; everything the
/// synthesis engine uses on top (σ, unions, membership, rendering) is
/// provided. Ids handed out by one store are only meaningful for that store
/// (or for overlays layered on it).
pub trait TypeStore {
    /// The structural data of a succinct type.
    fn ty(&self, id: SuccinctTyId) -> &SuccinctTy;

    /// Resolves a base-type symbol back to its name.
    fn base_name(&self, sym: Symbol) -> &str;

    /// The member types of an environment, sorted ascending by id.
    fn env_types(&self, env: EnvId) -> &[SuccinctTyId];

    /// Number of distinct succinct types interned so far.
    fn ty_count(&self) -> usize;

    /// Number of distinct environments interned so far.
    fn env_count(&self) -> usize;

    /// Interns a base-type name.
    fn base_symbol(&mut self, name: &str) -> Symbol;

    /// Interns the succinct type `{args} → ret`, sorting and de-duplicating
    /// the argument set.
    fn mk_ty(&mut self, args: Vec<SuccinctTyId>, ret: Symbol) -> SuccinctTyId;

    /// Interns an environment (a finite set of succinct types).
    fn mk_env(&mut self, types: Vec<SuccinctTyId>) -> EnvId;

    /// The argument set `A(t)` of a succinct type.
    fn args_of(&self, id: SuccinctTyId) -> &[SuccinctTyId] {
        &self.ty(id).args
    }

    /// The return base type `R(t)` of a succinct type.
    fn ret_of(&self, id: SuccinctTyId) -> Symbol {
        self.ty(id).ret
    }

    /// Returns `true` if `ty` is a member of `env`.
    fn env_contains(&self, env: EnvId, ty: SuccinctTyId) -> bool {
        self.env_types(env).binary_search(&ty).is_ok()
    }

    /// Number of member types of an environment.
    fn env_len(&self, env: EnvId) -> usize {
        self.env_types(env).len()
    }

    /// Returns `true` if every member of `small` is a member of `big`.
    fn env_subset(&self, small: EnvId, big: EnvId) -> bool {
        self.env_types(small)
            .iter()
            .all(|&t| self.env_contains(big, t))
    }

    /// Interns the base succinct type `∅ → name`.
    fn mk_base(&mut self, name: &str) -> SuccinctTyId {
        let sym = self.base_symbol(name);
        self.mk_ty(Vec::new(), sym)
    }

    /// The empty environment.
    fn empty_env(&mut self) -> EnvId {
        self.mk_env(Vec::new())
    }

    /// The σ conversion from simple types to succinct types (§3.2):
    ///
    /// * `σ(v) = ∅ → v`
    /// * `σ(τ1 → τ2) = ({σ(τ1)} ∪ A(σ(τ2))) → R(σ(τ2))`
    fn sigma(&mut self, ty: &Ty) -> SuccinctTyId {
        match ty {
            Ty::Base(name) => self.mk_base(name),
            Ty::Arrow(a, b) => {
                let a_id = self.sigma(a);
                let b_id = self.sigma(b);
                let b_data = self.ty(b_id).clone();
                let mut args = b_data.args;
                args.push(a_id);
                self.mk_ty(args, b_data.ret)
            }
        }
    }

    /// Converts a whole simple-type environment (the images `σ(τi)` of every
    /// declaration type) into an interned succinct environment.
    fn sigma_env<'a>(&mut self, tys: impl IntoIterator<Item = &'a Ty>) -> EnvId {
        let ids: Vec<SuccinctTyId> = tys.into_iter().map(|t| self.sigma(t)).collect();
        self.mk_env(ids)
    }

    /// Interns `env ∪ extra`.
    fn env_union(&mut self, env: EnvId, extra: &[SuccinctTyId]) -> EnvId {
        if extra.iter().all(|&t| self.env_contains(env, t)) {
            return env;
        }
        let mut types = self.env_types(env).to_vec();
        types.extend_from_slice(extra);
        self.mk_env(types)
    }

    /// Renders a succinct type, e.g. `{Int, String} -> File`.
    fn display_ty(&self, id: SuccinctTyId) -> String {
        let data = self.ty(id);
        if data.args.is_empty() {
            return self.base_name(data.ret).to_owned();
        }
        let args: Vec<String> = data.args.iter().map(|&a| self.display_ty(a)).collect();
        format!("{{{}}} -> {}", args.join(", "), self.base_name(data.ret))
    }

    /// Renders an environment, e.g. `{Int, {Int} -> String}`.
    fn display_env(&self, env: EnvId) -> String {
        let parts: Vec<String> = self
            .env_types(env)
            .iter()
            .map(|&t| self.display_ty(t))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

impl TypeStore for SuccinctStore {
    fn ty(&self, id: SuccinctTyId) -> &SuccinctTy {
        SuccinctStore::ty(self, id)
    }

    fn base_name(&self, sym: Symbol) -> &str {
        SuccinctStore::base_name(self, sym)
    }

    fn env_types(&self, env: EnvId) -> &[SuccinctTyId] {
        SuccinctStore::env_types(self, env)
    }

    fn ty_count(&self) -> usize {
        SuccinctStore::ty_count(self)
    }

    fn env_count(&self) -> usize {
        SuccinctStore::env_count(self)
    }

    fn base_symbol(&mut self, name: &str) -> Symbol {
        SuccinctStore::base_symbol(self, name)
    }

    fn mk_ty(&mut self, args: Vec<SuccinctTyId>, ret: Symbol) -> SuccinctTyId {
        SuccinctStore::mk_ty(self, args, ret)
    }

    fn mk_env(&mut self, types: Vec<SuccinctTyId>) -> EnvId {
        SuccinctStore::mk_env(self, types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<S: TypeStore>(store: &mut S) {
        let int = store.mk_base("Int");
        let string = store.base_symbol("String");
        let f = store.mk_ty(vec![int], string);
        assert_eq!(store.ret_of(f), string);
        assert_eq!(store.args_of(f), &[int]);
        let env = store.mk_env(vec![int, f]);
        assert!(store.env_contains(env, int));
        assert_eq!(store.env_len(env), 2);
        assert_eq!(store.display_ty(f), "{Int} -> String");
    }

    #[test]
    fn succinct_store_implements_the_view() {
        let mut store = SuccinctStore::new();
        generic_roundtrip(&mut store);
    }

    #[test]
    fn sigma_through_the_trait_matches_the_inherent_sigma() {
        let ty = Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C"));
        let mut direct = SuccinctStore::new();
        let inherent = SuccinctStore::sigma(&mut direct, &ty);
        let mut viewed = SuccinctStore::new();
        let through_trait = TypeStore::sigma(&mut viewed, &ty);
        assert_eq!(inherent.index(), through_trait.index());
    }
}
