//! A pattern-indexed view of the derivable space: goals to pattern lists.
//!
//! The pattern generation phase derives succinct patterns `Γ@Π : t` one at a
//! time; the reconstruction phase then asks, over and over, "which patterns
//! fill a hole of base type `t` in environment `Γ`?". A [`PatternIndex`]
//! answers that query through dense *goal node* ids: every distinct
//! `(EnvId, ret)` pair that received a pattern becomes a [`GoalId`], and the
//! patterns of a goal are stored contiguously in insertion order. Downstream
//! consumers (the derivation graph of the reconstruction pipeline) key their
//! own tables by [`GoalId`] instead of hashing `(EnvId, Symbol)` pairs in the
//! hot loop.
//!
//! # Example
//!
//! ```
//! use insynth_succinct::{Pattern, PatternIndex, SuccinctStore, TypeStore};
//!
//! let mut store = SuccinctStore::new();
//! let int = store.mk_base("Int");
//! let string = store.base_symbol("String");
//! let env = store.mk_env(vec![int]);
//! let mut index = PatternIndex::new();
//! assert!(index.insert(Pattern::new(env, vec![int], string)));
//! assert!(!index.insert(Pattern::new(env, vec![int], string))); // duplicate
//! let goal = index.goal(env, string).expect("goal was indexed");
//! assert_eq!(index.patterns_of(goal).count(), 1);
//! assert!(index.is_inhabited(string, env));
//! ```

use std::collections::HashMap;

use insynth_intern::Symbol;

use crate::{EnvId, Pattern, TypeStore};

/// Dense id of a `(environment, return type)` goal in a [`PatternIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GoalId(u32);

impl GoalId {
    /// The goal's position in [`PatternIndex::goals`] iteration order.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// The patterns derived for one `(environment, return type)` goal.
#[derive(Debug, Clone)]
struct GoalEntry {
    env: EnvId,
    ret: Symbol,
    /// Indices into the flat pattern table, in derivation order.
    members: Vec<u32>,
}

/// An insertion-ordered index from `(EnvId, ret)` goals to their patterns.
///
/// Iteration orders are deterministic: goals appear in first-insertion order
/// and each goal's patterns in derivation order, so everything built on top of
/// the index (notably the derivation graph) inherits a stable layout.
#[derive(Debug, Clone, Default)]
pub struct PatternIndex {
    patterns: Vec<Pattern>,
    goals: Vec<GoalEntry>,
    ids: HashMap<(EnvId, Symbol), GoalId>,
}

impl PatternIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a pattern, creating its goal node if needed.
    ///
    /// Returns `false` (and stores nothing) if an equal pattern was already
    /// indexed under the same goal.
    pub fn insert(&mut self, pattern: Pattern) -> bool {
        let key = (pattern.env, pattern.ret);
        let goal = match self.ids.get(&key) {
            Some(&goal) => goal,
            None => {
                let goal = GoalId(self.goals.len() as u32);
                self.goals.push(GoalEntry {
                    env: pattern.env,
                    ret: pattern.ret,
                    members: Vec::new(),
                });
                self.ids.insert(key, goal);
                goal
            }
        };
        let entry = &mut self.goals[goal.as_usize()];
        if entry
            .members
            .iter()
            .any(|&i| self.patterns[i as usize] == pattern)
        {
            return false;
        }
        entry.members.push(self.patterns.len() as u32);
        self.patterns.push(pattern);
        true
    }

    /// The goal node for `(env, ret)`, if any pattern was derived for it.
    pub fn goal(&self, env: EnvId, ret: Symbol) -> Option<GoalId> {
        self.ids.get(&(env, ret)).copied()
    }

    /// The `(env, ret)` pair of a goal.
    pub fn goal_key(&self, goal: GoalId) -> (EnvId, Symbol) {
        let entry = &self.goals[goal.as_usize()];
        (entry.env, entry.ret)
    }

    /// All goals, in first-insertion order.
    pub fn goals(&self) -> impl Iterator<Item = GoalId> {
        (0..self.goals.len() as u32).map(GoalId)
    }

    /// Number of distinct goals.
    pub fn goal_count(&self) -> usize {
        self.goals.len()
    }

    /// The patterns of a goal, in derivation order.
    pub fn patterns_of(&self, goal: GoalId) -> impl Iterator<Item = &Pattern> {
        self.goals[goal.as_usize()]
            .members
            .iter()
            .map(|&i| &self.patterns[i as usize])
    }

    /// The patterns usable to fill a hole of base type `ret` in environment
    /// `env` (the lookup performed by term reconstruction).
    pub fn lookup(&self, env: EnvId, ret: Symbol) -> impl Iterator<Item = &Pattern> {
        self.goal(env, ret)
            .into_iter()
            .flat_map(|goal| self.goals[goal.as_usize()].members.iter())
            .map(|&i| &self.patterns[i as usize])
    }

    /// Returns `true` if base type `ret` is known to be inhabited in `env`.
    pub fn is_inhabited(&self, ret: Symbol, env: EnvId) -> bool {
        self.ids.contains_key(&(env, ret))
    }

    /// All `(base type, environment)` pairs known to be inhabited.
    pub fn inhabited_pairs(&self) -> impl Iterator<Item = (Symbol, EnvId)> + '_ {
        self.goals.iter().map(|entry| (entry.ret, entry.env))
    }

    /// All patterns, in derivation order.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Total number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if no pattern was indexed.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Renders every goal with its pattern count, e.g. for debugging:
    /// `{Int}@Int: 2 patterns`.
    pub fn render_summary<S: TypeStore>(&self, store: &S) -> String {
        self.goals
            .iter()
            .map(|entry| {
                format!(
                    "{}@{}: {} pattern(s)",
                    store.display_env(entry.env),
                    store.base_name(entry.ret),
                    entry.members.len()
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuccinctStore;

    fn setup() -> (SuccinctStore, EnvId, Symbol, Symbol) {
        let mut store = SuccinctStore::new();
        let int = store.mk_base("Int");
        let string = store.base_symbol("String");
        let bool_sym = store.base_symbol("Boolean");
        let env = store.mk_env(vec![int]);
        (store, env, string, bool_sym)
    }

    #[test]
    fn goals_are_created_in_insertion_order() {
        let (mut store, env, string, boolean) = setup();
        let int = store.mk_base("Int");
        let mut index = PatternIndex::new();
        index.insert(Pattern::new(env, vec![int], string));
        index.insert(Pattern::new(env, vec![], boolean));
        index.insert(Pattern::new(env, vec![], string));
        let goals: Vec<_> = index.goals().collect();
        assert_eq!(goals.len(), 2);
        assert_eq!(index.goal_key(goals[0]), (env, string));
        assert_eq!(index.goal_key(goals[1]), (env, boolean));
        assert_eq!(index.patterns_of(goals[0]).count(), 2);
    }

    #[test]
    fn duplicate_patterns_are_rejected() {
        let (mut store, env, string, _) = setup();
        let int = store.mk_base("Int");
        let mut index = PatternIndex::new();
        assert!(index.insert(Pattern::new(env, vec![int], string)));
        assert!(!index.insert(Pattern::new(env, vec![int], string)));
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn lookup_and_inhabitation_agree() {
        let (_, env, string, boolean) = setup();
        let mut index = PatternIndex::new();
        index.insert(Pattern::new(env, vec![], string));
        assert!(index.is_inhabited(string, env));
        assert!(!index.is_inhabited(boolean, env));
        assert_eq!(index.lookup(env, string).count(), 1);
        assert_eq!(index.lookup(env, boolean).count(), 0);
    }
}
