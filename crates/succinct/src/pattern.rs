//! Succinct patterns `Γ@{t1, …, tn} : t` (paper §3.3).

use insynth_intern::Symbol;

use crate::{EnvId, SuccinctTyId, TypeStore};

/// A succinct pattern `Γ@{t1, …, tn} : t`.
///
/// A pattern states that the types `t1 … tn` are inhabited in `Γ` and an
/// inhabitant of the base type `t` can be built from them in `Γ` (it
/// abstractly represents an application term). The set of all patterns is the
/// finite representation of *all* inhabitants from which the reconstruction
/// phase extracts concrete terms.
///
/// # Example
///
/// ```
/// use insynth_succinct::{Pattern, SuccinctStore};
///
/// let mut s = SuccinctStore::new();
/// let int = s.mk_base("Int");
/// let string = s.base_symbol("String");
/// let env = s.mk_env(vec![int]);
/// let p = Pattern::new(env, vec![int], string);
/// assert_eq!(p.render(&s), "{Int}@{Int} : String");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern {
    /// The environment in which the pattern was derived.
    pub env: EnvId,
    /// The argument types (sorted, de-duplicated) that must be inhabited.
    pub args: Vec<SuccinctTyId>,
    /// The base type this pattern inhabits.
    pub ret: Symbol,
}

impl Pattern {
    /// Creates a pattern, normalizing the argument set.
    pub fn new(env: EnvId, mut args: Vec<SuccinctTyId>, ret: Symbol) -> Self {
        args.sort_unstable();
        args.dedup();
        Pattern { env, args, ret }
    }

    /// Returns `true` if the pattern needs no arguments (a nullary witness).
    pub fn is_leaf(&self) -> bool {
        self.args.is_empty()
    }

    /// Renders the pattern as `Γ@{…} : t`.
    pub fn render<S: TypeStore>(&self, store: &S) -> String {
        let args: Vec<String> = self.args.iter().map(|&a| store.display_ty(a)).collect();
        format!(
            "{}@{{{}}} : {}",
            store.display_env(self.env),
            args.join(", "),
            store.base_name(self.ret)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuccinctStore;

    #[test]
    fn new_normalizes_argument_set() {
        let mut s = SuccinctStore::new();
        let a = s.mk_base("A");
        let b = s.mk_base("B");
        let r = s.base_symbol("R");
        let env = s.mk_env(vec![a, b]);
        let p1 = Pattern::new(env, vec![b, a, a], r);
        let p2 = Pattern::new(env, vec![a, b], r);
        assert_eq!(p1, p2);
    }

    #[test]
    fn leaf_patterns_have_no_arguments() {
        let mut s = SuccinctStore::new();
        let r = s.base_symbol("R");
        let env = s.empty_env();
        assert!(Pattern::new(env, vec![], r).is_leaf());
    }

    #[test]
    fn render_shows_env_args_and_ret() {
        let mut s = SuccinctStore::new();
        let int = s.mk_base("Int");
        let string = s.base_symbol("String");
        let env = s.mk_env(vec![int]);
        let p = Pattern::new(env, vec![int], string);
        assert_eq!(p.render(&s), "{Int}@{Int} : String");
    }
}
