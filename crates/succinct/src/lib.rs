//! Succinct types, environments and patterns (paper §3.2–§3.5).
//!
//! Succinct types are simple types taken modulo currying and the
//! commutativity / associativity / idempotence of the argument product:
//!
//! ```text
//! ts ::= {ts, …, ts} → v        v a base type
//! ```
//!
//! The conversion σ maps every simple type to a succinct type; many distinct
//! simple types collapse into one equivalence class, which is what shrinks the
//! search space explored by the synthesis engine (the paper reports
//! 3356 declarations → 1783 succinct types on the Figure 1 example).
//!
//! All succinct types and environments are interned into a [`SuccinctStore`]
//! so that the engine can hash and compare them as integers.
//!
//! # Example
//!
//! ```
//! use insynth_lambda::Ty;
//! use insynth_succinct::SuccinctStore;
//!
//! let mut store = SuccinctStore::new();
//! // A -> B -> C and B -> A -> C collapse to the same succinct type {A,B} -> C.
//! let t1 = store.sigma(&Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C")));
//! let t2 = store.sigma(&Ty::fun(vec![Ty::base("B"), Ty::base("A")], Ty::base("C")));
//! assert_eq!(t1, t2);
//! ```

mod calculus;
mod env;
mod fingerprint;
mod index;
mod pattern;
mod scratch;
mod store;
mod view;

pub use calculus::{
    match_rule, prod_rule, prop_rule, strip_rule, transfer_rule, BaseRequest, ReachabilityTerm,
    Request,
};
pub use env::EnvId;
pub use fingerprint::{EnvFingerprint, EnvFingerprintBuilder};
pub use index::{GoalId, PatternIndex};
pub use pattern::Pattern;
pub use scratch::ScratchStore;
pub use store::{SuccinctStore, SuccinctTy, SuccinctTyId};
pub use view::TypeStore;
