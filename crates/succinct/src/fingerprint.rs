//! Content-addressed environment identity.
//!
//! The interactive setting prepares a program point, queries it, the user
//! edits, and the point comes back *slightly* changed — or a batch contains
//! many points that are structurally the same environment. An
//! [`EnvFingerprint`] gives such environments a first-class identity: a
//! 128-bit digest over the *multiset* of declarations (each hashed with its
//! name, type and effective weight), insensitive to declaration order, so two
//! program points that differ only in the order declarations were collected
//! address the same cached preparation.
//!
//! The fingerprint is a cache *key*, not a proof: the engine verifies
//! structural equality of the underlying environments on every fingerprint
//! hit before sharing prepared state, so a (vanishingly unlikely) collision
//! degrades to an uncached preparation, never to wrong results.
//!
//! # Example
//!
//! ```
//! use insynth_intern::StableHasher;
//! use insynth_succinct::EnvFingerprintBuilder;
//!
//! let item = |name: &str| {
//!     let mut h = StableHasher::new();
//!     h.write_str(name);
//!     h.finish()
//! };
//! // Order-insensitive: the same items in any order produce the same digest.
//! let mut fwd = EnvFingerprintBuilder::new();
//! fwd.add_item(item("a"));
//! fwd.add_item(item("b"));
//! let mut rev = EnvFingerprintBuilder::new();
//! rev.add_item(item("b"));
//! rev.add_item(item("a"));
//! assert_eq!(fwd.finish(), rev.finish());
//! ```

use std::fmt;

use insynth_intern::StableHasher;

/// The content address of a type environment: a stable 128-bit digest over
/// its declaration multiset (order-insensitive) plus the weight-configuration
/// inputs that affect prepared artifacts.
///
/// Equal fingerprints are the engine's signal that two program points can
/// share one preparation and one derivation-graph cache line; the engine
/// still verifies the environments match structurally before sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EnvFingerprint(u128);

impl EnvFingerprint {
    /// The raw 128-bit digest.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl fmt::Display for EnvFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Accumulates per-item digests into an order-insensitive [`EnvFingerprint`].
///
/// Items combine through two commutative accumulators (a wrapping sum and a
/// wrapping product of odd-forced halves) plus the item count, so the final
/// digest depends on the multiset of items but not on the order they were
/// added. Configuration inputs ([`EnvFingerprintBuilder::mix_config`]) are
/// order-*sensitive* — they describe one fixed configuration, not a set.
#[derive(Debug, Clone)]
pub struct EnvFingerprintBuilder {
    sum_hi: u64,
    sum_lo: u64,
    prod_hi: u64,
    prod_lo: u64,
    count: u64,
    config: StableHasher,
}

impl Default for EnvFingerprintBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EnvFingerprintBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        EnvFingerprintBuilder {
            sum_hi: 0,
            sum_lo: 0,
            prod_hi: 1,
            prod_lo: 1,
            count: 0,
            config: StableHasher::new(),
        }
    }

    /// Adds one item digest (e.g. the [`StableHasher`] digest of a
    /// declaration). Commutative: add order does not affect the result.
    pub fn add_item(&mut self, item: u128) {
        let hi = (item >> 64) as u64;
        let lo = item as u64;
        self.sum_hi = self.sum_hi.wrapping_add(hi);
        self.sum_lo = self.sum_lo.wrapping_add(lo);
        // Forcing the factors odd keeps the products from collapsing to zero.
        self.prod_hi = self.prod_hi.wrapping_mul(hi | 1);
        self.prod_lo = self.prod_lo.wrapping_mul(lo | 1);
        self.count += 1;
    }

    /// Mixes order-sensitive configuration input into the digest.
    pub fn mix_config(&mut self, f: impl FnOnce(&mut StableHasher)) {
        f(&mut self.config);
    }

    /// The combined fingerprint.
    pub fn finish(&self) -> EnvFingerprint {
        let mut h = self.config.clone();
        h.write_u64(self.count);
        h.write_u64(self.sum_hi);
        h.write_u64(self.sum_lo);
        h.write_u64(self.prod_hi);
        h.write_u64(self.prod_lo);
        EnvFingerprint(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(tag: u64) -> u128 {
        let mut h = StableHasher::new();
        h.write_u64(tag);
        h.finish()
    }

    #[test]
    fn order_of_items_is_irrelevant() {
        let mut a = EnvFingerprintBuilder::new();
        for i in 0..16 {
            a.add_item(item(i));
        }
        let mut b = EnvFingerprintBuilder::new();
        for i in (0..16).rev() {
            b.add_item(item(i));
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn multiplicity_matters() {
        let mut once = EnvFingerprintBuilder::new();
        once.add_item(item(3));
        let mut twice = EnvFingerprintBuilder::new();
        twice.add_item(item(3));
        twice.add_item(item(3));
        assert_ne!(once.finish(), twice.finish());
    }

    #[test]
    fn different_items_fingerprint_differently() {
        let mut a = EnvFingerprintBuilder::new();
        a.add_item(item(1));
        let mut b = EnvFingerprintBuilder::new();
        b.add_item(item(2));
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn config_input_is_part_of_the_identity() {
        let mut a = EnvFingerprintBuilder::new();
        a.add_item(item(1));
        let mut b = a.clone();
        b.mix_config(|h| h.write_f64(1.0));
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn display_renders_fixed_width_hex() {
        let fp = EnvFingerprintBuilder::new().finish();
        assert_eq!(fp.to_string().len(), 32);
    }
}
