//! Per-query overlay on a frozen [`SuccinctStore`].
//!
//! The session API prepares an environment once and then serves many queries
//! against it, potentially from several threads at the same time. Each query
//! still needs to intern a handful of *new* types and environments (the goal
//! type, the environments extended with lambda binders), so the store cannot
//! simply be shared read-only. A [`ScratchStore`] solves this with a two-tier
//! scheme: reads fall through to the shared base store, and anything not
//! already interned there lands in a small private overlay whose ids start
//! where the base ids end. Ids from the base remain valid in the overlay, so
//! precomputed indices (the `Select` map, per-type weights) keyed by base ids
//! keep working unchanged.
//!
//! # Example
//!
//! ```
//! use insynth_lambda::Ty;
//! use insynth_succinct::{ScratchStore, SuccinctStore, TypeStore};
//!
//! let mut base = SuccinctStore::new();
//! let int = base.sigma(&Ty::base("Int"));
//!
//! let mut scratch = ScratchStore::new(&base);
//! // Already interned in the base: same id, nothing added to the overlay.
//! assert_eq!(TypeStore::sigma(&mut scratch, &Ty::base("Int")), int);
//! assert_eq!(scratch.scratch_ty_count(), 0);
//! // New types go to the overlay without touching the base.
//! let file = TypeStore::sigma(&mut scratch, &Ty::base("File"));
//! assert_eq!(scratch.scratch_ty_count(), 1);
//! assert_eq!(scratch.display_ty(file), "File");
//! assert_eq!(base.ty_count(), 1);
//! ```

use std::collections::HashMap;

use insynth_intern::Symbol;

use crate::env::EnvData;
use crate::view::TypeStore;
use crate::{EnvId, SuccinctStore, SuccinctTy, SuccinctTyId};

/// A mutable interning overlay on top of a shared, immutable [`SuccinctStore`].
///
/// Lookups check the base store first; new entries are appended to private
/// tables with ids offset past the base's, so base ids and overlay ids share
/// one id space and never collide.
#[derive(Debug)]
pub struct ScratchStore<'a> {
    base: &'a SuccinctStore,
    names: Vec<String>,
    name_map: HashMap<String, Symbol>,
    tys: Vec<SuccinctTy>,
    ty_map: HashMap<SuccinctTy, SuccinctTyId>,
    envs: Vec<EnvData>,
    env_map: HashMap<Vec<SuccinctTyId>, EnvId>,
}

impl<'a> ScratchStore<'a> {
    /// Creates an empty overlay over `base`.
    pub fn new(base: &'a SuccinctStore) -> Self {
        ScratchStore {
            base,
            names: Vec::new(),
            name_map: HashMap::new(),
            tys: Vec::new(),
            ty_map: HashMap::new(),
            envs: Vec::new(),
            env_map: HashMap::new(),
        }
    }

    /// The shared base store this overlay reads through to.
    pub fn base(&self) -> &SuccinctStore {
        self.base
    }

    /// Number of succinct types interned into the overlay (not the base).
    pub fn scratch_ty_count(&self) -> usize {
        self.tys.len()
    }

    /// Number of environments interned into the overlay (not the base).
    pub fn scratch_env_count(&self) -> usize {
        self.envs.len()
    }

    /// Number of base-type names interned into the overlay (not the base).
    pub fn scratch_symbol_count(&self) -> usize {
        self.names.len()
    }
}

impl TypeStore for ScratchStore<'_> {
    fn ty(&self, id: SuccinctTyId) -> &SuccinctTy {
        let split = self.base.ty_count();
        let i = id.as_usize();
        if i < split {
            self.base.ty(id)
        } else {
            &self.tys[i - split]
        }
    }

    fn base_name(&self, sym: Symbol) -> &str {
        let split = self.base.symbol_count();
        let i = sym.as_usize();
        if i < split {
            self.base.base_name(sym)
        } else {
            &self.names[i - split]
        }
    }

    fn env_types(&self, env: EnvId) -> &[SuccinctTyId] {
        let split = self.base.env_count();
        let i = env.as_usize();
        if i < split {
            self.base.env_types(env)
        } else {
            self.envs[i - split].types()
        }
    }

    fn ty_count(&self) -> usize {
        self.base.ty_count() + self.tys.len()
    }

    fn env_count(&self) -> usize {
        self.base.env_count() + self.envs.len()
    }

    fn base_symbol(&mut self, name: &str) -> Symbol {
        if let Some(sym) = self.base.lookup_symbol(name) {
            return sym;
        }
        if let Some(&sym) = self.name_map.get(name) {
            return sym;
        }
        let index = self.base.symbol_count() + self.names.len();
        let sym = Symbol::from_index(index as u32);
        self.names.push(name.to_owned());
        self.name_map.insert(name.to_owned(), sym);
        sym
    }

    fn mk_ty(&mut self, mut args: Vec<SuccinctTyId>, ret: Symbol) -> SuccinctTyId {
        args.sort_unstable();
        args.dedup();
        let data = SuccinctTy { args, ret };
        if let Some(id) = self.base.lookup_ty(&data) {
            return id;
        }
        if let Some(&id) = self.ty_map.get(&data) {
            return id;
        }
        let index = self.base.ty_count() + self.tys.len();
        let id = SuccinctTyId::from_index(index as u32);
        self.tys.push(data.clone());
        self.ty_map.insert(data, id);
        id
    }

    fn mk_env(&mut self, types: Vec<SuccinctTyId>) -> EnvId {
        let mut sorted = types;
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(id) = self.base.lookup_env(&sorted) {
            return id;
        }
        if let Some(&id) = self.env_map.get(sorted.as_slice()) {
            return id;
        }
        let index = self.base.env_count() + self.envs.len();
        let id = EnvId::from_index(index as u32);
        self.envs.push(EnvData::new(sorted.clone()));
        self.env_map.insert(sorted, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insynth_lambda::Ty;

    fn base_store() -> SuccinctStore {
        let mut base = SuccinctStore::new();
        base.sigma(&Ty::base("Int"));
        base.sigma(&Ty::fun(vec![Ty::base("Int")], Ty::base("String")));
        let int = base.sigma(&Ty::base("Int"));
        base.mk_env(vec![int]);
        base
    }

    #[test]
    fn base_hits_return_base_ids_and_leave_the_overlay_empty() {
        let base = base_store();
        let mut scratch = ScratchStore::new(&base);
        let int = TypeStore::sigma(&mut scratch, &Ty::base("Int"));
        assert!(int.as_usize() < base.ty_count());
        let f = TypeStore::sigma(
            &mut scratch,
            &Ty::fun(vec![Ty::base("Int")], Ty::base("String")),
        );
        assert!(f.as_usize() < base.ty_count());
        assert_eq!(scratch.scratch_ty_count(), 0);
        assert_eq!(scratch.scratch_env_count(), 0);
        assert_eq!(scratch.scratch_symbol_count(), 0);
    }

    #[test]
    fn overlay_ids_start_past_the_base_and_are_interned() {
        let base = base_store();
        let mut scratch = ScratchStore::new(&base);
        let file = TypeStore::mk_base(&mut scratch, "File");
        assert!(file.as_usize() >= base.ty_count());
        // Interning is idempotent across the overlay.
        assert_eq!(TypeStore::mk_base(&mut scratch, "File"), file);
        assert_eq!(scratch.scratch_ty_count(), 1);
        assert_eq!(scratch.display_ty(file), "File");
    }

    #[test]
    fn env_union_of_base_env_with_overlay_type_lands_in_the_overlay() {
        let base = base_store();
        let int = base
            .lookup_ty(&SuccinctTy {
                args: vec![],
                ret: base.lookup_symbol("Int").unwrap(),
            })
            .unwrap();
        let env = base.lookup_env(&[int]).unwrap();

        let mut scratch = ScratchStore::new(&base);
        let file = TypeStore::mk_base(&mut scratch, "File");
        let extended = scratch.env_union(env, &[file]);
        assert!(extended.as_usize() >= base.env_count());
        assert!(scratch.env_contains(extended, int));
        assert!(scratch.env_contains(extended, file));
        // Union with only base members resolves to the interned base env.
        assert_eq!(scratch.env_union(env, &[int]), env);
    }

    #[test]
    fn two_scratches_over_one_base_are_independent_but_deterministic() {
        let base = base_store();
        let mut a = ScratchStore::new(&base);
        let mut b = ScratchStore::new(&base);
        let fa = TypeStore::sigma(&mut a, &Ty::fun(vec![Ty::base("File")], Ty::base("Reader")));
        let fb = TypeStore::sigma(&mut b, &Ty::fun(vec![Ty::base("File")], Ty::base("Reader")));
        // Same interning decisions in both overlays: identical ids.
        assert_eq!(fa, fb);
        assert_eq!(a.display_ty(fa), b.display_ty(fb));
    }

    #[test]
    fn mixed_base_and_overlay_rendering_resolves_both_tiers() {
        let base = base_store();
        let mut scratch = ScratchStore::new(&base);
        let int = TypeStore::mk_base(&mut scratch, "Int");
        let file = TypeStore::mk_base(&mut scratch, "File");
        let reader = TypeStore::base_symbol(&mut scratch, "Reader");
        let f = TypeStore::mk_ty(&mut scratch, vec![int, file], reader);
        assert_eq!(scratch.display_ty(f), "{Int, File} -> Reader");
        let env = TypeStore::mk_env(&mut scratch, vec![int, f]);
        assert_eq!(scratch.env_len(env), 2);
    }
}
