//! The succinct calculus rules as pure functions.
//!
//! These implement, rule by rule, Figures 6 (MATCH / PROP / STRIP — the type
//! reachability rules used by the exploration phase) and 8 (PROD / TRANSFER —
//! the pattern synthesis rules). The synthesis engine drives them with
//! worklists and priority queues; keeping them as standalone functions lets
//! tests exercise each rule in isolation and lets a naive reference engine be
//! cross-checked against the optimized one.

use insynth_intern::Symbol;

use crate::{EnvId, Pattern, SuccinctTyId, TypeStore};

/// A reachability request `t ;Γ ?`: "which types are reachable from `t` in Γ?"
///
/// The type `t` may still be a function type; [`strip_rule`] normalizes the
/// request so that the target is a base type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Request {
    /// The (possibly functional) succinct type being queried.
    pub ty: SuccinctTyId,
    /// The environment of the query.
    pub env: EnvId,
}

/// A request whose target has been stripped to a base type by the STRIP rule:
/// `v ;Γ∪S ?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BaseRequest {
    /// The base return type being queried.
    pub ret: Symbol,
    /// The (possibly extended) environment of the query.
    pub env: EnvId,
}

/// A reachability term `t ;Γ (S, Π)` (paper §5.3).
///
/// It records that the declaration type `decl_ty = S∪Π → t` is a member of Γ
/// whose return type matches the query; `remaining` are the argument types not
/// yet known to be inhabited and `witnessed` (Π) the ones already discharged.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReachabilityTerm {
    /// The base type this term can produce.
    pub ret: Symbol,
    /// The environment in which the match happened (already extended by STRIP).
    pub env: EnvId,
    /// The environment member `S → t` that matched.
    pub decl_ty: SuccinctTyId,
    /// Argument types still awaiting an inhabitation witness (the set `S`).
    pub remaining: Vec<SuccinctTyId>,
    /// Argument types already witnessed (the set `Π`).
    pub witnessed: Vec<SuccinctTyId>,
}

impl ReachabilityTerm {
    /// Returns `true` once every argument type has been witnessed; the term
    /// can then produce a pattern via [`prod_rule`].
    pub fn is_leaf(&self) -> bool {
        self.remaining.is_empty()
    }
}

/// The STRIP rule: `(S → t) ;Γ ?  ⟹  t ;Γ∪S ?`.
///
/// For a base-type request (`S = ∅`) the environment is unchanged.
pub fn strip_rule<S: TypeStore>(store: &mut S, request: Request) -> BaseRequest {
    let args = store.args_of(request.ty).to_vec();
    let ret = store.ret_of(request.ty);
    let env = store.env_union(request.env, &args);
    BaseRequest { ret, env }
}

/// The MATCH rule: for a base request `t ;Γ ?`, every member `S → t` of Γ with
/// return type `t` yields a reachability term `t ;Γ (S, ∅)`.
pub fn match_rule<S: TypeStore>(store: &S, request: BaseRequest) -> Vec<ReachabilityTerm> {
    store
        .env_types(request.env)
        .iter()
        .filter(|&&member| store.ret_of(member) == request.ret)
        .map(|&member| ReachabilityTerm {
            ret: request.ret,
            env: request.env,
            decl_ty: member,
            remaining: store.args_of(member).to_vec(),
            witnessed: Vec::new(),
        })
        .collect()
}

/// The PROP rule: from `t ;Γ (S, ∅)` and `t' ∈ S`, issue the request `t' ;Γ ?`.
pub fn prop_rule(term: &ReachabilityTerm, arg: SuccinctTyId) -> Request {
    debug_assert!(term.remaining.contains(&arg) || term.witnessed.contains(&arg));
    Request {
        ty: arg,
        env: term.env,
    }
}

/// The PROD rule: a fully-witnessed reachability term `t ;Γ (∅, Π)` produces
/// the pattern `Γ@Π : t`.
///
/// # Panics
///
/// Panics (in debug builds) if the term still has remaining arguments.
pub fn prod_rule(term: &ReachabilityTerm) -> Pattern {
    debug_assert!(term.is_leaf(), "PROD applies only to fully-witnessed terms");
    Pattern::new(term.env, term.witnessed.clone(), term.ret)
}

/// The TRANSFER rule: given a term `t ;Γ (S ∪ {S' → t'}, Π)` and a witness
/// that `t'` is inhabited in `Γ ∪ S'` (i.e. a leaf `t' ;Γ∪S' (∅, Π')`), move
/// the argument `S' → t'` from the pending set into Π.
///
/// Returns `None` if the leaf does not witness `arg` in this term's
/// environment (wrong return type or wrong extended environment).
pub fn transfer_rule<S: TypeStore>(
    store: &mut S,
    term: &ReachabilityTerm,
    arg: SuccinctTyId,
    leaf_ret: Symbol,
    leaf_env: EnvId,
) -> Option<ReachabilityTerm> {
    if !term.remaining.contains(&arg) {
        return None;
    }
    if store.ret_of(arg) != leaf_ret {
        return None;
    }
    let arg_args = store.args_of(arg).to_vec();
    let extended = store.env_union(term.env, &arg_args);
    if extended != leaf_env {
        return None;
    }
    let mut remaining = term.remaining.clone();
    remaining.retain(|&t| t != arg);
    let mut witnessed = term.witnessed.clone();
    witnessed.push(arg);
    Some(ReachabilityTerm {
        ret: term.ret,
        env: term.env,
        decl_ty: term.decl_ty,
        remaining,
        witnessed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuccinctStore;
    use insynth_lambda::Ty;

    /// The running example of §3.4:
    /// Γo = {a : Int, f : Int → Int → Int → String},
    /// Γ = {Int, {Int} → String}.
    fn paper_env(store: &mut SuccinctStore) -> (EnvId, SuccinctTyId, SuccinctTyId) {
        let int = store.sigma(&Ty::base("Int"));
        let f = store.sigma(&Ty::fun(
            vec![Ty::base("Int"), Ty::base("Int"), Ty::base("Int")],
            Ty::base("String"),
        ));
        let env = store.mk_env(vec![int, f]);
        (env, int, f)
    }

    #[test]
    fn strip_on_base_request_keeps_environment() {
        let mut s = SuccinctStore::new();
        let (env, int, _) = paper_env(&mut s);
        let req = strip_rule(&mut s, Request { ty: int, env });
        assert_eq!(req.env, env);
        assert_eq!(s.base_name(req.ret), "Int");
    }

    #[test]
    fn strip_extends_environment_for_function_targets() {
        let mut s = SuccinctStore::new();
        let a = s.mk_base("A");
        let b = s.base_symbol("B");
        let fun = s.mk_ty(vec![a], b);
        let env = s.empty_env();
        let req = strip_rule(&mut s, Request { ty: fun, env });
        assert_eq!(s.base_name(req.ret), "B");
        assert!(s.env_contains(req.env, a));
    }

    #[test]
    fn match_finds_members_with_matching_return_type() {
        let mut s = SuccinctStore::new();
        let (env, int, f) = paper_env(&mut s);
        let string = s.base_symbol("String");
        let found = match_rule(&s, BaseRequest { ret: string, env });
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].decl_ty, f);
        assert_eq!(found[0].remaining, vec![int]);

        let int_sym = s.base_symbol("Int");
        let found_int = match_rule(&s, BaseRequest { ret: int_sym, env });
        assert_eq!(found_int.len(), 1);
        assert!(found_int[0].is_leaf());
    }

    #[test]
    fn match_on_unknown_type_finds_nothing() {
        let mut s = SuccinctStore::new();
        let (env, _, _) = paper_env(&mut s);
        let missing = s.base_symbol("Missing");
        assert!(match_rule(&s, BaseRequest { ret: missing, env }).is_empty());
    }

    #[test]
    fn prop_reuses_the_term_environment() {
        let mut s = SuccinctStore::new();
        let (env, int, _) = paper_env(&mut s);
        let string = s.base_symbol("String");
        let term = &match_rule(&s, BaseRequest { ret: string, env })[0];
        let req = prop_rule(term, int);
        assert_eq!(req, Request { ty: int, env });
    }

    #[test]
    fn paper_example_derives_the_string_pattern() {
        // Following §3.4 step by step: Int is inhabited (leaf), TRANSFER moves
        // Int into Π for the String term, PROD emits Γ@{Int} : String.
        let mut s = SuccinctStore::new();
        let (env, int, _) = paper_env(&mut s);
        let int_sym = s.base_symbol("Int");
        let string = s.base_symbol("String");

        let int_leaf = &match_rule(&s, BaseRequest { ret: int_sym, env })[0];
        assert!(int_leaf.is_leaf());
        let int_pattern = prod_rule(int_leaf);
        assert!(int_pattern.is_leaf());
        assert_eq!(s.base_name(int_pattern.ret), "Int");

        let string_term = &match_rule(&s, BaseRequest { ret: string, env })[0];
        let transferred = transfer_rule(&mut s, string_term, int, int_leaf.ret, int_leaf.env)
            .expect("Int leaf must witness the Int argument");
        assert!(transferred.is_leaf());
        let pattern = prod_rule(&transferred);
        assert_eq!(pattern.render(&s), "{Int, {Int} -> String}@{Int} : String");
    }

    #[test]
    fn transfer_rejects_wrong_environment() {
        let mut s = SuccinctStore::new();
        let (env, int, _) = paper_env(&mut s);
        let string = s.base_symbol("String");
        let other_env = s.mk_env(vec![int]);
        let term = &match_rule(&s, BaseRequest { ret: string, env })[0];
        let int_sym = s.base_symbol("Int");
        // A leaf derived in a *different* environment must not discharge the arg.
        assert!(transfer_rule(&mut s, term, int, int_sym, other_env).is_none());
    }

    #[test]
    fn transfer_rejects_non_member_argument() {
        let mut s = SuccinctStore::new();
        let (env, _, _) = paper_env(&mut s);
        let string = s.base_symbol("String");
        let term = &match_rule(&s, BaseRequest { ret: string, env })[0];
        let bogus = s.mk_base("Bogus");
        let bogus_sym = s.base_symbol("Bogus");
        assert!(transfer_rule(&mut s, term, bogus, bogus_sym, env).is_none());
    }

    #[test]
    fn transfer_for_higher_order_argument_requires_extended_env() {
        // g : (A -> B) -> C. Discharging the argument {A} -> B needs a witness
        // of B in Γ ∪ {A}.
        let mut s = SuccinctStore::new();
        let g_ty = s.sigma(&Ty::fun(
            vec![Ty::fun(vec![Ty::base("A")], Ty::base("B"))],
            Ty::base("C"),
        ));
        let b_decl = s.sigma(&Ty::base("B"));
        let env = s.mk_env(vec![g_ty, b_decl]);
        let c = s.base_symbol("C");
        let b = s.base_symbol("B");
        let a_ty = s.mk_base("A");
        let fun_arg = s.args_of(g_ty)[0];

        let term = &match_rule(&s, BaseRequest { ret: c, env })[0];
        let extended = s.env_union(env, &[a_ty]);
        // Witness of B in the extended environment discharges the argument...
        let ok = transfer_rule(&mut s, term, fun_arg, b, extended);
        assert!(ok.is_some());
        // ...but a witness in the unextended environment does not.
        let not_ok = transfer_rule(&mut s, term, fun_arg, b, env);
        assert!(not_ok.is_none());
    }
}
