//! Type checking for terms in long normal form (Figure 2 of the paper).
//!
//! The APP rule only applies head symbols that are bound in the environment
//! and requires them to be applied to *all* of their arguments (the result of
//! the application must be a base type). The ABS rule peels leading binders
//! from the expected function type.

use std::fmt;

use crate::{Bindings, Term, Ty};

/// An error produced while checking or inferring a term's type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// The head symbol is not bound in the environment.
    UnboundHead(String),
    /// The head symbol is applied to the wrong number of arguments for long
    /// normal form (expected, actual).
    ArityMismatch {
        head: String,
        expected: usize,
        actual: usize,
    },
    /// An argument had the wrong type (head, argument index, expected, actual).
    ArgumentMismatch {
        head: String,
        index: usize,
        expected: Ty,
        actual: Ty,
    },
    /// The whole term does not have the expected type.
    Mismatch { expected: Ty, actual: Ty },
    /// The expected type has fewer arrows than the term has binders.
    TooManyBinders { binders: usize, expected: Ty },
    /// A binder's annotated type disagrees with the expected function type.
    BinderMismatch {
        name: String,
        expected: Ty,
        actual: Ty,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundHead(h) => write!(f, "unbound head symbol `{h}`"),
            TypeError::ArityMismatch {
                head,
                expected,
                actual,
            } => write!(
                f,
                "head `{head}` expects {expected} arguments but is applied to {actual}"
            ),
            TypeError::ArgumentMismatch {
                head,
                index,
                expected,
                actual,
            } => write!(
                f,
                "argument {index} of `{head}` has type {actual}, expected {expected}"
            ),
            TypeError::Mismatch { expected, actual } => {
                write!(f, "term has type {actual}, expected {expected}")
            }
            TypeError::TooManyBinders { binders, expected } => write!(
                f,
                "term binds {binders} parameters but the expected type {expected} has fewer arrows"
            ),
            TypeError::BinderMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "binder `{name}` is annotated {actual} but the expected type requires {expected}"
            ),
        }
    }
}

impl std::error::Error for TypeError {}

/// Infers the type of a term in long normal form.
///
/// The inferred type is `p1 → … → pm → v` where `p1…pm` are the binder
/// annotations and `v` is the (base) result type of the fully applied head.
///
/// # Errors
///
/// Returns a [`TypeError`] if the head is unbound, under- or over-applied, or
/// an argument does not have the type the head demands.
///
/// # Example
///
/// ```
/// use insynth_lambda::{infer, Bindings, Term, Ty};
///
/// let mut env = Bindings::new();
/// env.bind("f", Ty::fun(vec![Ty::base("A")], Ty::base("B")));
/// env.bind("a", Ty::base("A"));
/// let t = Term::app("f", vec![Term::var("a")]);
/// assert_eq!(infer(&env, &t), Ok(Ty::base("B")));
/// ```
pub fn infer(env: &Bindings, term: &Term) -> Result<Ty, TypeError> {
    let mut scratch = env.clone();
    infer_in(&mut scratch, term)
}

fn infer_in(env: &mut Bindings, term: &Term) -> Result<Ty, TypeError> {
    let mark = env.len();
    for p in &term.params {
        env.bind(p.name.clone(), p.ty.clone());
    }

    let head_ty = match env.lookup(&term.head) {
        Some(t) => t.clone(),
        None => {
            env.truncate(mark);
            return Err(TypeError::UnboundHead(term.head.clone()));
        }
    };

    let (arg_tys, ret) = head_ty.uncurry();
    if arg_tys.len() != term.args.len() {
        env.truncate(mark);
        return Err(TypeError::ArityMismatch {
            head: term.head.clone(),
            expected: arg_tys.len(),
            actual: term.args.len(),
        });
    }

    let expected_args: Vec<Ty> = arg_tys.into_iter().cloned().collect();
    let ret = ret.clone();
    for (i, (arg, expected)) in term.args.iter().zip(expected_args.iter()).enumerate() {
        let actual = check_against(env, arg, expected);
        if let Err(e) = actual {
            env.truncate(mark);
            return Err(match e {
                TypeError::Mismatch { expected, actual } => TypeError::ArgumentMismatch {
                    head: term.head.clone(),
                    index: i,
                    expected,
                    actual,
                },
                other => other,
            });
        }
    }

    env.truncate(mark);
    let param_tys: Vec<Ty> = term.params.iter().map(|p| p.ty.clone()).collect();
    Ok(Ty::fun(param_tys, ret))
}

fn check_against(env: &mut Bindings, term: &Term, expected: &Ty) -> Result<(), TypeError> {
    let actual = infer_in(env, term)?;
    if &actual == expected {
        Ok(())
    } else {
        Err(TypeError::Mismatch {
            expected: expected.clone(),
            actual,
        })
    }
}

/// Checks that `term` has type `expected` under `env` (the judgement
/// Γ ⊢ e : τ of Figure 2, restricted to long normal form).
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered.
///
/// # Example
///
/// ```
/// use insynth_lambda::{check, Bindings, Param, Term, Ty};
///
/// // ⊢ (var1 => p(var1)) : Tree -> Boolean   given p : Tree -> Boolean
/// let mut env = Bindings::new();
/// env.bind("p", Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")));
/// let t = Term::lambda(
///     vec![Param::new("var1", Ty::base("Tree"))],
///     Term::app("p", vec![Term::var("var1")]),
/// );
/// assert!(check(&env, &t, &Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean"))).is_ok());
/// ```
pub fn check(env: &Bindings, term: &Term, expected: &Ty) -> Result<(), TypeError> {
    // Binder annotations must agree with the expected arrow prefix.
    let (expected_args, _) = expected.uncurry();
    if term.params.len() > expected_args.len() {
        return Err(TypeError::TooManyBinders {
            binders: term.params.len(),
            expected: expected.clone(),
        });
    }
    for (p, want) in term.params.iter().zip(expected_args.iter()) {
        if &p.ty != *want {
            return Err(TypeError::BinderMismatch {
                name: p.name.clone(),
                expected: (*want).clone(),
                actual: p.ty.clone(),
            });
        }
    }

    let actual = infer(env, term)?;
    if &actual == expected {
        Ok(())
    } else {
        Err(TypeError::Mismatch {
            expected: expected.clone(),
            actual,
        })
    }
}

/// Returns `true` if the term is in long normal form with respect to `env` and
/// the expected type `expected`: every head is fully applied, the body type is
/// a base type, and enough binders are present to consume every arrow of the
/// expected type.
pub fn is_long_normal_form(env: &Bindings, term: &Term, expected: &Ty) -> bool {
    let (expected_args, _) = expected.uncurry();
    term.params.len() == expected_args.len() && check(env, term, expected).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Param;

    fn io_env() -> Bindings {
        let mut env = Bindings::new();
        env.bind("name", Ty::base("String"));
        env.bind(
            "FileInputStream",
            Ty::fun(vec![Ty::base("String")], Ty::base("FileInputStream")),
        );
        env.bind(
            "BufferedInputStream",
            Ty::fun(
                vec![Ty::base("FileInputStream")],
                Ty::base("BufferedInputStream"),
            ),
        );
        env
    }

    #[test]
    fn infers_nested_application() {
        let env = io_env();
        let t = Term::app(
            "BufferedInputStream",
            vec![Term::app("FileInputStream", vec![Term::var("name")])],
        );
        assert_eq!(infer(&env, &t), Ok(Ty::base("BufferedInputStream")));
    }

    #[test]
    fn rejects_unbound_head() {
        let env = io_env();
        let t = Term::var("missing");
        assert_eq!(
            infer(&env, &t),
            Err(TypeError::UnboundHead("missing".into()))
        );
    }

    #[test]
    fn rejects_partial_application() {
        let env = io_env();
        // FileInputStream not applied to its argument: not LNF.
        let t = Term::var("FileInputStream");
        assert!(matches!(
            infer(&env, &t),
            Err(TypeError::ArityMismatch {
                expected: 1,
                actual: 0,
                ..
            })
        ));
    }

    #[test]
    fn rejects_wrong_argument_type() {
        let mut env = io_env();
        env.bind("n", Ty::base("Int"));
        let t = Term::app("FileInputStream", vec![Term::var("n")]);
        assert!(matches!(
            infer(&env, &t),
            Err(TypeError::ArgumentMismatch { index: 0, .. })
        ));
    }

    #[test]
    fn checks_lambda_against_function_type() {
        let mut env = Bindings::new();
        env.bind("p", Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")));
        let t = Term::lambda(
            vec![Param::new("var1", Ty::base("Tree"))],
            Term::app("p", vec![Term::var("var1")]),
        );
        let goal = Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean"));
        assert!(check(&env, &t, &goal).is_ok());
        assert!(is_long_normal_form(&env, &t, &goal));
    }

    #[test]
    fn eta_short_term_is_not_long_normal_form() {
        // p alone has the right type but is not in LNF for Tree -> Boolean.
        let mut env = Bindings::new();
        env.bind("p", Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")));
        let goal = Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean"));
        let t = Term::var("p");
        assert!(!is_long_normal_form(&env, &t, &goal));
    }

    #[test]
    fn binder_annotation_must_match_goal() {
        let mut env = Bindings::new();
        env.bind("p", Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")));
        let t = Term::lambda(
            vec![Param::new("var1", Ty::base("Other"))],
            Term::app("p", vec![Term::var("var1")]),
        );
        let goal = Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean"));
        assert!(matches!(
            check(&env, &t, &goal),
            Err(TypeError::BinderMismatch { .. })
        ));
    }

    #[test]
    fn too_many_binders_is_reported() {
        let mut env = Bindings::new();
        env.bind("a", Ty::base("A"));
        let t = Term::lambda(vec![Param::new("x", Ty::base("B"))], Term::var("a"));
        assert!(matches!(
            check(&env, &t, &Ty::base("A")),
            Err(TypeError::TooManyBinders { .. })
        ));
    }

    #[test]
    fn binder_shadowing_is_respected() {
        let mut env = Bindings::new();
        env.bind("x", Ty::base("Outer"));
        env.bind("f", Ty::fun(vec![Ty::base("Inner")], Ty::base("R")));
        let t = Term::lambda(
            vec![Param::new("x", Ty::base("Inner"))],
            Term::app("f", vec![Term::var("x")]),
        );
        let goal = Ty::fun(vec![Ty::base("Inner")], Ty::base("R"));
        assert!(check(&env, &t, &goal).is_ok());
    }

    #[test]
    fn higher_order_argument_checks() {
        // FilterTypeTreeTraverser : (Tree -> Boolean) -> FilterTypeTreeTraverser
        let mut env = Bindings::new();
        env.bind(
            "FilterTypeTreeTraverser",
            Ty::fun(
                vec![Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean"))],
                Ty::base("FilterTypeTreeTraverser"),
            ),
        );
        env.bind("p", Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")));
        let t = Term::app(
            "FilterTypeTreeTraverser",
            vec![Term::lambda(
                vec![Param::new("var1", Ty::base("Tree"))],
                Term::app("p", vec![Term::var("var1")]),
            )],
        );
        assert_eq!(infer(&env, &t), Ok(Ty::base("FilterTypeTreeTraverser")));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = TypeError::ArityMismatch {
            head: "f".into(),
            expected: 2,
            actual: 1,
        };
        assert_eq!(
            err.to_string(),
            "head `f` expects 2 arguments but is applied to 1"
        );
    }
}
