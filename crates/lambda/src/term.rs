//! Lambda terms in long normal form.

use std::fmt;

use crate::Ty;

/// A typed binder `x : τ` introduced by a leading lambda.
///
/// # Example
///
/// ```
/// use insynth_lambda::{Param, Ty};
/// let p = Param::new("var1", Ty::base("Tree"));
/// assert_eq!(p.name, "var1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Param {
    /// Binder name.
    pub name: String,
    /// Binder type.
    pub ty: Ty,
}

impl Param {
    /// Creates a binder.
    pub fn new(name: impl Into<String>, ty: Ty) -> Self {
        Param {
            name: name.into(),
            ty,
        }
    }
}

/// A lambda term in long normal form: `λ p1 … pm . head(e1, …, en)`.
///
/// In long normal form (paper Definition 3.1) the head is always a declared
/// symbol or a bound variable applied to exactly as many arguments as its type
/// demands, and the body has a base type. A term with no binders and no
/// arguments is just a variable reference.
///
/// # Example
///
/// ```
/// use insynth_lambda::{Param, Term, Ty};
///
/// // var1 => p(var1)   (the §2.2 higher-order example)
/// let t = Term::lambda(
///     vec![Param::new("var1", Ty::base("Tree"))],
///     Term::app("p", vec![Term::var("var1")]),
/// );
/// assert_eq!(t.to_string(), "var1 => p(var1)");
/// assert_eq!(t.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Term {
    /// Leading lambda binders (may be empty).
    pub params: Vec<Param>,
    /// The head symbol: a declaration name or a bound variable.
    pub head: String,
    /// The arguments the head is applied to (may be empty).
    pub args: Vec<Term>,
}

impl Term {
    /// A bare variable reference.
    pub fn var(name: impl Into<String>) -> Term {
        Term {
            params: Vec::new(),
            head: name.into(),
            args: Vec::new(),
        }
    }

    /// An application `head(args…)` with no leading binders.
    pub fn app(head: impl Into<String>, args: Vec<Term>) -> Term {
        Term {
            params: Vec::new(),
            head: head.into(),
            args,
        }
    }

    /// A lambda abstraction `params => body`.
    ///
    /// The binders are *prepended* to the body's existing binders so that
    /// `lambda(p, lambda(q, b))` and `lambda(p ++ q, b)` build the same term,
    /// mirroring the flattened `λx1…xm.…` notation of the paper.
    pub fn lambda(params: Vec<Param>, body: Term) -> Term {
        let mut all = params;
        all.extend(body.params);
        Term {
            params: all,
            head: body.head,
            args: body.args,
        }
    }

    /// The depth `D` of the term as defined in §3.1:
    /// `D(λx̄.a) = 1` and `D(λx̄.f e1…en) = 1 + max D(ei)`.
    pub fn depth(&self) -> usize {
        1 + self.args.iter().map(Term::depth).max().unwrap_or(0)
    }

    /// Total number of symbol occurrences (binders + head + recursively in
    /// arguments). This is the "size" reported in Table 2 when coercions are
    /// counted.
    pub fn symbol_count(&self) -> usize {
        self.params.len() + 1 + self.args.iter().map(Term::symbol_count).sum::<usize>()
    }

    /// All head-symbol occurrences in the term, outermost first.
    pub fn head_symbols(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_heads(&mut out);
        out
    }

    fn collect_heads<'a>(&'a self, out: &mut Vec<&'a str>) {
        out.push(&self.head);
        for a in &self.args {
            a.collect_heads(out);
        }
    }

    /// Returns `true` if the head symbol of this term or of any sub-term
    /// satisfies the predicate.
    pub fn any_head(&self, pred: &dyn Fn(&str) -> bool) -> bool {
        pred(&self.head) || self.args.iter().any(|a| a.any_head(pred))
    }

    /// Rewrites every node of the term bottom-up with `f`.
    pub fn map_bottom_up(&self, f: &dyn Fn(Term) -> Term) -> Term {
        let args = self.args.iter().map(|a| a.map_bottom_up(f)).collect();
        f(Term {
            params: self.params.clone(),
            head: self.head.clone(),
            args,
        })
    }

    /// Renames every binder (and its bound occurrences) to `v1`, `v2`, … in
    /// pre-order, producing a canonical representative of the term's
    /// α-equivalence class. Used to compare terms produced by different
    /// fresh-name schemes (e.g. the engine vs. the reference RCN function).
    ///
    /// # Example
    ///
    /// ```
    /// use insynth_lambda::{Param, Term, Ty};
    /// let a = Term::lambda(vec![Param::new("x9", Ty::base("T"))], Term::var("x9"));
    /// let b = Term::lambda(vec![Param::new("y", Ty::base("T"))], Term::var("y"));
    /// assert_eq!(a.alpha_normalize(), b.alpha_normalize());
    /// ```
    pub fn alpha_normalize(&self) -> Term {
        let mut counter = 0usize;
        let mut renaming: Vec<(String, String)> = Vec::new();
        self.alpha_rec(&mut counter, &mut renaming)
    }

    fn alpha_rec(&self, counter: &mut usize, renaming: &mut Vec<(String, String)>) -> Term {
        let mark = renaming.len();
        let params: Vec<Param> = self
            .params
            .iter()
            .map(|p| {
                *counter += 1;
                let fresh = format!("v{counter}");
                renaming.push((p.name.clone(), fresh.clone()));
                Param::new(fresh, p.ty.clone())
            })
            .collect();
        let head = renaming
            .iter()
            .rev()
            .find(|(old, _)| old == &self.head)
            .map(|(_, new)| new.clone())
            .unwrap_or_else(|| self.head.clone());
        let args = self
            .args
            .iter()
            .map(|a| a.alpha_rec(counter, renaming))
            .collect();
        renaming.truncate(mark);
        Term { params, head, args }
    }

    /// Free variables of the term: head symbols that are not bound by an
    /// enclosing binder.
    pub fn free_vars(&self) -> Vec<String> {
        let mut bound = Vec::new();
        let mut free = Vec::new();
        self.collect_free(&mut bound, &mut free);
        free
    }

    fn collect_free(&self, bound: &mut Vec<String>, free: &mut Vec<String>) {
        let before = bound.len();
        bound.extend(self.params.iter().map(|p| p.name.clone()));
        if !bound.contains(&self.head) && !free.contains(&self.head) {
            free.push(self.head.clone());
        }
        for a in &self.args {
            a.collect_free(bound, free);
        }
        bound.truncate(before);
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.params.is_empty() {
            if self.params.len() == 1 {
                write!(f, "{} => ", self.params[0].name)?;
            } else {
                let names: Vec<&str> = self.params.iter().map(|p| p.name.as_str()).collect();
                write!(f, "({}) => ", names.join(", "))?;
            }
        }
        write!(f, "{}", self.head)?;
        if !self.args.is_empty() {
            let args: Vec<String> = self.args.iter().map(Term::to_string).collect();
            write!(f, "({})", args.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi_example() -> Term {
        // new BufferedInputStream(new FileInputStream(name)) modulo rendering
        Term::app(
            "BufferedInputStream",
            vec![Term::app("FileInputStream", vec![Term::var("name")])],
        )
    }

    #[test]
    fn var_displays_bare() {
        assert_eq!(Term::var("body").to_string(), "body");
    }

    #[test]
    fn application_displays_with_parens() {
        assert_eq!(
            bi_example().to_string(),
            "BufferedInputStream(FileInputStream(name))"
        );
    }

    #[test]
    fn multi_param_lambda_display() {
        let t = Term::lambda(
            vec![
                Param::new("a", Ty::base("A")),
                Param::new("b", Ty::base("B")),
            ],
            Term::app("f", vec![Term::var("a"), Term::var("b")]),
        );
        assert_eq!(t.to_string(), "(a, b) => f(a, b)");
    }

    #[test]
    fn lambda_flattens_nested_binders() {
        let inner = Term::lambda(vec![Param::new("b", Ty::base("B"))], Term::var("x"));
        let outer = Term::lambda(vec![Param::new("a", Ty::base("A"))], inner);
        assert_eq!(outer.params.len(), 2);
        assert_eq!(outer.params[0].name, "a");
        assert_eq!(outer.params[1].name, "b");
    }

    #[test]
    fn depth_matches_paper_definition() {
        assert_eq!(Term::var("a").depth(), 1);
        assert_eq!(bi_example().depth(), 3);
    }

    #[test]
    fn symbol_count_counts_binders_heads_and_args() {
        // var1 => p(var1): binder + p + var1 = 3
        let t = Term::lambda(
            vec![Param::new("var1", Ty::base("Tree"))],
            Term::app("p", vec![Term::var("var1")]),
        );
        assert_eq!(t.symbol_count(), 3);
    }

    #[test]
    fn head_symbols_outermost_first() {
        assert_eq!(
            bi_example().head_symbols(),
            vec!["BufferedInputStream", "FileInputStream", "name"]
        );
    }

    #[test]
    fn free_vars_exclude_bound_binders() {
        let t = Term::lambda(
            vec![Param::new("var1", Ty::base("Tree"))],
            Term::app("p", vec![Term::var("var1")]),
        );
        assert_eq!(t.free_vars(), vec!["p".to_owned()]);
    }

    #[test]
    fn any_head_finds_nested_symbols() {
        assert!(bi_example().any_head(&|h| h == "FileInputStream"));
        assert!(!bi_example().any_head(&|h| h == "Missing"));
    }

    #[test]
    fn map_bottom_up_can_rename_heads() {
        let renamed = bi_example().map_bottom_up(&|mut t| {
            if t.head == "name" {
                t.head = "path".to_owned();
            }
            t
        });
        assert_eq!(
            renamed.to_string(),
            "BufferedInputStream(FileInputStream(path))"
        );
    }
}
