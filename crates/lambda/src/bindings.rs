//! Ordered name ↦ type environments with shadowing.

use std::fmt;

use crate::Ty;

/// An ordered list of `name : τ` bindings (a type environment Γ).
///
/// Later bindings shadow earlier ones with the same name, which models lambda
/// binders shadowing outer declarations during type checking.
///
/// # Example
///
/// ```
/// use insynth_lambda::{Bindings, Ty};
///
/// let mut env = Bindings::new();
/// env.bind("x", Ty::base("Int"));
/// env.bind("x", Ty::base("String"));
/// assert_eq!(env.lookup("x"), Some(&Ty::base("String")));
/// assert_eq!(env.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bindings {
    entries: Vec<(String, Ty)>,
}

impl Bindings {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a binding, shadowing any earlier binding of the same name.
    pub fn bind(&mut self, name: impl Into<String>, ty: Ty) {
        self.entries.push((name.into(), ty));
    }

    /// Looks up the innermost (most recently added) binding of `name`.
    pub fn lookup(&self, name: &str) -> Option<&Ty> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// Returns `true` if `name` is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.lookup(name).is_some()
    }

    /// Number of bindings, counting shadowed ones.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no bindings are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, type)` pairs in binding order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Ty)> {
        self.entries.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Truncates back to `len` bindings; used to pop binders after checking a
    /// sub-term.
    pub fn truncate(&mut self, len: usize) {
        self.entries.truncate(len);
    }
}

impl FromIterator<(String, Ty)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (String, Ty)>>(iter: I) -> Self {
        Bindings {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Ty)> for Bindings {
    fn extend<I: IntoIterator<Item = (String, Ty)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .entries
            .iter()
            .map(|(n, t)| format!("{n} : {t}"))
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_missing_is_none() {
        let env = Bindings::new();
        assert_eq!(env.lookup("x"), None);
        assert!(!env.contains("x"));
        assert!(env.is_empty());
    }

    #[test]
    fn later_bindings_shadow_earlier_ones() {
        let mut env = Bindings::new();
        env.bind("x", Ty::base("A"));
        env.bind("x", Ty::base("B"));
        assert_eq!(env.lookup("x"), Some(&Ty::base("B")));
    }

    #[test]
    fn truncate_pops_binders() {
        let mut env = Bindings::new();
        env.bind("x", Ty::base("A"));
        let mark = env.len();
        env.bind("y", Ty::base("B"));
        env.truncate(mark);
        assert!(env.contains("x"));
        assert!(!env.contains("y"));
    }

    #[test]
    fn display_is_readable() {
        let mut env = Bindings::new();
        env.bind("a", Ty::base("Int"));
        env.bind("f", Ty::fun(vec![Ty::base("Int")], Ty::base("String")));
        assert_eq!(env.to_string(), "{a : Int, f : Int -> String}");
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut env: Bindings = vec![("a".to_owned(), Ty::base("A"))].into_iter().collect();
        env.extend(vec![("b".to_owned(), Ty::base("B"))]);
        assert_eq!(env.len(), 2);
        assert!(env.contains("b"));
    }
}
