//! The simply typed lambda calculus substrate used by InSynth (paper §3.1).
//!
//! InSynth synthesizes *terms in long normal form* (LNF): `λx1…xm. f e1 … en`
//! where `f` is a declared symbol applied to exactly as many arguments as its
//! type demands and the body's type is a base type. This crate provides:
//!
//! * [`Ty`] — simple types `τ ::= v | τ → τ` over named base types,
//! * [`Term`] — terms already in LNF shape (leading binders, a head symbol and
//!   fully applied arguments),
//! * [`Bindings`] — ordered name ↦ type environments with shadowing,
//! * [`check`] / [`infer`](check::infer) — the typing rules of Figure 2,
//!   restricted (as in the paper) to long normal form.
//!
//! # Example
//!
//! ```
//! use insynth_lambda::{Bindings, Ty, Term, check};
//!
//! // f : String -> File,  name : String   ⊢   f(name) : File
//! let mut env = Bindings::new();
//! env.bind("f", Ty::fun(vec![Ty::base("String")], Ty::base("File")));
//! env.bind("name", Ty::base("String"));
//!
//! let term = Term::app("f", vec![Term::var("name")]);
//! assert!(check(&env, &term, &Ty::base("File")).is_ok());
//! assert_eq!(term.to_string(), "f(name)");
//! ```

mod bindings;
mod checker;
mod term;
mod ty;

pub use bindings::Bindings;
pub use checker::{check, infer, is_long_normal_form, TypeError};
pub use term::{Param, Term};
pub use ty::Ty;
