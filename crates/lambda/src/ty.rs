//! Simple types `τ ::= v | τ → τ`.

use std::fmt;

/// A simple type: either a named base type or a function type.
///
/// Function types associate to the right, so `A → B → C` is
/// `Arrow(A, Arrow(B, C))` and describes a function taking an `A` and a `B`
/// (curried) and returning a `C`.
///
/// # Example
///
/// ```
/// use insynth_lambda::Ty;
///
/// let t = Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C"));
/// assert_eq!(t.to_string(), "A -> B -> C");
/// assert_eq!(t.arity(), 2);
/// assert_eq!(t.result_base(), "C");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// A named base type such as `Int`, `String` or `FileInputStream`.
    Base(String),
    /// A function type `τ1 → τ2`.
    Arrow(Box<Ty>, Box<Ty>),
}

impl Ty {
    /// Creates a base type with the given name.
    pub fn base(name: impl Into<String>) -> Ty {
        Ty::Base(name.into())
    }

    /// Creates the curried function type `args[0] → … → args[n-1] → ret`.
    ///
    /// With an empty `args` this is just `ret`.
    pub fn fun(args: Vec<Ty>, ret: Ty) -> Ty {
        args.into_iter()
            .rev()
            .fold(ret, |acc, a| Ty::Arrow(Box::new(a), Box::new(acc)))
    }

    /// Returns `true` for base types.
    pub fn is_base(&self) -> bool {
        matches!(self, Ty::Base(_))
    }

    /// The number of curried arguments before the final base result.
    pub fn arity(&self) -> usize {
        match self {
            Ty::Base(_) => 0,
            Ty::Arrow(_, rest) => 1 + rest.arity(),
        }
    }

    /// Splits a curried type into its argument list and final result type.
    ///
    /// The result component is always a base type (the full uncurrying).
    ///
    /// # Example
    ///
    /// ```
    /// use insynth_lambda::Ty;
    /// let t = Ty::fun(vec![Ty::base("A")], Ty::base("B"));
    /// let (args, ret) = t.uncurry();
    /// assert_eq!(args, vec![&Ty::base("A")]);
    /// assert_eq!(ret, &Ty::base("B"));
    /// ```
    pub fn uncurry(&self) -> (Vec<&Ty>, &Ty) {
        let mut args = Vec::new();
        let mut cur = self;
        while let Ty::Arrow(a, rest) = cur {
            args.push(a.as_ref());
            cur = rest.as_ref();
        }
        (args, cur)
    }

    /// The name of the final base result type.
    ///
    /// # Panics
    ///
    /// Never panics: by construction the fully uncurried result is a base type.
    pub fn result_base(&self) -> &str {
        match self.uncurry().1 {
            Ty::Base(name) => name,
            Ty::Arrow(..) => unreachable!("uncurry always ends at a base type"),
        }
    }

    /// Iterates over every base type name mentioned anywhere in the type.
    pub fn base_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_base_names(&mut out);
        out
    }

    fn collect_base_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Ty::Base(name) => out.push(name),
            Ty::Arrow(a, b) => {
                a.collect_base_names(out);
                b.collect_base_names(out);
            }
        }
    }

    /// Structural size of the type (number of base type occurrences).
    pub fn size(&self) -> usize {
        match self {
            Ty::Base(_) => 1,
            Ty::Arrow(a, b) => a.size() + b.size(),
        }
    }

    /// Maximum arrow-nesting depth. Base types have order 0; a first-order
    /// function has order 1; a function taking a function has order 2, etc.
    pub fn order(&self) -> usize {
        match self {
            Ty::Base(_) => 0,
            Ty::Arrow(a, b) => usize::max(a.order() + 1, b.order()),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Base(name) => write!(f, "{name}"),
            Ty::Arrow(a, b) => {
                if a.is_base() {
                    write!(f, "{a} -> {b}")
                } else {
                    write!(f, "({a}) -> {b}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fun_with_no_args_is_identity() {
        assert_eq!(Ty::fun(vec![], Ty::base("A")), Ty::base("A"));
    }

    #[test]
    fn fun_curries_right_associatively() {
        let t = Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C"));
        match &t {
            Ty::Arrow(a, rest) => {
                assert_eq!(**a, Ty::base("A"));
                match rest.as_ref() {
                    Ty::Arrow(b, c) => {
                        assert_eq!(**b, Ty::base("B"));
                        assert_eq!(**c, Ty::base("C"));
                    }
                    _ => panic!("expected nested arrow"),
                }
            }
            _ => panic!("expected arrow"),
        }
    }

    #[test]
    fn arity_counts_curried_arguments() {
        let t = Ty::fun(
            vec![Ty::base("A"), Ty::base("B"), Ty::base("C")],
            Ty::base("D"),
        );
        assert_eq!(t.arity(), 3);
        assert_eq!(Ty::base("A").arity(), 0);
    }

    #[test]
    fn uncurry_round_trips_with_fun() {
        let args = vec![Ty::base("A"), Ty::fun(vec![Ty::base("B")], Ty::base("C"))];
        let t = Ty::fun(args.clone(), Ty::base("D"));
        let (got_args, ret) = t.uncurry();
        let got_args: Vec<Ty> = got_args.into_iter().cloned().collect();
        assert_eq!(got_args, args);
        assert_eq!(ret, &Ty::base("D"));
    }

    #[test]
    fn display_parenthesizes_higher_order_arguments() {
        let hof = Ty::fun(
            vec![Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean"))],
            Ty::base("FilterTypeTreeTraverser"),
        );
        assert_eq!(
            hof.to_string(),
            "(Tree -> Boolean) -> FilterTypeTreeTraverser"
        );
    }

    #[test]
    fn result_base_skips_all_arrows() {
        let t = Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C"));
        assert_eq!(t.result_base(), "C");
        assert_eq!(Ty::base("X").result_base(), "X");
    }

    #[test]
    fn base_names_lists_every_occurrence() {
        let t = Ty::fun(vec![Ty::base("A"), Ty::base("A")], Ty::base("B"));
        assert_eq!(t.base_names(), vec!["A", "A", "B"]);
    }

    #[test]
    fn order_distinguishes_higher_order_types() {
        assert_eq!(Ty::base("A").order(), 0);
        assert_eq!(Ty::fun(vec![Ty::base("A")], Ty::base("B")).order(), 1);
        let hof = Ty::fun(
            vec![Ty::fun(vec![Ty::base("A")], Ty::base("B"))],
            Ty::base("C"),
        );
        assert_eq!(hof.order(), 2);
    }

    #[test]
    fn size_counts_base_occurrences() {
        let t = Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C"));
        assert_eq!(t.size(), 3);
    }
}
