//! Subtyping via coercion functions (paper §6).
//!
//! Each subtype edge `v1 <: v2` is modelled by a fresh, low-weight coercion
//! declaration `coerce$v1$v2 : v1 → v2`. Coercions participate in pattern
//! construction and term reconstruction like ordinary declarations, and are
//! erased from the snippets shown to the user.

use std::collections::{HashMap, HashSet};

use insynth_lambda::{Term, Ty};

use crate::decl::{DeclKind, Declaration};

/// Name prefix identifying coercion declarations.
pub const COERCION_PREFIX: &str = "coerce$";

/// The canonical name of the coercion function witnessing `sub <: sup`.
pub fn coercion_name(sub: &str, sup: &str) -> String {
    format!("{COERCION_PREFIX}{sub}${sup}")
}

/// Returns `true` if a head symbol names a coercion function.
pub fn is_coercion(name: &str) -> bool {
    name.starts_with(COERCION_PREFIX)
}

/// A set of declared subtype edges over base (class) types.
///
/// # Example
///
/// ```
/// use insynth_core::SubtypeLattice;
///
/// let mut lattice = SubtypeLattice::new();
/// lattice.add("Panel", "Container");
/// lattice.add("Container", "Component");
/// assert!(lattice.is_subtype("Panel", "Component")); // transitivity
/// assert!(lattice.is_subtype("Panel", "Panel"));     // reflexivity
/// assert!(!lattice.is_subtype("Component", "Panel"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubtypeLattice {
    edges: Vec<(String, String)>,
}

impl SubtypeLattice {
    /// Creates an empty lattice (no subtyping).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the direct subtype edge `sub <: sup`.
    pub fn add(&mut self, sub: impl Into<String>, sup: impl Into<String>) {
        let edge = (sub.into(), sup.into());
        if !self.edges.contains(&edge) {
            self.edges.push(edge);
        }
    }

    /// The direct edges, in insertion order.
    pub fn direct_edges(&self) -> &[(String, String)] {
        &self.edges
    }

    /// The transitive (but not reflexive) closure of the declared edges,
    /// deterministically ordered.
    pub fn transitive_closure(&self) -> Vec<(String, String)> {
        let mut supers: HashMap<&str, HashSet<&str>> = HashMap::new();
        for (sub, sup) in &self.edges {
            supers.entry(sub.as_str()).or_default().insert(sup.as_str());
        }
        // Floyd-Warshall style saturation over the small class graph.
        loop {
            let mut added = false;
            let snapshot: Vec<(String, String)> = supers
                .iter()
                .flat_map(|(&s, sups)| sups.iter().map(move |&p| (s.to_owned(), p.to_owned())))
                .collect();
            for (sub, mid) in &snapshot {
                let next: Vec<&str> = supers
                    .get(mid.as_str())
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                for sup in next {
                    let entry = supers.entry(self.canonical(sub)).or_default();
                    if entry.insert(self.canonical(sup)) {
                        added = true;
                    }
                }
            }
            if !added {
                break;
            }
        }
        let mut out: Vec<(String, String)> = supers
            .into_iter()
            .flat_map(|(sub, sups)| {
                sups.into_iter()
                    .map(move |sup| (sub.to_owned(), sup.to_owned()))
            })
            .collect();
        out.sort();
        out
    }

    /// Returns `true` if `sub <: sup` holds in the reflexive-transitive
    /// closure.
    pub fn is_subtype(&self, sub: &str, sup: &str) -> bool {
        if sub == sup {
            return true;
        }
        self.transitive_closure()
            .iter()
            .any(|(a, b)| a == sub && b == sup)
    }

    /// One coercion declaration per pair of the transitive closure, with the
    /// low Table 1 weight for coercions.
    pub fn coercion_declarations(&self) -> Vec<Declaration> {
        self.transitive_closure()
            .into_iter()
            .map(|(sub, sup)| {
                Declaration::new(
                    coercion_name(&sub, &sup),
                    Ty::fun(vec![Ty::base(sub)], Ty::base(sup)),
                    DeclKind::Coercion,
                )
            })
            .collect()
    }

    /// Maps a name back to its canonical `&str` key stored in the edge list so
    /// that the closure does not allocate duplicate keys.
    fn canonical(&self, name: &str) -> &str {
        for (a, b) in &self.edges {
            if a == name {
                return a;
            }
            if b == name {
                return b;
            }
        }
        // Names in the closure always originate from an edge endpoint.
        unreachable!("closure names originate from declared edges")
    }
}

/// Removes coercion applications from a term: `coerce$A$B(e)` becomes `e`
/// (recursively). Binders attached to a coercion node are re-attached to the
/// coerced sub-term so that long normal form is preserved.
pub fn erase_coercions(term: &Term) -> Term {
    if is_coercion(&term.head) && term.args.len() == 1 {
        let inner = erase_coercions(&term.args[0]);
        let mut params = term.params.clone();
        params.extend(inner.params);
        return Term {
            params,
            head: inner.head,
            args: inner.args,
        };
    }
    Term {
        params: term.params.clone(),
        head: term.head.clone(),
        args: term.args.iter().map(erase_coercions).collect(),
    }
}

/// Number of coercion applications in a term (the difference between the `c`
/// and `nc` snippet sizes of Table 2).
pub fn count_coercions(term: &Term) -> usize {
    let here = usize::from(is_coercion(&term.head));
    here + term.args.iter().map(count_coercions).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn awt_lattice() -> SubtypeLattice {
        let mut l = SubtypeLattice::new();
        l.add("Panel", "Container");
        l.add("Container", "Component");
        l.add("Panel", "Accessible");
        l
    }

    #[test]
    fn closure_contains_direct_and_transitive_edges() {
        let closure = awt_lattice().transitive_closure();
        assert!(closure.contains(&("Panel".into(), "Container".into())));
        assert!(closure.contains(&("Panel".into(), "Component".into())));
        assert!(closure.contains(&("Container".into(), "Component".into())));
        assert!(!closure.contains(&("Component".into(), "Panel".into())));
    }

    #[test]
    fn is_subtype_is_reflexive_and_transitive_but_not_symmetric() {
        let l = awt_lattice();
        assert!(l.is_subtype("Panel", "Panel"));
        assert!(l.is_subtype("Panel", "Component"));
        assert!(!l.is_subtype("Component", "Container"));
    }

    #[test]
    fn coercion_declarations_have_low_weight_kind_and_arrow_type() {
        let decls = awt_lattice().coercion_declarations();
        assert_eq!(decls.len(), 4);
        let panel_to_container = decls
            .iter()
            .find(|d| d.name == coercion_name("Panel", "Container"))
            .expect("Panel -> Container coercion must exist");
        assert_eq!(panel_to_container.kind, DeclKind::Coercion);
        assert_eq!(
            panel_to_container.ty,
            Ty::fun(vec![Ty::base("Panel")], Ty::base("Container"))
        );
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut l = SubtypeLattice::new();
        l.add("A", "B");
        l.add("A", "B");
        assert_eq!(l.direct_edges().len(), 1);
    }

    #[test]
    fn erase_removes_nested_coercions() {
        // getLayout(coerce$Panel$Container(panel))  →  getLayout(panel)
        let term = Term::app(
            "getLayout",
            vec![Term::app(
                coercion_name("Panel", "Container"),
                vec![Term::var("panel")],
            )],
        );
        let erased = erase_coercions(&term);
        assert_eq!(erased.to_string(), "getLayout(panel)");
        assert_eq!(count_coercions(&term), 1);
        assert_eq!(count_coercions(&erased), 0);
    }

    #[test]
    fn erase_preserves_binders_on_coercion_nodes() {
        use insynth_lambda::Param;
        let term = Term {
            params: vec![Param::new("x", Ty::base("Panel"))],
            head: coercion_name("Panel", "Container"),
            args: vec![Term::var("x")],
        };
        let erased = erase_coercions(&term);
        assert_eq!(erased.to_string(), "x => x");
    }

    #[test]
    fn names_round_trip_through_is_coercion() {
        assert!(is_coercion(&coercion_name("A", "B")));
        assert!(!is_coercion("getLayout"));
    }
}
