//! The weight function of §4 and Table 1.
//!
//! Weights steer the backward search (requests are processed cheapest-first)
//! and rank the reconstructed snippets (lowest total weight first). A
//! declaration's weight combines lexical proximity (Table 1's constants) with
//! corpus frequency for imported symbols.

use std::cmp::Ordering;

use crate::decl::{DeclKind, Declaration};

/// A totally ordered `f64` wrapper so weights can key priority queues.
///
/// # Example
///
/// ```
/// use insynth_core::Weight;
/// assert!(Weight::new(1.0) < Weight::new(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weight(f64);

impl Weight {
    /// Wraps a raw weight value.
    ///
    /// # Panics
    ///
    /// Panics if the value is NaN.
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "weights must not be NaN");
        Weight(value)
    }

    /// The weight used when no declaration produces a type (effectively
    /// "unreachable, explore last").
    pub const UNKNOWN: Weight = Weight(1.0e9);

    /// Zero weight (holes in partial expressions weigh nothing, §5.5).
    pub const ZERO: Weight = Weight(0.0);

    /// Positive infinity: the completion bound of an uninhabited goal. No
    /// finite term can ever reach it, so `INFINITY` both marks dead holes and
    /// absorbs sums (`x.plus(INFINITY) == INFINITY`).
    pub const INFINITY: Weight = Weight(f64::INFINITY);

    /// The underlying value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Weight addition.
    pub fn plus(self, other: Weight) -> Weight {
        Weight(self.0 + other.0)
    }

    /// Returns `true` for weights ≥ 0.
    ///
    /// All of Table 1 is non-negative, but [`Declaration::with_weight`]
    /// overrides are unrestricted. Weight-based pruning (the derivation-graph
    /// walk's branch-and-bound) is admissible only when every weight a search
    /// step can add is non-negative, so the graph checks this once at build
    /// time and disables the pruning otherwise.
    ///
    /// [`Declaration::with_weight`]: crate::Declaration::with_weight
    pub fn is_non_negative(self) -> bool {
        self.0 >= 0.0
    }

    /// Returns `true` unless the weight is [`Weight::INFINITY`] (or negative
    /// infinity, which no configuration produces).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Eq for Weight {}

impl PartialOrd for Weight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weight {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The constants of Table 1.
///
/// The paper reports that result quality "is not highly sensitive to the
/// precise values"; they are nevertheless configurable for the ablation
/// benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightTable {
    /// Weight of a lambda binder occurrence.
    pub lambda: f64,
    /// Weight of a local (same-method) declaration.
    pub local: f64,
    /// Weight of a subtyping coercion function.
    pub coercion: f64,
    /// Weight of a member of the enclosing class.
    pub class_member: f64,
    /// Weight of a member of the enclosing package.
    pub package: f64,
    /// Weight of a literal placeholder.
    pub literal: f64,
    /// Base weight of an imported symbol.
    pub imported_base: f64,
    /// Scale of the frequency-dependent part of an imported symbol's weight:
    /// `imported_base + imported_scale / (1 + f(x))`.
    pub imported_scale: f64,
}

impl Default for WeightTable {
    fn default() -> Self {
        WeightTable {
            lambda: 1.0,
            local: 5.0,
            coercion: 10.0,
            class_member: 20.0,
            package: 25.0,
            literal: 200.0,
            imported_base: 215.0,
            imported_scale: 785.0,
        }
    }
}

/// Which variant of the weight function to use — the three columns groups of
/// Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightMode {
    /// All declarations weigh the same; the search degenerates to (roughly)
    /// breadth-first enumeration by size. Table 2 column group "No weights".
    NoWeights,
    /// Table 1 proximity weights but no corpus: every imported symbol is
    /// treated as having frequency 0. Column group "No corpus".
    NoCorpus,
    /// Full weights: proximity plus corpus frequencies. Column group "All".
    Full,
}

/// The weight function `w`: configuration plus evaluation helpers.
///
/// # Example
///
/// ```
/// use insynth_core::{Declaration, DeclKind, WeightConfig, WeightMode};
/// use insynth_lambda::Ty;
///
/// let w = WeightConfig::new(WeightMode::Full);
/// let frequent = Declaration::simple("println", Ty::base("Unit"), DeclKind::Imported)
///     .with_frequency(5000);
/// let rare = Declaration::simple("obscure", Ty::base("Unit"), DeclKind::Imported)
///     .with_frequency(0);
/// assert!(w.declaration_weight(&frequent) < w.declaration_weight(&rare));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightConfig {
    /// Which variant is active.
    pub mode: WeightMode,
    /// The Table 1 constants.
    pub table: WeightTable,
}

impl Default for WeightConfig {
    fn default() -> Self {
        WeightConfig {
            mode: WeightMode::Full,
            table: WeightTable::default(),
        }
    }
}

impl WeightConfig {
    /// Creates a configuration with the default Table 1 constants.
    pub fn new(mode: WeightMode) -> Self {
        WeightConfig {
            mode,
            table: WeightTable::default(),
        }
    }

    /// The weight of a single declaration.
    ///
    /// In [`WeightMode::NoWeights`] every declaration weighs 1. Otherwise the
    /// Table 1 constant for its kind applies; imported symbols additionally
    /// get the frequency-dependent term (with frequency clamped to 0 in
    /// [`WeightMode::NoCorpus`]). An explicit
    /// [`Declaration::with_weight`] override always wins.
    pub fn declaration_weight(&self, decl: &Declaration) -> Weight {
        if let Some(w) = decl.weight_override {
            return Weight::new(w);
        }
        if self.mode == WeightMode::NoWeights {
            return Weight::new(1.0);
        }
        let t = &self.table;
        let w = match decl.kind {
            DeclKind::Lambda => t.lambda,
            DeclKind::Local => t.local,
            DeclKind::Coercion => t.coercion,
            DeclKind::Class => t.class_member,
            DeclKind::Package => t.package,
            DeclKind::Literal => t.literal,
            DeclKind::Imported => {
                let f = match self.mode {
                    WeightMode::Full => decl.frequency.unwrap_or(0) as f64,
                    _ => 0.0,
                };
                t.imported_base + t.imported_scale / (1.0 + f)
            }
        };
        Weight::new(w)
    }

    /// Weight of introducing one lambda binder.
    pub fn lambda_weight(&self) -> Weight {
        if self.mode == WeightMode::NoWeights {
            Weight::new(1.0)
        } else {
            Weight::new(self.table.lambda)
        }
    }

    /// Weight of a whole term given a resolver from head symbols to their
    /// declaration weights: the sum of the weights of every binder and every
    /// head occurrence (the formula of §4).
    pub fn term_weight(
        &self,
        term: &insynth_lambda::Term,
        head_weight: &dyn Fn(&str) -> Weight,
    ) -> Weight {
        let binders = Weight::new(self.lambda_weight().value() * term.params.len() as f64);
        let head = head_weight(&term.head);
        let args = term
            .args
            .iter()
            .map(|a| self.term_weight(a, head_weight))
            .fold(Weight::ZERO, Weight::plus);
        binders.plus(head).plus(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insynth_lambda::{Param, Term, Ty};

    #[test]
    fn table1_constants_match_the_paper() {
        let t = WeightTable::default();
        assert_eq!(t.lambda, 1.0);
        assert_eq!(t.local, 5.0);
        assert_eq!(t.coercion, 10.0);
        assert_eq!(t.class_member, 20.0);
        assert_eq!(t.package, 25.0);
        assert_eq!(t.literal, 200.0);
        assert_eq!(t.imported_base, 215.0);
        assert_eq!(t.imported_scale, 785.0);
    }

    #[test]
    fn proximity_ordering_holds() {
        let w = WeightConfig::default();
        let mk = |kind| Declaration::new("d", Ty::base("T"), kind);
        assert!(
            w.declaration_weight(&mk(DeclKind::Lambda))
                < w.declaration_weight(&mk(DeclKind::Local))
        );
        assert!(
            w.declaration_weight(&mk(DeclKind::Local))
                < w.declaration_weight(&mk(DeclKind::Coercion))
        );
        assert!(
            w.declaration_weight(&mk(DeclKind::Coercion))
                < w.declaration_weight(&mk(DeclKind::Class))
        );
        assert!(
            w.declaration_weight(&mk(DeclKind::Class))
                < w.declaration_weight(&mk(DeclKind::Package))
        );
        assert!(
            w.declaration_weight(&mk(DeclKind::Package))
                < w.declaration_weight(&mk(DeclKind::Literal))
        );
        assert!(
            w.declaration_weight(&mk(DeclKind::Literal))
                < w.declaration_weight(&mk(DeclKind::Imported))
        );
    }

    #[test]
    fn frequency_reduces_imported_weight_in_full_mode() {
        let w = WeightConfig::new(WeightMode::Full);
        let rare = Declaration::new("r", Ty::base("T"), DeclKind::Imported).with_frequency(0);
        let common = Declaration::new("c", Ty::base("T"), DeclKind::Imported).with_frequency(5162);
        assert_eq!(w.declaration_weight(&rare).value(), 1000.0);
        assert!(w.declaration_weight(&common).value() < 216.0);
    }

    #[test]
    fn no_corpus_ignores_frequency() {
        let w = WeightConfig::new(WeightMode::NoCorpus);
        let a = Declaration::new("a", Ty::base("T"), DeclKind::Imported).with_frequency(5000);
        let b = Declaration::new("b", Ty::base("T"), DeclKind::Imported);
        assert_eq!(w.declaration_weight(&a), w.declaration_weight(&b));
    }

    #[test]
    fn no_weights_makes_everything_cost_one() {
        let w = WeightConfig::new(WeightMode::NoWeights);
        let a = Declaration::new("a", Ty::base("T"), DeclKind::Local);
        let b = Declaration::new("b", Ty::base("T"), DeclKind::Imported).with_frequency(9);
        assert_eq!(w.declaration_weight(&a).value(), 1.0);
        assert_eq!(w.declaration_weight(&b).value(), 1.0);
    }

    #[test]
    fn weight_override_wins() {
        let w = WeightConfig::default();
        let d = Declaration::new("d", Ty::base("T"), DeclKind::Imported).with_weight(2.5);
        assert_eq!(w.declaration_weight(&d).value(), 2.5);
    }

    #[test]
    fn term_weight_sums_binders_heads_and_arguments() {
        // var1 => p(var1): 1 (binder) + 5 (p local) + 1 (var1 binder use as lambda) = 7
        let w = WeightConfig::default();
        let term = Term::lambda(
            vec![Param::new("var1", Ty::base("Tree"))],
            Term::app("p", vec![Term::var("var1")]),
        );
        let total = w.term_weight(&term, &|h| {
            if h == "p" {
                Weight::new(5.0)
            } else {
                Weight::new(1.0)
            }
        });
        assert_eq!(total.value(), 7.0);
    }

    #[test]
    fn weight_ordering_is_total() {
        let mut v = vec![Weight::new(3.0), Weight::new(1.0), Weight::new(2.0)];
        v.sort();
        assert_eq!(
            v,
            vec![Weight::new(1.0), Weight::new(2.0), Weight::new(3.0)]
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_weights_are_rejected() {
        Weight::new(f64::NAN);
    }

    #[test]
    fn non_negativity_check_classifies_weights() {
        assert!(Weight::ZERO.is_non_negative());
        assert!(Weight::new(5.0).is_non_negative());
        assert!(!Weight::new(-1.0).is_non_negative());
    }

    #[test]
    fn infinity_absorbs_sums_and_compares_above_everything() {
        assert!(!Weight::INFINITY.is_finite());
        assert!(Weight::new(1.0e12).is_finite());
        assert_eq!(Weight::INFINITY.plus(Weight::new(3.0)), Weight::INFINITY);
        assert!(Weight::UNKNOWN < Weight::INFINITY);
        assert!(Weight::INFINITY.is_non_negative());
    }
}
