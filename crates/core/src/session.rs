//! The session-based query API: prepare once, query many, batch in parallel.
//!
//! The paper's interactive deployment (§7.5) answers many completion queries
//! against the same program point. This module separates the three concerns
//! the one-shot [`Synthesizer`](crate::Synthesizer) façade used to conflate:
//!
//! * [`Engine`] — immutable configuration holder (`Send + Sync`). Cheap to
//!   clone, safe to share.
//! * [`Session`] — one *prepared* program point: [`Engine::prepare`] lowers a
//!   [`TypeEnv`] through σ exactly once and freezes the result. A session is
//!   `Send + Sync`; wrap it in an `Arc` and serve queries from as many
//!   threads as you like — each query interns its few private types into a
//!   [`ScratchStore`](insynth_succinct::ScratchStore) overlay instead of
//!   mutating shared state.
//! * [`Query`] — a builder-style request: goal type, `N`, and optional
//!   per-query overrides of the engine's budgets, depth bound and weights.
//! * [`Engine::query_batch`] — many `(environment, query)` requests at once:
//!   requests are grouped by program point, each point is prepared once, and
//!   the queries fan out across a scoped thread pool. Results come back in
//!   input order and are identical to running every query sequentially.
//!
//! # Example
//!
//! ```
//! use insynth_core::{Declaration, DeclKind, Engine, Query, SynthesisConfig, TypeEnv};
//! use insynth_lambda::Ty;
//!
//! let env: TypeEnv = vec![
//!     Declaration::simple("name", Ty::base("String"), DeclKind::Local),
//!     Declaration::simple(
//!         "mkFile",
//!         Ty::fun(vec![Ty::base("String")], Ty::base("File")),
//!         DeclKind::Imported,
//!     ),
//! ]
//! .into_iter()
//! .collect();
//!
//! let engine = Engine::new(SynthesisConfig::default());
//! let session = engine.prepare(&env); // σ runs once, here
//! let result = session.query(&Query::new(Ty::base("File")).with_n(5));
//! assert_eq!(result.snippets[0].term.to_string(), "mkFile(name)");
//! // The same session serves further queries without re-preparing.
//! assert!(session.query(&Query::new(Ty::base("String"))).snippets.len() > 0);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread;
use std::time::{Duration, Instant};

use insynth_lambda::Ty;

use crate::coerce::{count_coercions, erase_coercions};
use crate::decl::TypeEnv;
use crate::explore::{explore, ExploreLimits};
use crate::genp::generate_patterns;
use crate::gent::GenerateLimits;
use crate::graph::{generate_terms, DerivationGraph};
use crate::prepare::PreparedEnv;
use crate::synth::{PhaseTimings, Snippet, SynthesisConfig, SynthesisResult, SynthesisStats};
use crate::weights::WeightConfig;

/// The immutable synthesis engine: configuration only, no per-query state.
///
/// `Engine` is `Send + Sync`; one instance can serve every thread of a
/// deployment. All mutable search state lives in per-query scratch space.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: SynthesisConfig,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: SynthesisConfig) -> Self {
        Engine { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Lowers `env` into succinct form once, returning a reusable, shareable
    /// [`Session`] for that program point.
    pub fn prepare(&self, env: &TypeEnv) -> Session {
        let started = Instant::now();
        let prepared = PreparedEnv::prepare(env, &self.config.weights);
        // prepare_time covers only the σ-lowering and index construction —
        // the quantity queries amortize — not the bookkeeping copies below.
        let prepare_time = started.elapsed();
        Session {
            env: env.clone(),
            config: self.config.clone(),
            prepared,
            prepare_time,
            graphs: RwLock::new(HashMap::new()),
            cache_clock: AtomicU64::new(0),
            graph_builds: AtomicUsize::new(0),
        }
    }

    /// Runs a batch of requests, possibly spanning several program points.
    ///
    /// Requests are grouped by program point (environments compared
    /// structurally), each distinct environment is prepared exactly once, and
    /// the queries fan out across a scoped thread pool sized to the machine.
    /// The result vector is in input order, and every entry is identical to
    /// what a sequential [`Session::query`] against that request's
    /// environment would return — scheduling never affects results.
    pub fn query_batch(&self, requests: &[BatchRequest]) -> Vec<SynthesisResult> {
        if requests.is_empty() {
            return Vec::new();
        }

        // Group request indices by structurally equal environments. Batches
        // are small compared to environments, so a linear scan per distinct
        // environment beats hashing whole declaration lists.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (idx, request) in requests.iter().enumerate() {
            match groups
                .iter_mut()
                .find(|(rep, _)| requests[*rep].env == request.env)
            {
                Some((_, members)) => members.push(idx),
                None => groups.push((idx, vec![idx])),
            }
        }

        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);

        // Stage 1: prepare one session per distinct program point, in
        // parallel (σ-lowering dominates batch cost for large environments).
        let sessions: Vec<Session> = run_indexed(groups.len(), workers, |g| {
            self.prepare(&requests[groups[g].0].env)
        });

        let mut session_of = vec![0usize; requests.len()];
        for (g, (_, members)) in groups.iter().enumerate() {
            for &idx in members {
                session_of[idx] = g;
            }
        }

        // Stage 2: fan the queries out; each worker writes only its own
        // input-indexed slot, so the output order is deterministic.
        run_indexed(requests.len(), workers, |idx| {
            sessions[session_of[idx]].query(&requests[idx].query)
        })
    }
}

/// Runs `f(0..count)` on up to `workers` scoped threads and returns the
/// results in index order.
fn run_indexed<T, F>(count: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = workers.min(count).max(1);
    if threads == 1 {
        return (0..count).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    // Unwrap the slots only after the scope has joined every worker: if a
    // worker panicked, the scope re-raises that panic here and the caller
    // sees the real failure, not a missing-slot assertion.
    thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                if tx.send((idx, f(idx))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        for (idx, value) in rx {
            slots[idx] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is produced exactly once"))
        .collect()
}

/// One request of a batch: a program point plus the query to answer there.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The declarations visible at the program point.
    pub env: TypeEnv,
    /// The query to run against that point.
    pub query: Query,
}

impl BatchRequest {
    /// Pairs a program point with a query.
    pub fn new(env: TypeEnv, query: Query) -> Self {
        BatchRequest { env, query }
    }
}

/// A builder-style synthesis request: the goal type, how many snippets to
/// return, and optional per-query overrides of the session's configuration.
///
/// Unset fields inherit from the [`SynthesisConfig`] the engine was built
/// with; `n` defaults to 10, the paper's interactive `N`.
///
/// # Example
///
/// ```
/// use insynth_core::Query;
/// use insynth_lambda::Ty;
/// use std::time::Duration;
///
/// let query = Query::new(Ty::base("File"))
///     .with_n(3)
///     .with_max_depth(4)
///     .with_prover_time_limit(Some(Duration::from_millis(100)));
/// assert_eq!(query.n(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Query {
    goal: Ty,
    n: usize,
    weights: Option<WeightConfig>,
    prover_time_limit: Option<Option<Duration>>,
    reconstruction_time_limit: Option<Option<Duration>>,
    max_explore_requests: Option<usize>,
    max_reconstruction_steps: Option<usize>,
    max_depth: Option<Option<usize>>,
    erase_coercions: Option<bool>,
}

impl Query {
    /// A request for the 10 best snippets of type `goal` under the session's
    /// configuration.
    pub fn new(goal: Ty) -> Self {
        Query {
            goal,
            n: 10,
            weights: None,
            prover_time_limit: None,
            reconstruction_time_limit: None,
            max_explore_requests: None,
            max_reconstruction_steps: None,
            max_depth: None,
            erase_coercions: None,
        }
    }

    /// The goal type.
    pub fn goal(&self) -> &Ty {
        &self.goal
    }

    /// The number of snippets requested.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sets the number of snippets to return (the paper's `N`).
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Overrides the weight configuration for this query only.
    ///
    /// Per-type weights are baked into the prepared environment, so a query
    /// whose weights differ from the session's re-prepares internally — this
    /// is the slow path, meant for occasional ablation queries. Batches of
    /// same-weight queries should use differently configured engines instead.
    pub fn with_weights(mut self, weights: WeightConfig) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Overrides the exploration + pattern generation wall-clock budget
    /// (`None` removes the limit).
    pub fn with_prover_time_limit(mut self, limit: Option<Duration>) -> Self {
        self.prover_time_limit = Some(limit);
        self
    }

    /// Overrides the reconstruction wall-clock budget (`None` removes the
    /// limit).
    pub fn with_reconstruction_time_limit(mut self, limit: Option<Duration>) -> Self {
        self.reconstruction_time_limit = Some(limit);
        self
    }

    /// Overrides the hard cap on exploration requests.
    pub fn with_max_explore_requests(mut self, max: usize) -> Self {
        self.max_explore_requests = Some(max);
        self
    }

    /// Overrides the hard cap on reconstruction steps.
    pub fn with_max_reconstruction_steps(mut self, max: usize) -> Self {
        self.max_reconstruction_steps = Some(max);
        self
    }

    /// Bounds the depth of synthesized terms for this query.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(Some(depth));
        self
    }

    /// Removes the session's depth bound for this query.
    pub fn without_max_depth(mut self) -> Self {
        self.max_depth = Some(None);
        self
    }

    /// Overrides whether coercion applications are erased from the reported
    /// snippets.
    pub fn with_erase_coercions(mut self, erase: bool) -> Self {
        self.erase_coercions = Some(erase);
        self
    }

    /// The session configuration with this query's overrides applied.
    fn effective_config(&self, base: &SynthesisConfig) -> SynthesisConfig {
        SynthesisConfig {
            weights: self.weights.clone().unwrap_or_else(|| base.weights.clone()),
            prover_time_limit: self.prover_time_limit.unwrap_or(base.prover_time_limit),
            reconstruction_time_limit: self
                .reconstruction_time_limit
                .unwrap_or(base.reconstruction_time_limit),
            max_explore_requests: self
                .max_explore_requests
                .unwrap_or(base.max_explore_requests),
            max_reconstruction_steps: self
                .max_reconstruction_steps
                .unwrap_or(base.max_reconstruction_steps),
            max_depth: self.max_depth.unwrap_or(base.max_depth),
            erase_coercions: self.erase_coercions.unwrap_or(base.erase_coercions),
            // Session-level knob; queries cannot override the cache bound.
            graph_cache_capacity: base.graph_cache_capacity,
        }
    }
}

/// The inputs that determine a derivation graph: the goal plus every
/// configuration knob that can change what exploration and pattern generation
/// produce. Anything else (`n`, reconstruction budgets, coercion erasure)
/// only affects the walk and shares the cached graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GraphKey {
    goal: Ty,
    max_explore_requests: usize,
    prover_time_limit: Option<Duration>,
}

/// Everything a query needs that does not depend on `n` or the reconstruction
/// budgets: the derivation graph plus the statistics and timings of the
/// phases that built it. Cached per [`GraphKey`] on the session, so repeated
/// queries replay the recorded stats and walk the same graph.
#[derive(Debug)]
pub(crate) struct QueryArtifacts {
    graph: DerivationGraph,
    explore_time: Duration,
    patterns_time: Duration,
    reachability_terms: usize,
    requests_processed: usize,
    patterns: usize,
    explore_truncated: bool,
    /// `true` when the exploration truncation was wall-clock-driven — a
    /// nondeterministic outcome that must not be cached.
    time_truncated: bool,
}

/// A cached derivation graph (plus build statistics) together with its
/// recency stamp. The stamp is atomic so cache hits can refresh it under the
/// shared read lock.
#[derive(Debug)]
struct CachedGraph {
    artifacts: Arc<QueryArtifacts>,
    last_used: AtomicU64,
}

/// One prepared program point: the σ-lowered environment plus the engine
/// configuration it was prepared under.
///
/// Sessions are `Send + Sync`: queries borrow the prepared environment
/// read-only and keep all mutable search state (priority queues, visited
/// sets, newly interned types) in per-query scratch space, so an
/// `Arc<Session>` can answer queries from many threads concurrently. The only
/// shared mutable state is the derivation-graph cache, which memoizes the
/// explore → patterns → graph → heuristic phases per goal: the first query
/// for a goal builds the graph (and its A* completion bounds), every later
/// query for it goes straight to reconstruction. Only completely explored
/// graphs are cached — a build whose exploration hit the prover's wall-clock
/// budget serves its own query and is discarded, so a transiently slow
/// machine can never pin incomplete results onto the session. Cached queries
/// are byte-identical to what an uncached run of the same (untruncated)
/// build returns.
///
/// The cache is **bounded**: at most
/// [`SynthesisConfig::graph_cache_capacity`] graphs (default 64) are kept,
/// and the least recently used graph is evicted when a new goal would exceed
/// the bound — a long-lived session answering many distinct goals stays
/// bounded in memory. The cache also survives panics: a query thread that
/// panics mid-cache-access (poisoning the lock) never bricks the other
/// threads sharing the `Arc<Session>`, because the cache only ever holds
/// fully built graphs and the lock is recovered on the next access.
#[derive(Debug)]
pub struct Session {
    env: TypeEnv,
    config: SynthesisConfig,
    prepared: PreparedEnv,
    prepare_time: Duration,
    graphs: RwLock<HashMap<GraphKey, CachedGraph>>,
    /// Monotone stamp source for the cache's LRU recency ordering.
    cache_clock: AtomicU64,
    /// Number of derivation-graph builds this session has performed (cache
    /// misses, non-cacheable truncated builds, and weight-override queries).
    graph_builds: AtomicUsize,
}

impl Session {
    /// The program point this session was prepared for.
    pub fn env(&self) -> &TypeEnv {
        &self.env
    }

    /// The configuration queries inherit (before per-query overrides).
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// The σ-lowered environment.
    pub fn prepared(&self) -> &PreparedEnv {
        &self.prepared
    }

    /// How long [`Engine::prepare`] took for this session — the cost that is
    /// paid once per program point instead of once per query.
    pub fn prepare_time(&self) -> Duration {
        self.prepare_time
    }

    /// Answers one query against this program point.
    ///
    /// Does not re-run σ (unless the query overrides the weight
    /// configuration, which forces an internal re-preparation), and reuses
    /// the cached derivation graph when the goal was queried before — the
    /// repeated-query fast path that skips exploration and pattern generation
    /// entirely.
    pub fn query(&self, query: &Query) -> SynthesisResult {
        let config = query.effective_config(&self.config);
        if let Some(weights) = &query.weights {
            if *weights != self.config.weights {
                // Weight overrides invalidate the prepared per-type weights
                // (and every cached graph, which bakes them into its edges):
                // re-prepare privately for this query (the documented slow
                // path; the shared session is left untouched).
                let prepared = PreparedEnv::prepare(&self.env, weights);
                self.graph_builds.fetch_add(1, Ordering::Relaxed);
                return run_query(&prepared, &self.env, &config, &query.goal, query.n);
            }
        }

        let key = GraphKey {
            goal: query.goal.clone(),
            max_explore_requests: config.max_explore_requests,
            prover_time_limit: config.prover_time_limit,
        };
        let cached = self.read_graphs().get(&key).map(|entry| {
            // Refresh the LRU stamp under the shared read lock.
            entry.last_used.store(
                self.cache_clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            Arc::clone(&entry.artifacts)
        });
        let artifacts = match cached {
            Some(artifacts) => artifacts,
            None => {
                self.graph_builds.fetch_add(1, Ordering::Relaxed);
                let built = Arc::new(build_artifacts(
                    &self.prepared,
                    &self.env,
                    &config,
                    &query.goal,
                ));
                if built.time_truncated || self.config.graph_cache_capacity == 0 {
                    // A wall-clock-truncated exploration is a property of
                    // this moment, not of the goal: caching it would pin an
                    // incomplete graph on the session forever. Use it for
                    // this query only and let the next query re-explore.
                    // (A `max_explore_requests`-capped exploration is
                    // deterministic — the cap is part of the key — and
                    // caches normally. A zero-capacity cache never stores
                    // anything.)
                    built
                } else {
                    // Two threads may race to build the same graph; an
                    // untruncated build is deterministic, so keeping the
                    // first insertion is only an allocation-saving
                    // tie-break, never a behavioural one.
                    let mut graphs = self.write_graphs();
                    let stamp = self.cache_clock.fetch_add(1, Ordering::Relaxed);
                    let slot = graphs.entry(key).or_insert_with(|| CachedGraph {
                        artifacts: built,
                        last_used: AtomicU64::new(0),
                    });
                    // Stamping also covers the race-lost path: reusing the
                    // other thread's graph is a recency bump too.
                    slot.last_used.store(stamp, Ordering::Relaxed);
                    let artifacts = Arc::clone(&slot.artifacts);
                    // LRU eviction keeps the cache within its bound. The
                    // entry just stamped carries the newest stamp, so it is
                    // never the victim (capacity 0 never reaches this path).
                    while graphs.len() > self.config.graph_cache_capacity {
                        let victim = graphs
                            .iter()
                            .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                            .map(|(key, _)| key.clone());
                        match victim {
                            Some(victim) => {
                                graphs.remove(&victim);
                            }
                            None => break,
                        }
                    }
                    artifacts
                }
            }
        };
        finish_query(&artifacts, &self.prepared, &self.env, &config, query.n)
    }

    /// Number of derivation graphs currently cached on this session (one per
    /// distinct goal/prover-budget combination queried so far, bounded by
    /// [`SynthesisConfig::graph_cache_capacity`]).
    pub fn cached_graph_count(&self) -> usize {
        self.read_graphs().len()
    }

    /// Number of derivation-graph builds this session has performed — cache
    /// misses plus non-cacheable builds (wall-clock-truncated explorations,
    /// weight-override queries). The difference between queries issued and
    /// builds performed is the cache's hit count.
    pub fn graph_build_count(&self) -> usize {
        self.graph_builds.load(Ordering::Relaxed)
    }

    /// Acquires the graph cache for reading, recovering from a poisoned lock:
    /// the cache only ever holds fully built `Arc<QueryArtifacts>` (no
    /// invariant can be half-updated when a panicking thread drops the
    /// guard), so the poisoned state is safe to adopt and one panicking query
    /// must not brick every other thread sharing the `Arc<Session>`.
    fn read_graphs(&self) -> RwLockReadGuard<'_, HashMap<GraphKey, CachedGraph>> {
        self.graphs.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the graph cache for writing; see [`Session::read_graphs`] for
    /// why poisoning is recovered rather than propagated.
    fn write_graphs(&self) -> RwLockWriteGuard<'_, HashMap<GraphKey, CachedGraph>> {
        self.graphs.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Answers several queries against this program point, sequentially,
    /// returning results in input order.
    pub fn query_many(&self, queries: &[Query]) -> Vec<SynthesisResult> {
        queries.iter().map(|q| self.query(q)).collect()
    }

    /// Decides inhabitation only (the "prover" mode used for the Imogen/fCube
    /// comparison of Table 2): runs exploration and pattern generation and
    /// checks whether the goal type received a pattern, without
    /// reconstructing any term.
    pub fn is_inhabited(&self, goal: &Ty) -> bool {
        use insynth_succinct::TypeStore;

        let mut store = self.prepared.scratch();
        let goal_succ = store.sigma(goal);
        let space = explore(
            &self.prepared,
            &mut store,
            goal_succ,
            &ExploreLimits {
                max_requests: self.config.max_explore_requests,
                time_limit: self.config.prover_time_limit,
            },
        );
        let patterns = generate_patterns(&mut store, &space);
        let goal_args = store.args_of(goal_succ).to_vec();
        let extended = store.env_union(self.prepared.init_env, &goal_args);
        let ret = store.ret_of(goal_succ);
        patterns.is_inhabited(ret, extended)
    }
}

/// Runs exploration, pattern generation and graph compilation for one goal —
/// the phases a session caches per [`GraphKey`].
pub(crate) fn build_artifacts(
    prepared: &PreparedEnv,
    env: &TypeEnv,
    config: &SynthesisConfig,
    goal: &Ty,
) -> QueryArtifacts {
    use insynth_succinct::TypeStore;

    let mut store = prepared.scratch();
    let goal_succ = store.sigma(goal);

    let explore_started = Instant::now();
    let space = explore(
        prepared,
        &mut store,
        goal_succ,
        &ExploreLimits {
            max_requests: config.max_explore_requests,
            time_limit: config.prover_time_limit,
        },
    );
    let explore_time = explore_started.elapsed();

    // Pattern generation and graph compilation are one phase for reporting:
    // the graph is what GenerateP now emits.
    let patterns_started = Instant::now();
    let patterns = generate_patterns(&mut store, &space);
    let graph = DerivationGraph::build(prepared, &mut store, &patterns, env, &config.weights, goal);
    let patterns_time = patterns_started.elapsed();

    QueryArtifacts {
        graph,
        explore_time,
        patterns_time,
        reachability_terms: space.terms.len(),
        requests_processed: space.requests_processed,
        patterns: patterns.len(),
        explore_truncated: space.truncated,
        time_truncated: space.time_truncated,
    }
}

/// Walks an already built derivation graph and packages the result. The
/// reported explore/patterns timings and search statistics are those recorded
/// when the graph was built, so cached and uncached queries report
/// identically.
fn finish_query(
    artifacts: &QueryArtifacts,
    prepared: &PreparedEnv,
    env: &TypeEnv,
    config: &SynthesisConfig,
    n: usize,
) -> SynthesisResult {
    let recon_started = Instant::now();
    let outcome = generate_terms(
        &artifacts.graph,
        env,
        n,
        &GenerateLimits {
            max_steps: config.max_reconstruction_steps,
            time_limit: config.reconstruction_time_limit,
            max_depth: config.max_depth,
            ..GenerateLimits::default()
        },
    );
    let recon_time = recon_started.elapsed();

    let snippets = outcome
        .terms
        .into_iter()
        .map(|ranked| {
            let raw = ranked.term;
            let erased = if config.erase_coercions {
                erase_coercions(&raw)
            } else {
                raw.clone()
            };
            Snippet {
                coercions: count_coercions(&raw),
                depth: raw.depth(),
                term: erased,
                raw_term: raw,
                weight: ranked.weight,
            }
        })
        .collect();

    SynthesisResult {
        snippets,
        timings: PhaseTimings {
            explore: artifacts.explore_time,
            patterns: artifacts.patterns_time,
            reconstruction: recon_time,
        },
        stats: SynthesisStats {
            initial_declarations: env.len(),
            distinct_succinct_types: prepared.distinct_succinct_types(),
            reachability_terms: artifacts.reachability_terms,
            requests_processed: artifacts.requests_processed,
            patterns: artifacts.patterns,
            reconstruction_steps: outcome.steps,
            reconstruction_pruned_enqueues: outcome.pruned_enqueues,
            astar: outcome.astar,
            truncated: artifacts.explore_truncated || outcome.truncated,
        },
    }
}

/// Runs all query phases uncached against a prepared environment. Used by the
/// per-query weight-override slow path, where the prepared weights differ
/// from the session's and nothing may be reused.
pub(crate) fn run_query(
    prepared: &PreparedEnv,
    env: &TypeEnv,
    config: &SynthesisConfig,
    goal: &Ty,
    n: usize,
) -> SynthesisResult {
    let artifacts = build_artifacts(prepared, env, config, goal);
    finish_query(&artifacts, prepared, env, config, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::{DeclKind, Declaration};

    // Compile-time proof of the concurrency contract: sessions (and the
    // engine) can be shared across threads behind an Arc.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<Session>();
        assert_send_sync::<Query>();
        assert_send_sync::<BatchRequest>();
    };

    fn env_a() -> TypeEnv {
        vec![
            Declaration::new("name", Ty::base("String"), DeclKind::Local),
            Declaration::new(
                "mkFile",
                Ty::fun(vec![Ty::base("String")], Ty::base("File")),
                DeclKind::Imported,
            ),
        ]
        .into_iter()
        .collect()
    }

    fn env_b() -> TypeEnv {
        vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "s",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Local,
            ),
        ]
        .into_iter()
        .collect()
    }

    fn render(result: &SynthesisResult) -> Vec<(String, crate::Weight)> {
        result
            .snippets
            .iter()
            .map(|s| (s.term.to_string(), s.weight))
            .collect()
    }

    #[test]
    fn empty_batch_returns_no_results() {
        let engine = Engine::new(SynthesisConfig::default());
        assert!(engine.query_batch(&[]).is_empty());
    }

    #[test]
    fn batch_results_are_input_ordered_and_match_sequential_queries() {
        let engine = Engine::new(SynthesisConfig::default());
        let requests = vec![
            BatchRequest::new(env_a(), Query::new(Ty::base("File")).with_n(5)),
            BatchRequest::new(env_b(), Query::new(Ty::base("A")).with_n(4)),
            BatchRequest::new(env_a(), Query::new(Ty::base("String")).with_n(3)),
            BatchRequest::new(env_b(), Query::new(Ty::base("A")).with_n(2)),
        ];
        let batched = engine.query_batch(&requests);
        assert_eq!(batched.len(), requests.len());
        for (request, batch_result) in requests.iter().zip(&batched) {
            let sequential = engine.prepare(&request.env).query(&request.query);
            assert_eq!(render(batch_result), render(&sequential));
        }
        // Spot-check the input ordering explicitly.
        assert_eq!(batched[0].snippets[0].term.to_string(), "mkFile(name)");
        assert_eq!(batched[2].snippets[0].term.to_string(), "name");
        assert_eq!(batched[3].snippets.len(), 2);
    }

    #[test]
    fn query_many_matches_individual_queries() {
        let engine = Engine::new(SynthesisConfig::default());
        let session = engine.prepare(&env_b());
        let queries = vec![
            Query::new(Ty::base("A")).with_n(3),
            Query::new(Ty::base("A")).with_n(1),
        ];
        let many = session.query_many(&queries);
        assert_eq!(many.len(), 2);
        for (query, result) in queries.iter().zip(&many) {
            assert_eq!(render(result), render(&session.query(query)));
        }
    }

    #[test]
    fn query_overrides_take_effect() {
        let engine = Engine::new(SynthesisConfig::default());
        let session = engine.prepare(&env_b());
        // Depth 2 admits only `a` and `s(a)`.
        let bounded = session.query(&Query::new(Ty::base("A")).with_n(100).with_max_depth(2));
        let rendered: Vec<String> = bounded
            .snippets
            .iter()
            .map(|s| s.term.to_string())
            .collect();
        assert_eq!(rendered, vec!["a", "s(a)"]);
        // A tiny step cap truncates and is reported as such.
        let truncated = session.query(
            &Query::new(Ty::base("A"))
                .with_n(1_000)
                .with_max_reconstruction_steps(2),
        );
        assert!(truncated.stats.truncated);
    }

    #[test]
    fn poisoned_graph_cache_does_not_brick_the_session() {
        // One query thread panicking while it holds the cache lock must not
        // poison every subsequent `Session::query` on the shared Arc.
        let engine = Engine::new(SynthesisConfig::default());
        let session = Arc::new(engine.prepare(&env_a()));
        let before = session.query(&Query::new(Ty::base("File")).with_n(3));

        let poisoner = Arc::clone(&session);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = poisoner.graphs.write().unwrap_or_else(|e| e.into_inner());
            panic!("query thread dies while holding the cache lock");
        }));
        assert!(result.is_err(), "the panic must actually happen");
        assert!(
            session.graphs.read().is_err(),
            "the lock must be poisoned for this test to mean anything"
        );

        // The session keeps answering — cache reads, writes and the counter
        // all recover the poisoned lock.
        let after = session.query(&Query::new(Ty::base("File")).with_n(3));
        assert_eq!(render(&before), render(&after));
        assert!(session.cached_graph_count() >= 1);
        let fresh = session.query(&Query::new(Ty::base("String")).with_n(2));
        assert_eq!(fresh.snippets[0].term.to_string(), "name");
    }

    #[test]
    fn graph_cache_evicts_least_recently_used_within_capacity() {
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new("b", Ty::base("B"), DeclKind::Local),
            Declaration::new("c", Ty::base("C"), DeclKind::Local),
        ]
        .into_iter()
        .collect();
        let config = SynthesisConfig {
            graph_cache_capacity: 2,
            ..SynthesisConfig::default()
        };
        let session = Engine::new(config).prepare(&env);
        let query = |name: &str| {
            session.query(&Query::new(Ty::base(name)).with_n(1));
        };

        query("A"); // build 1, cache {A}
        query("B"); // build 2, cache {A, B}
        assert_eq!(session.graph_build_count(), 2);
        assert_eq!(session.cached_graph_count(), 2);

        query("A"); // hit, A becomes most recent
        assert_eq!(session.graph_build_count(), 2);

        query("C"); // build 3: capacity forces out B (least recent), not A
        assert_eq!(session.graph_build_count(), 3);
        assert_eq!(session.cached_graph_count(), 2);

        query("A"); // still cached
        query("C"); // still cached
        assert_eq!(session.graph_build_count(), 3);

        query("B"); // evicted above: rebuilt, and evicts the LRU entry (A)
        assert_eq!(session.graph_build_count(), 4);
        assert_eq!(session.cached_graph_count(), 2);
    }

    #[test]
    fn zero_capacity_disables_graph_caching() {
        let config = SynthesisConfig {
            graph_cache_capacity: 0,
            ..SynthesisConfig::default()
        };
        let session = Engine::new(config).prepare(&env_b());
        let first = session.query(&Query::new(Ty::base("A")).with_n(3));
        let second = session.query(&Query::new(Ty::base("A")).with_n(3));
        assert_eq!(render(&first), render(&second));
        assert_eq!(session.cached_graph_count(), 0);
        assert_eq!(session.graph_build_count(), 2);
    }

    #[test]
    fn run_indexed_returns_results_in_index_order() {
        let doubled = run_indexed(100, 8, |i| i * 2);
        assert_eq!(doubled.len(), 100);
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
        assert!(run_indexed(0, 8, |i| i).is_empty());
    }
}
