//! The session-based query API: content-addressed program points, prepared
//! once, queried many times, batched in parallel, and re-prepared
//! incrementally when the user edits.
//!
//! The paper's interactive deployment (§7.5) answers many completion queries
//! against the same program point — and, across edits, against program points
//! that are *slightly changed* or *structurally identical* versions of one
//! another. This module makes environment identity first-class:
//!
//! * [`Engine`] — immutable configuration holder plus the engine-level
//!   caches (`Send + Sync`, cheap to clone — clones share the caches).
//! * Every environment has an [`EnvFingerprint`]: an order-insensitive
//!   content address over its declaration multiset and effective weights
//!   (see [`PreparedEnv::fingerprint_of`]). [`Engine::prepare`] keys its
//!   prepared-point cache on it, so preparing a structurally equal
//!   environment — byte-equal or merely a permutation — reuses the existing
//!   σ-lowering instead of re-running it. Fingerprint hits are verified
//!   structurally before anything is shared; a hash collision degrades to an
//!   uncached preparation, never to wrong results.
//! * [`Session`] — one *prepared* program point: [`Engine::prepare`] lowers a
//!   [`TypeEnv`] through σ at most once per fingerprint and freezes the
//!   result. A session is `Send + Sync`; wrap it in an `Arc` and serve
//!   queries from as many threads as you like.
//! * [`Query`] — a builder-style request: goal type, `N`, and optional
//!   per-query overrides of the engine's budgets, depth bound and weights.
//! * The **artifact cache** — derivation graphs (with their A* heuristics)
//!   are cached on the *engine*, keyed `(environment fingerprint, goal,
//!   prover budgets)`, so structurally equal program points share graphs no
//!   matter which session queried first. Builds are single-flight: any
//!   number of concurrent queries for one key perform exactly one build.
//! * [`Session::update`] — the edit-time delta path: apply an [`EnvDelta`]
//!   (add / remove / reweight declarations) and get a session for the edited
//!   point whose results are byte-identical to a fresh [`Engine::prepare`]
//!   of the edited environment. Appends and reweights re-run σ only on the
//!   changed declarations and carry over every cached graph the change
//!   provably cannot affect; removals and oversized deltas fall back to a
//!   fresh preparation.
//! * [`Engine::query_batch`] — many `(environment, query)` requests at once:
//!   requests are grouped by fingerprint (structural equality verified),
//!   each distinct point is prepared once, and the queries fan out across a
//!   scoped thread pool. Results come back in input order and are identical
//!   to running every query sequentially.
//!
//! # Example
//!
//! ```
//! use insynth_core::{Declaration, DeclKind, Engine, EnvDelta, Query, SynthesisConfig, TypeEnv};
//! use insynth_lambda::Ty;
//!
//! let env: TypeEnv = vec![
//!     Declaration::simple("name", Ty::base("String"), DeclKind::Local),
//!     Declaration::simple(
//!         "mkFile",
//!         Ty::fun(vec![Ty::base("String")], Ty::base("File")),
//!         DeclKind::Imported,
//!     ),
//! ]
//! .into_iter()
//! .collect();
//!
//! let engine = Engine::new(SynthesisConfig::default());
//! let session = engine.prepare(&env); // σ runs once, here
//! let result = session.query(&Query::new(Ty::base("File")).with_n(5));
//! assert_eq!(result.snippets[0].term.to_string(), "mkFile(name)");
//!
//! // The user edits: a new local appears. Only the delta is re-prepared.
//! let edited = session.update(
//!     &EnvDelta::new().add(Declaration::simple("path", Ty::base("String"), DeclKind::Local)),
//! );
//! let result = edited.query(&Query::new(Ty::base("File")).with_n(5));
//! assert_eq!(result.snippets[1].term.to_string(), "mkFile(path)");
//!
//! // Preparing a structurally equal point again is a fingerprint cache hit.
//! let again = engine.prepare(&env);
//! assert_eq!(again.fingerprint(), session.fingerprint());
//! assert_eq!(engine.prepare_count(), 2); // env + edited env, not 3
//! ```

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread;
use std::time::{Duration, Instant};

use insynth_analysis::{analyze, dead_decl_indices, AnalysisReport, DeclFacts};
use insynth_lambda::Ty;
use insynth_succinct::EnvFingerprint;

use crate::coerce::{count_coercions, erase_coercions};
use crate::decl::{Declaration, TypeEnv};
use crate::explore::{explore, ExploreLimits};
use crate::genp::generate_patterns;
use crate::gent::{CancelToken, GenerateLimits, RankedTerm};
use crate::graph::{lock_recovering, DerivationGraph, WalkState};
use crate::prepare::{effective_sigma_shards, PreparedEnv};
use crate::synth::{PhaseTimings, Snippet, SynthesisConfig, SynthesisResult, SynthesisStats};
use crate::weights::WeightConfig;

/// The immutable synthesis engine: configuration plus the engine-level
/// caches of prepared program points and derivation graphs.
///
/// `Engine` is `Send + Sync`; one instance can serve every thread of a
/// deployment. Cloning is cheap and clones **share the caches** — a cloned
/// engine is another handle onto the same content-addressed state, which is
/// what lets [`Engine::query_batch`] and independent [`Engine::prepare`]
/// calls reuse each other's work. Engines created with [`Engine::new`] start
/// with fresh, empty caches.
#[derive(Debug, Clone)]
pub struct Engine {
    config: SynthesisConfig,
    cache: Arc<ArtifactCache>,
}

/// One coherent snapshot of the engine's counters and cache sizes, as
/// returned by [`Engine::stats`].
///
/// The two work counters are cumulative over the engine's lifetime (shared
/// across clones); the three sizes are instantaneous. Comparing snapshots
/// taken before and after a workload gives the cache economics of exactly
/// that workload: `prepare` calls minus the `prepare_count` delta is the
/// point-cache hit count, and likewise for graph builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStatsSnapshot {
    /// σ-lowering runs performed (full preparations plus incremental delta
    /// re-preparations).
    pub prepare_count: usize,
    /// σ-lowering runs that took the sharded parallel path (more than one
    /// shard after the [`effective_sigma_shards`] policy; small environments
    /// and incremental delta re-preparations stay sequential).
    pub sharded_prepare_count: usize,
    /// Cumulative wall time of all σ-lowering runs, in nanoseconds.
    pub prepare_time_ns: u64,
    /// Portion of `prepare_time_ns` spent in sharded parallel runs.
    pub sharded_prepare_time_ns: u64,
    /// The configured [`SynthesisConfig::sigma_shards`] knob.
    pub sigma_shards: usize,
    /// The configured [`SynthesisConfig::graph_build_threads`] knob.
    pub graph_build_threads: usize,
    /// Derivation-graph builds across every session of this engine.
    pub graph_build_count: usize,
    /// Prepared program points currently cached.
    pub cached_point_count: usize,
    /// Derivation-graph artifacts currently cached.
    pub cached_graph_count: usize,
    /// Suspended walk states currently parked across the cached graphs.
    pub suspended_walk_count: usize,
    /// Environment analyses performed ([`Engine::analyze`] cache misses);
    /// the difference between `analyze` calls issued and this count is the
    /// analysis cache's hit count.
    pub analysis_count: usize,
    /// Analysis reports currently cached (bounded by
    /// [`SynthesisConfig::analysis_cache_capacity`]).
    pub cached_analysis_count: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(SynthesisConfig::default())
    }
}

impl Engine {
    /// Creates an engine with the given configuration and empty caches.
    pub fn new(config: SynthesisConfig) -> Self {
        Engine {
            config,
            cache: Arc::new(ArtifactCache::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// The content address this engine assigns to `env` (under the engine's
    /// weight configuration). Structurally equal environments — the same
    /// declaration multiset, in any order — fingerprint identically and
    /// share one preparation and one derivation-graph cache line.
    pub fn fingerprint(&self, env: &TypeEnv) -> EnvFingerprint {
        PreparedEnv::fingerprint_of(env, &self.config.weights)
    }

    /// Lowers `env` into succinct form, returning a reusable, shareable
    /// [`Session`] for that program point.
    ///
    /// Content-addressed: if a structurally equal environment (equal
    /// [`EnvFingerprint`], verified declaration-for-declaration) was prepared
    /// before and is still cached, the existing preparation is shared and σ
    /// does not run again. The session's [`Session::env`] then refers to the
    /// *canonical* declaration list — the one first prepared — so structurally
    /// equal points answer byte-identically no matter the declaration order
    /// they were collected in.
    pub fn prepare(&self, env: &TypeEnv) -> Session {
        self.prepare_fingerprinted(env, self.fingerprint(env))
    }

    /// [`Engine::prepare`] with the environment's fingerprint already in
    /// hand ([`Engine::query_batch`] hashes every request up front for
    /// grouping; re-hashing per prepared group would waste that work).
    fn prepare_fingerprinted(&self, env: &TypeEnv, fingerprint: EnvFingerprint) -> Session {
        let capacity = self.config.point_cache_capacity;
        if capacity > 0 {
            if let Some(point) = self
                .cache
                .lookup_point(fingerprint, env, PointMatch::Canonical)
            {
                return self.session_for(point);
            }
        }
        let shards = effective_sigma_shards(self.config.sigma_shards, env.len());
        let started = Instant::now();
        let prepared = Arc::new(PreparedEnv::prepare_with_fingerprint_sharded(
            env,
            &self.config.weights,
            fingerprint,
            shards,
        ));
        // prepare_time covers only the σ-lowering and index construction —
        // the quantity queries amortize — not the bookkeeping copies below.
        let prepare_time = started.elapsed();
        self.cache.record_prepare(shards, prepare_time);
        let point = Arc::new(PreparedPoint {
            env: env.clone(),
            prepared,
            prepare_time,
        });
        let point = if capacity > 0 {
            self.cache
                .insert_point(point, capacity, PointMatch::Canonical)
        } else {
            point
        };
        self.session_for(point)
    }

    fn session_for(&self, point: Arc<PreparedPoint>) -> Session {
        Session {
            point,
            config: self.config.clone(),
            cache: Arc::clone(&self.cache),
            graph_builds: AtomicUsize::new(0),
        }
    }

    /// Number of σ-lowering runs this engine (and its clones) performed —
    /// full preparations plus incremental delta re-preparations. The
    /// difference between `prepare`/`update` calls issued and this count is
    /// the point cache's hit count.
    pub fn prepare_count(&self) -> usize {
        self.cache.prepares.load(Ordering::Relaxed)
    }

    /// Number of derivation-graph builds across every session this engine
    /// prepared. With warm caches, a batch over N structurally equal points
    /// asking one goal performs exactly one build.
    pub fn graph_build_count(&self) -> usize {
        self.cache.graph_builds.load(Ordering::Relaxed)
    }

    /// Number of prepared program points currently cached (bounded by
    /// [`SynthesisConfig::point_cache_capacity`]).
    pub fn cached_point_count(&self) -> usize {
        self.cache.read_points().len()
    }

    /// Number of suspended walk states currently parked across the engine's
    /// cached graphs (each graph bounds its own set by
    /// [`SynthesisConfig::suspended_walk_capacity`]).
    pub fn suspended_walk_count(&self) -> usize {
        self.cache
            .read_graphs()
            .values()
            .filter_map(|slot| slot.value.cell.get())
            .map(|artifacts| artifacts.suspended_walk_count())
            .sum()
    }

    /// Number of derivation-graph artifacts currently cached (bounded by
    /// [`SynthesisConfig::graph_cache_capacity`]).
    pub fn cached_graph_count(&self) -> usize {
        self.cache.read_graphs().len()
    }

    /// Statically analyzes `env`: prepares it (or reuses the cached point),
    /// runs the goal-independent producibility fixpoint over the σ-lowered
    /// signatures, and reports dead declarations, uninhabitable types,
    /// ambiguous overload groups, duplicates and weight anomalies — see
    /// [`insynth_analysis::analyze`] for the diagnostic semantics.
    ///
    /// Reports are cached by environment fingerprint alongside the point
    /// cache (bounded by [`SynthesisConfig::analysis_cache_capacity`]), so
    /// re-analyzing an unchanged environment is a lookup. The diagnostics
    /// are deterministic: equal environments yield byte-equal reports, on
    /// every run and for every `sigma_shards` setting.
    pub fn analyze(&self, env: &TypeEnv) -> Arc<AnalysisReport> {
        self.prepare(env).analyze()
    }

    /// Number of environment analyses this engine (and its clones) actually
    /// performed; the difference between [`Engine::analyze`] calls issued
    /// and this count is the analysis cache's hit count.
    pub fn analysis_count(&self) -> usize {
        self.cache.analyses_run.load(Ordering::Relaxed)
    }

    /// Number of analysis reports currently cached (bounded by
    /// [`SynthesisConfig::analysis_cache_capacity`]).
    pub fn cached_analysis_count(&self) -> usize {
        self.cache.read_analyses().len()
    }

    /// One coherent snapshot of every engine-level counter and cache size.
    ///
    /// The work counters (`prepare_count`, `graph_build_count`) are
    /// monotone; the cache sizes are instantaneous and bounded by the
    /// corresponding [`SynthesisConfig`] capacities. Gates that compare
    /// cache economics across runs (the bench harness, the server's
    /// `server/stats` reply) should read this struct rather than stitching
    /// together individual getters, which could interleave with concurrent
    /// queries.
    pub fn stats(&self) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            prepare_count: self.prepare_count(),
            sharded_prepare_count: self.cache.sharded_prepares.load(Ordering::Relaxed),
            prepare_time_ns: self.cache.prepare_time_ns.load(Ordering::Relaxed),
            sharded_prepare_time_ns: self.cache.sharded_prepare_time_ns.load(Ordering::Relaxed),
            sigma_shards: self.config.sigma_shards,
            graph_build_threads: self.config.graph_build_threads,
            graph_build_count: self.graph_build_count(),
            cached_point_count: self.cached_point_count(),
            cached_graph_count: self.cached_graph_count(),
            suspended_walk_count: self.suspended_walk_count(),
            analysis_count: self.analysis_count(),
            cached_analysis_count: self.cached_analysis_count(),
        }
    }

    /// Drops every suspended walk state parked on the engine's cached
    /// graphs. A memory/benchmarking lever only: the next query on any goal
    /// replays its walk from scratch and returns identical results.
    pub fn clear_suspended_walks(&self) {
        for slot in self.cache.read_graphs().values() {
            if let Some(artifacts) = slot.value.cell.get() {
                artifacts.clear_suspended();
            }
        }
    }

    /// Runs a batch of requests, possibly spanning several program points.
    ///
    /// Requests are grouped by environment fingerprint (with structural
    /// verification, so a permuted-but-equal environment joins the group of
    /// its canonical form when the point cache is enabled), each distinct
    /// point is prepared exactly once, and the queries fan out across a
    /// scoped thread pool sized to the machine. The result vector is in
    /// input order, and every entry is identical to what a sequential
    /// [`Session::query`] against that request's environment would return
    /// from the engine's caches in their pre-batch state — scheduling never
    /// affects results.
    ///
    /// As everywhere on the canonicalizing path, the emission order of
    /// *equal-weight* snippets for structurally equal environments follows
    /// the canonical (first-prepared) declaration order; if the point cache
    /// is sized below the number of distinct points in flight, which
    /// ordering is canonical can depend on eviction timing. Size
    /// [`SynthesisConfig::point_cache_capacity`] above the working set (or
    /// disable it, which makes both this grouping and every sequential
    /// prepare exact-order) if that tie order matters.
    pub fn query_batch(&self, requests: &[BatchRequest]) -> Vec<SynthesisResult> {
        if requests.is_empty() {
            return Vec::new();
        }

        let fingerprints: Vec<EnvFingerprint> = requests
            .iter()
            .map(|request| self.fingerprint(&request.env))
            .collect();
        // Group request indices by structurally equal environments: the
        // fingerprint pre-filters, the declaration comparison confirms (so a
        // fingerprint collision can only ever split a group, never merge
        // unequal points). Grouping permutations together is only sound
        // while the point cache canonicalizes — a sequential query would
        // resolve to the same canonical point and order its equal-weight
        // ties identically. With the point cache disabled, a sequential
        // query prepares the request's own declaration order, so the batch
        // must group exactly to keep its sequential-equivalence promise.
        let matching = if self.config.point_cache_capacity > 0 {
            PointMatch::Canonical
        } else {
            PointMatch::Exact
        };
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (idx, request) in requests.iter().enumerate() {
            match groups.iter_mut().find(|(rep, _)| {
                fingerprints[*rep] == fingerprints[idx]
                    && matching.accepts(&requests[*rep].env, &request.env)
            }) {
                Some((_, members)) => members.push(idx),
                None => groups.push((idx, vec![idx])),
            }
        }

        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);

        // Stage 1: prepare one session per distinct program point, in
        // parallel (σ-lowering dominates batch cost for large environments).
        let sessions: Vec<Session> = run_indexed(groups.len(), workers, |g| {
            let rep = groups[g].0;
            self.prepare_fingerprinted(&requests[rep].env, fingerprints[rep])
        });

        let mut session_of = vec![0usize; requests.len()];
        for (g, (_, members)) in groups.iter().enumerate() {
            for &idx in members {
                session_of[idx] = g;
            }
        }

        // Stage 2: fan the queries out; each worker writes only its own
        // input-indexed slot, so the output order is deterministic.
        run_indexed(requests.len(), workers, |idx| {
            sessions[session_of[idx]].query(&requests[idx].query)
        })
    }
}

/// Runs `f(0..count)` on up to `workers` scoped threads and returns the
/// results in index order.
fn run_indexed<T, F>(count: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = workers.min(count).max(1);
    if threads == 1 {
        return (0..count).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    // Unwrap the slots only after the scope has joined every worker: if a
    // worker panicked, the scope re-raises that panic here and the caller
    // sees the real failure, not a missing-slot assertion.
    thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                if tx.send((idx, f(idx))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        for (idx, value) in rx {
            slots[idx] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is produced exactly once"))
        .collect()
}

/// One request of a batch: a program point plus the query to answer there.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The declarations visible at the program point.
    pub env: TypeEnv,
    /// The query to run against that point.
    pub query: Query,
}

impl BatchRequest {
    /// Pairs a program point with a query.
    pub fn new(env: TypeEnv, query: Query) -> Self {
        BatchRequest { env, query }
    }
}

/// An edit to a type environment: declarations to remove (by name), weight
/// overrides to set (by name), and declarations to add.
///
/// Applied by [`Session::update`] (or directly via [`EnvDelta::apply`]) in
/// that order: removals first, then reweights over the surviving original
/// declarations, then additions appended at the end. Removals and reweights
/// affect *every* declaration sharing the name (overload families edit
/// together); reweights do not touch declarations added by the same delta.
///
/// # Example
///
/// ```
/// use insynth_core::{Declaration, DeclKind, EnvDelta, TypeEnv};
/// use insynth_lambda::Ty;
///
/// let env: TypeEnv = vec![
///     Declaration::simple("a", Ty::base("A"), DeclKind::Local),
///     Declaration::simple("b", Ty::base("B"), DeclKind::Local),
/// ]
/// .into_iter()
/// .collect();
/// let delta = EnvDelta::new()
///     .remove("b")
///     .reweight("a", 2.5)
///     .add(Declaration::simple("c", Ty::base("C"), DeclKind::Local));
/// let edited = delta.apply(&env);
/// assert_eq!(edited.len(), 2);
/// assert_eq!(edited.decls()[0].weight_override, Some(2.5));
/// assert_eq!(edited.decls()[1].name, "c");
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnvDelta {
    adds: Vec<Declaration>,
    removes: Vec<String>,
    reweights: Vec<(String, f64)>,
}

impl EnvDelta {
    /// An empty delta (applying it is the identity).
    pub fn new() -> Self {
        EnvDelta::default()
    }

    /// Appends a declaration to the environment.
    // The builder name mirrors the edit it describes; EnvDelta is not a
    // numeric type, so `std::ops::Add` would be the confusing choice here.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, decl: Declaration) -> Self {
        self.adds.push(decl);
        self
    }

    /// Removes every declaration with the given name.
    pub fn remove(mut self, name: impl Into<String>) -> Self {
        self.removes.push(name.into());
        self
    }

    /// Sets an explicit weight override on every declaration with the given
    /// name (see [`Declaration::with_weight`]).
    pub fn reweight(mut self, name: impl Into<String>, weight: f64) -> Self {
        self.reweights.push((name.into(), weight));
        self
    }

    /// `true` if the delta contains no edits.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.removes.is_empty() && self.reweights.is_empty()
    }

    /// The edited environment: removals, then reweights, then additions.
    pub fn apply(&self, env: &TypeEnv) -> TypeEnv {
        let mut decls: Vec<Declaration> = env
            .iter()
            .filter(|d| !self.removes.iter().any(|r| r == &d.name))
            .cloned()
            .collect();
        for (name, weight) in &self.reweights {
            for decl in decls.iter_mut().filter(|d| &d.name == name) {
                decl.weight_override = Some(*weight);
            }
        }
        decls.extend(self.adds.iter().cloned());
        decls.into_iter().collect()
    }
}

/// A builder-style synthesis request: the goal type, how many snippets to
/// return, and optional per-query overrides of the session's configuration.
///
/// Unset fields inherit from the [`SynthesisConfig`] the engine was built
/// with; `n` defaults to 10, the paper's interactive `N`.
///
/// # Example
///
/// ```
/// use insynth_core::Query;
/// use insynth_lambda::Ty;
/// use std::time::Duration;
///
/// let query = Query::new(Ty::base("File"))
///     .with_n(3)
///     .with_max_depth(4)
///     .with_prover_time_limit(Some(Duration::from_millis(100)));
/// assert_eq!(query.n(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Query {
    goal: Ty,
    n: usize,
    weights: Option<WeightConfig>,
    prover_time_limit: Option<Option<Duration>>,
    reconstruction_time_limit: Option<Option<Duration>>,
    max_explore_requests: Option<usize>,
    max_reconstruction_steps: Option<usize>,
    max_depth: Option<Option<usize>>,
    erase_coercions: Option<bool>,
    cancel: Option<CancelToken>,
}

impl Query {
    /// A request for the 10 best snippets of type `goal` under the session's
    /// configuration.
    pub fn new(goal: Ty) -> Self {
        Query {
            goal,
            n: 10,
            weights: None,
            prover_time_limit: None,
            reconstruction_time_limit: None,
            max_explore_requests: None,
            max_reconstruction_steps: None,
            max_depth: None,
            erase_coercions: None,
            cancel: None,
        }
    }

    /// The goal type.
    pub fn goal(&self) -> &Ty {
        &self.goal
    }

    /// The number of snippets requested.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sets the number of snippets to return (the paper's `N`).
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Overrides the weight configuration for this query only.
    ///
    /// Per-type weights are baked into the prepared environment, so a query
    /// whose weights differ from the session's re-prepares internally — this
    /// is the slow path, meant for occasional ablation queries. Batches of
    /// same-weight queries should use differently configured engines instead.
    pub fn with_weights(mut self, weights: WeightConfig) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Overrides the exploration + pattern generation wall-clock budget
    /// (`None` removes the limit).
    pub fn with_prover_time_limit(mut self, limit: Option<Duration>) -> Self {
        self.prover_time_limit = Some(limit);
        self
    }

    /// Overrides the reconstruction wall-clock budget (`None` removes the
    /// limit).
    pub fn with_reconstruction_time_limit(mut self, limit: Option<Duration>) -> Self {
        self.reconstruction_time_limit = Some(limit);
        self
    }

    /// Overrides the hard cap on exploration requests.
    pub fn with_max_explore_requests(mut self, max: usize) -> Self {
        self.max_explore_requests = Some(max);
        self
    }

    /// Overrides the hard cap on reconstruction steps.
    pub fn with_max_reconstruction_steps(mut self, max: usize) -> Self {
        self.max_reconstruction_steps = Some(max);
        self
    }

    /// Bounds the depth of synthesized terms for this query.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(Some(depth));
        self
    }

    /// Removes the session's depth bound for this query.
    pub fn without_max_depth(mut self) -> Self {
        self.max_depth = Some(None);
        self
    }

    /// Overrides whether coercion applications are erased from the reported
    /// snippets.
    pub fn with_erase_coercions(mut self, erase: bool) -> Self {
        self.erase_coercions = Some(erase);
        self
    }

    /// Attaches a cooperative cancellation token, checked between
    /// reconstruction pops. A query whose token fires stops early and
    /// reports `truncated`; the interrupted walk state is discarded rather
    /// than parked, so later queries under the same budgets start clean.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The session configuration with this query's overrides applied.
    fn effective_config(&self, base: &SynthesisConfig) -> SynthesisConfig {
        SynthesisConfig {
            weights: self.weights.clone().unwrap_or_else(|| base.weights.clone()),
            prover_time_limit: self.prover_time_limit.unwrap_or(base.prover_time_limit),
            reconstruction_time_limit: self
                .reconstruction_time_limit
                .unwrap_or(base.reconstruction_time_limit),
            max_explore_requests: self
                .max_explore_requests
                .unwrap_or(base.max_explore_requests),
            max_reconstruction_steps: self
                .max_reconstruction_steps
                .unwrap_or(base.max_reconstruction_steps),
            max_depth: self.max_depth.unwrap_or(base.max_depth),
            erase_coercions: self.erase_coercions.unwrap_or(base.erase_coercions),
            // Engine-level knobs; queries cannot override the cache bounds
            // or the parallelism of shared preparation/build phases.
            graph_cache_capacity: base.graph_cache_capacity,
            point_cache_capacity: base.point_cache_capacity,
            suspended_walk_capacity: base.suspended_walk_capacity,
            sigma_shards: base.sigma_shards,
            graph_build_threads: base.graph_build_threads,
            analysis_cache_capacity: base.analysis_cache_capacity,
            prune_dead_decls: base.prune_dead_decls,
        }
    }
}

/// One prepared program point, shared by every session that addresses it:
/// the canonical declaration list (the one first prepared — structurally
/// equal environments resolve to it), the σ-lowered environment, and the σ
/// cost that was paid for it.
#[derive(Debug)]
pub(crate) struct PreparedPoint {
    env: TypeEnv,
    prepared: Arc<PreparedEnv>,
    prepare_time: Duration,
}

/// The inputs that determine a derivation graph: the program point's
/// fingerprint and the goal, plus every configuration knob that can change
/// what exploration and pattern generation produce. Anything else (`n`,
/// reconstruction budgets, coercion erasure) only affects the walk and
/// shares the cached graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ArtifactKey {
    fingerprint: EnvFingerprint,
    goal: Ty,
    max_explore_requests: usize,
    prover_time_limit: Option<Duration>,
}

/// Everything a query needs that does not depend on `n` or the reconstruction
/// budgets: the derivation graph plus the statistics and timings of the
/// phases that built it. Cached per [`ArtifactKey`] on the engine, so
/// repeated queries — from any session addressing the same program point —
/// replay the recorded stats and walk the same graph.
#[derive(Debug)]
pub(crate) struct QueryArtifacts {
    graph: DerivationGraph,
    /// The program point the graph was built over. The graph's `Head::Decl`
    /// edges are indices into *this* point's declaration list, so term
    /// rendering always resolves against it — never against the querying
    /// session's (possibly permuted, possibly delta-extended) environment.
    point: Arc<PreparedPoint>,
    explore_time: Duration,
    patterns_time: Duration,
    reachability_terms: usize,
    requests_processed: usize,
    patterns: usize,
    explore_truncated: bool,
    /// `true` when the exploration truncation was wall-clock-driven — a
    /// nondeterministic outcome that must not be cached.
    time_truncated: bool,
    /// Sorted names of every base type exploration requested. A declaration
    /// can influence this graph — as a match, a queue weight or a `Select`
    /// edge — only if its return-type name appears here; the delta path
    /// carries an artifact across an edit exactly when no changed
    /// declaration's return type does.
    touched_rets: Box<[String]>,
    /// Suspended walk states parked on this graph by finished streams, so a
    /// follow-up query under the same reconstruction budgets resumes the
    /// walk — popping only the delta — instead of replaying it. Because the
    /// walks live *on* the artifact, they inherit its lifecycle for free:
    /// evicting or dropping the artifact drops them, and the delta
    /// carry-over path carries them exactly when it carries the graph —
    /// which it does only when the edit provably cannot reach it.
    suspended: Mutex<SuspendedWalks>,
}

/// The suspended walks parked on one cached graph, keyed by the
/// reconstruction budgets that shaped their trajectories, with a local LRU
/// clock. Together with the artifact cache's own key this realises the full
/// `(fingerprint, goal, budgets, overrides)` resume key: artifacts are
/// already cached per `(fingerprint, goal, explore budgets)`, and
/// weight-override queries run against private artifacts, so a walk can
/// never be resumed across differing weights.
#[derive(Default)]
struct SuspendedWalks {
    clock: u64,
    walks: HashMap<StreamKey, (u64, WalkState)>,
}

impl fmt::Debug for SuspendedWalks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SuspendedWalks")
            .field("walks", &self.walks.len())
            .finish()
    }
}

/// The reconstruction budgets that shape a walk's trajectory — the
/// per-graph key under which suspended walks are parked and resumed. Two
/// queries agreeing on every component walk identical trajectories, so the
/// later one may adopt the earlier one's state; any differing budget starts
/// fresh. (`max_frontier` is a fixed default on the session path and needs
/// no component.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StreamKey {
    max_steps: usize,
    time_limit: Option<Duration>,
    max_depth: Option<usize>,
}

impl StreamKey {
    fn of(config: &SynthesisConfig) -> StreamKey {
        StreamKey {
            max_steps: config.max_reconstruction_steps,
            time_limit: config.reconstruction_time_limit,
            max_depth: config.max_depth,
        }
    }
}

impl QueryArtifacts {
    /// Removes (checks out) the suspended walk parked under `key`, if any.
    /// Removal makes checkout race-free: of two concurrent streams, one
    /// resumes the walk and the other starts fresh — both byte-identical.
    fn checkout_walk(&self, key: &StreamKey) -> Option<WalkState> {
        lock_recovering(&self.suspended)
            .walks
            .remove(key)
            .map(|(_, state)| state)
    }

    /// Parks (checks in) a suspended walk under `key`, evicting the least
    /// recently parked walks beyond `capacity`. Callers must withhold
    /// wall-clock-truncated states — those may have lost a partially
    /// expanded frontier entry and are not safe to resume.
    fn checkin_walk(&self, key: StreamKey, state: WalkState, capacity: usize) {
        if capacity == 0 {
            return;
        }
        let mut suspended = lock_recovering(&self.suspended);
        suspended.clock += 1;
        let stamp = suspended.clock;
        suspended.walks.insert(key, (stamp, state));
        while suspended.walks.len() > capacity {
            let victim = suspended
                .walks
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(key, _)| key.clone());
            match victim {
                Some(key) => suspended.walks.remove(&key),
                None => break,
            };
        }
    }

    fn clear_suspended(&self) {
        lock_recovering(&self.suspended).walks.clear();
    }

    fn suspended_walk_count(&self) -> usize {
        lock_recovering(&self.suspended).walks.len()
    }
}

/// A cached value together with its LRU recency stamp (atomic so hits can
/// refresh it under the shared read lock).
#[derive(Debug)]
struct Stamped<T> {
    value: T,
    last_used: AtomicU64,
}

/// The single-flight build slot of one artifact key: concurrent queries for
/// one key all wait on (and share) exactly one build.
type GraphCell = Arc<OnceLock<Arc<QueryArtifacts>>>;

/// A cached derivation-graph slot: the build cell plus the prepared point
/// this cache line serves. Every lookup verifies its session's point against
/// it (pointer-fast for sessions sharing the point, structurally otherwise),
/// so a graph whose `Head::Decl` indices were resolved against one
/// declaration order can never be rendered through another — and a
/// fingerprint collision degrades to a private, uncached build.
#[derive(Debug)]
struct GraphSlot {
    cell: GraphCell,
    point: Arc<PreparedPoint>,
}

/// A cached environment analysis: the report plus the prepared point it was
/// computed over. Lookups verify their point against it (pointer-fast for
/// sessions sharing the canonical point, structural otherwise) because the
/// report's diagnostic `decls` indices resolve against *that* point's
/// declaration order — a fingerprint collision, or a permuted twin prepared
/// past the point cache, must recompute rather than share.
#[derive(Debug)]
struct AnalysisSlot {
    point: Arc<PreparedPoint>,
    report: Arc<AnalysisReport>,
}

type PointMap = HashMap<EnvFingerprint, Stamped<Arc<PreparedPoint>>>;
type GraphMap = HashMap<ArtifactKey, Stamped<GraphSlot>>;
type AnalysisMap = HashMap<EnvFingerprint, Stamped<AnalysisSlot>>;

/// How a point-cache lookup decides whether a cached environment may stand
/// in for the requested one.
#[derive(Clone, Copy)]
enum PointMatch {
    /// Same declaration multiset, any order — the requested point resolves
    /// to the cached canonical representative. Correct wherever the caller's
    /// contract is "structurally equal points answer identically (in the
    /// canonical order)", i.e. [`Engine::prepare`].
    Canonical,
    /// The identical declaration list. Required wherever the caller promises
    /// byte-identity with a fresh preparation of a *specific* list —
    /// [`Session::update`] — because equal-weight ties emit in declaration
    /// order, so a permutation is observably different there.
    Exact,
}

impl PointMatch {
    fn accepts(self, cached: &TypeEnv, requested: &TypeEnv) -> bool {
        match self {
            PointMatch::Canonical => envs_equivalent(cached, requested),
            PointMatch::Exact => cached == requested,
        }
    }
}

/// Evicts least-recently-used entries until `map` fits `capacity`. The entry
/// a caller just stamped carries the newest stamp, so it is never the victim.
fn evict_lru<K: Clone + Eq + std::hash::Hash, T>(
    map: &mut HashMap<K, Stamped<T>>,
    capacity: usize,
) {
    while map.len() > capacity {
        let victim = map
            .iter()
            .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
            .map(|(key, _)| key.clone());
        match victim {
            Some(victim) => {
                map.remove(&victim);
            }
            None => break,
        }
    }
}

/// The engine-level content-addressed caches: prepared program points keyed
/// by [`EnvFingerprint`], and query artifacts (derivation graphs) keyed by
/// `(fingerprint, goal, prover budgets)`. Shared — behind one `Arc` — by the
/// engine, its clones, and every session it prepares.
///
/// Both caches survive panics: they only ever hold fully built values, so
/// poisoned locks are recovered (`into_inner`) rather than propagated, and
/// one panicking query thread can never brick the other threads sharing the
/// engine.
#[derive(Debug)]
pub(crate) struct ArtifactCache {
    points: RwLock<PointMap>,
    graphs: RwLock<GraphMap>,
    /// Environment analyses keyed by fingerprint, LRU-bounded by
    /// [`SynthesisConfig::analysis_cache_capacity`].
    analyses: RwLock<AnalysisMap>,
    /// Monotone stamp source for both caches' LRU recency ordering.
    clock: AtomicU64,
    /// σ-lowering runs (full and incremental preparations).
    prepares: AtomicUsize,
    /// σ-lowering runs that took the sharded parallel path (> 1 shard).
    sharded_prepares: AtomicUsize,
    /// Cumulative wall time of all σ-lowering runs, in nanoseconds.
    prepare_time_ns: AtomicU64,
    /// Portion of `prepare_time_ns` spent in sharded parallel runs.
    sharded_prepare_time_ns: AtomicU64,
    /// Derivation-graph builds across every session of the engine.
    graph_builds: AtomicUsize,
    /// Environment analyses performed (analysis-cache misses).
    analyses_run: AtomicUsize,
}

impl ArtifactCache {
    fn new() -> Self {
        ArtifactCache {
            points: RwLock::new(HashMap::new()),
            graphs: RwLock::new(HashMap::new()),
            analyses: RwLock::new(HashMap::new()),
            clock: AtomicU64::new(0),
            prepares: AtomicUsize::new(0),
            sharded_prepares: AtomicUsize::new(0),
            prepare_time_ns: AtomicU64::new(0),
            sharded_prepare_time_ns: AtomicU64::new(0),
            graph_builds: AtomicUsize::new(0),
            analyses_run: AtomicUsize::new(0),
        }
    }

    /// Accounts one σ-lowering run: the work counter, its wall time, and —
    /// when it fanned out over more than one shard — the sharded-path
    /// counters the stats snapshot reports.
    fn record_prepare(&self, shards: usize, elapsed: Duration) {
        let ns = elapsed.as_nanos() as u64;
        self.prepares.fetch_add(1, Ordering::Relaxed);
        self.prepare_time_ns.fetch_add(ns, Ordering::Relaxed);
        if shards > 1 {
            self.sharded_prepares.fetch_add(1, Ordering::Relaxed);
            self.sharded_prepare_time_ns
                .fetch_add(ns, Ordering::Relaxed);
        }
    }

    fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Acquires a cache map for reading, recovering from a poisoned lock (the
    /// maps only ever hold fully built values, so the state is safe to
    /// adopt).
    fn read_points(&self) -> RwLockReadGuard<'_, PointMap> {
        self.points.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_points(&self) -> RwLockWriteGuard<'_, PointMap> {
        self.points.write().unwrap_or_else(|e| e.into_inner())
    }

    fn read_graphs(&self) -> RwLockReadGuard<'_, GraphMap> {
        self.graphs.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_graphs(&self) -> RwLockWriteGuard<'_, GraphMap> {
        self.graphs.write().unwrap_or_else(|e| e.into_inner())
    }

    fn read_analyses(&self) -> RwLockReadGuard<'_, AnalysisMap> {
        self.analyses.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_analyses(&self) -> RwLockWriteGuard<'_, AnalysisMap> {
        self.analyses.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a cached analysis report for `point`'s fingerprint, sharing
    /// it only when the cached slot was computed over the same declaration
    /// list (the report's diagnostic indices resolve against it).
    fn lookup_analysis(&self, point: &Arc<PreparedPoint>) -> Option<Arc<AnalysisReport>> {
        let analyses = self.read_analyses();
        let entry = analyses.get(&point.prepared.fingerprint)?;
        let slot = &entry.value;
        if !Arc::ptr_eq(&slot.point, point) && slot.point.env != point.env {
            return None;
        }
        entry.last_used.store(self.stamp(), Ordering::Relaxed);
        Some(Arc::clone(&slot.report))
    }

    /// Inserts a freshly computed analysis, adopting a matching entry another
    /// thread raced in first and evicting least-recently-used reports beyond
    /// `capacity`. A non-matching occupant (fingerprint collision) is left
    /// alone and the caller's report is returned uncached.
    fn insert_analysis(
        &self,
        point: &Arc<PreparedPoint>,
        report: Arc<AnalysisReport>,
        capacity: usize,
    ) -> Arc<AnalysisReport> {
        let mut analyses = self.write_analyses();
        let stamp = self.stamp();
        match analyses.entry(point.prepared.fingerprint) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                let slot = &entry.get().value;
                return if Arc::ptr_eq(&slot.point, point) || slot.point.env == point.env {
                    entry.get().last_used.store(stamp, Ordering::Relaxed);
                    Arc::clone(&slot.report)
                } else {
                    report
                };
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Stamped {
                    value: AnalysisSlot {
                        point: Arc::clone(point),
                        report: Arc::clone(&report),
                    },
                    last_used: AtomicU64::new(stamp),
                });
            }
        }
        evict_lru(&mut analyses, capacity);
        report
    }

    /// Looks up a prepared point by fingerprint, verifying the stored
    /// environment matches `env` before sharing it. [`PointMatch::Canonical`]
    /// accepts any declaration order (the cross-point feature:
    /// [`Engine::prepare`] resolves permutations to the canonical
    /// representative); [`PointMatch::Exact`] requires the identical
    /// declaration list — the mode [`Session::update`] uses, whose contract
    /// is byte-identity with a fresh preparation of the edited list, and
    /// weight-*tie* emission order follows declaration order.
    fn lookup_point(
        &self,
        fingerprint: EnvFingerprint,
        env: &TypeEnv,
        matching: PointMatch,
    ) -> Option<Arc<PreparedPoint>> {
        let points = self.read_points();
        let entry = points.get(&fingerprint)?;
        if !matching.accepts(&entry.value.env, env) {
            // A different declaration order in Exact mode, or a fingerprint
            // collision between unequal environments: never share across it
            // (the caller prepares fresh).
            return None;
        }
        entry.last_used.store(self.stamp(), Ordering::Relaxed);
        Some(Arc::clone(&entry.value))
    }

    /// Inserts a freshly prepared point, adopting a matching entry another
    /// thread raced in first (keeping the cache canonical), and evicting the
    /// least recently used points beyond `capacity`. A non-matching occupant
    /// (collision, or a permutation in Exact mode) is left alone and the
    /// caller's point is returned uncached.
    fn insert_point(
        &self,
        point: Arc<PreparedPoint>,
        capacity: usize,
        matching: PointMatch,
    ) -> Arc<PreparedPoint> {
        let mut points = self.write_points();
        let stamp = self.stamp();
        match points.entry(point.prepared.fingerprint) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                return if matching.accepts(&entry.get().value.env, &point.env) {
                    entry.get().last_used.store(stamp, Ordering::Relaxed);
                    Arc::clone(&entry.get().value)
                } else {
                    point
                };
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Stamped {
                    value: Arc::clone(&point),
                    last_used: AtomicU64::new(stamp),
                });
            }
        }
        evict_lru(&mut points, capacity);
        point
    }

    /// The single-flight build slot for `key`, serving `point`: existing
    /// entries are stamped and shared after verifying they serve the same
    /// program point (pointer-fast when the session shares the cached point,
    /// structural otherwise), a missing entry is created empty (the caller
    /// initializes it outside the lock), and the cache is bounded to
    /// `capacity` by LRU eviction. Returns `None` when the key is occupied
    /// by a *different* program point — a fingerprint collision — in which
    /// case the caller must build privately and cache nothing.
    fn graph_cell(
        &self,
        key: ArtifactKey,
        point: &Arc<PreparedPoint>,
        capacity: usize,
    ) -> Option<GraphCell> {
        // Pointer equality covers every session sharing the cached canonical
        // point (the common case); the fallback comparison is *exact* — a
        // permuted-but-equal environment emits equal-weight ties in a
        // different order, so sharing its graphs would leak the other
        // ordering into this session's results.
        let serves =
            |slot: &GraphSlot| Arc::ptr_eq(&slot.point, point) || slot.point.env == point.env;
        if let Some(entry) = self.read_graphs().get(&key) {
            if !serves(&entry.value) {
                return None;
            }
            entry.last_used.store(self.stamp(), Ordering::Relaxed);
            return Some(Arc::clone(&entry.value.cell));
        }
        let mut graphs = self.write_graphs();
        let stamp = self.stamp();
        let entry = graphs.entry(key).or_insert_with(|| Stamped {
            value: GraphSlot {
                cell: Arc::new(OnceLock::new()),
                point: Arc::clone(point),
            },
            last_used: AtomicU64::new(0),
        });
        if !serves(&entry.value) {
            return None;
        }
        entry.last_used.store(stamp, Ordering::Relaxed);
        let cell = Arc::clone(&entry.value.cell);
        evict_lru(&mut graphs, capacity);
        Some(cell)
    }

    /// Removes `key` if it still maps to `cell` — used to drop
    /// wall-clock-truncated builds, which are a property of the moment and
    /// must not stay cached.
    fn discard_graph(&self, key: &ArtifactKey, cell: &GraphCell) {
        let mut graphs = self.write_graphs();
        if let Some(entry) = graphs.get(key) {
            if Arc::ptr_eq(&entry.value.cell, cell) {
                graphs.remove(key);
            }
        }
    }

    /// Copies every fully built artifact of `old_point` that `keep` accepts
    /// to the same key under `new_point`'s fingerprint — the delta path's
    /// selective carry-over. The new entries serve (and verify against) the
    /// edited point; the shared artifacts keep referencing their original
    /// build point, whose declaration prefix the edited environment extends.
    fn carry_over(
        &self,
        old_point: &Arc<PreparedPoint>,
        new_point: &Arc<PreparedPoint>,
        capacity: usize,
        keep: impl Fn(&QueryArtifacts) -> bool,
    ) {
        let old_fp = old_point.prepared.fingerprint;
        let new_fp = new_point.prepared.fingerprint;
        let survivors: Vec<(ArtifactKey, GraphCell)> = {
            let graphs = self.read_graphs();
            graphs
                .iter()
                .filter_map(|(key, entry)| {
                    if key.fingerprint != old_fp || !Arc::ptr_eq(&entry.value.point, old_point) {
                        return None;
                    }
                    // Only fully built cells can be judged (and shared).
                    let artifacts = entry.value.cell.get()?;
                    keep(artifacts).then(|| {
                        let mut new_key = key.clone();
                        new_key.fingerprint = new_fp;
                        (new_key, Arc::clone(&entry.value.cell))
                    })
                })
                .collect()
        };
        if survivors.is_empty() {
            return;
        }
        let mut graphs = self.write_graphs();
        for (key, cell) in survivors {
            let stamp = self.stamp();
            graphs.entry(key).or_insert(Stamped {
                value: GraphSlot {
                    cell,
                    point: Arc::clone(new_point),
                },
                last_used: AtomicU64::new(stamp),
            });
        }
        evict_lru(&mut graphs, capacity);
    }
}

/// Total order over declarations by content (name, type, kind, frequency,
/// weight-override bits) — the canonicalization behind the multiset
/// comparison. Borrows only; a fingerprint verification must stay cheap
/// next to the σ run it saves.
fn decl_content_cmp(a: &Declaration, b: &Declaration) -> std::cmp::Ordering {
    a.name
        .cmp(&b.name)
        .then_with(|| a.ty.cmp(&b.ty))
        .then_with(|| a.kind.cmp(&b.kind))
        .then_with(|| a.frequency.cmp(&b.frequency))
        .then_with(|| {
            a.weight_override
                .map(f64::to_bits)
                .cmp(&b.weight_override.map(f64::to_bits))
        })
}

/// Structural (multiset) equality of two environments: the same declarations
/// with the same names, types, kinds, frequencies and overrides, in any
/// order. This is the verification behind every fingerprint cache hit.
fn envs_equivalent(a: &TypeEnv, b: &TypeEnv) -> bool {
    if a.len() != b.len() {
        return false;
    }
    fn sorted(env: &TypeEnv) -> Vec<&Declaration> {
        let mut refs: Vec<&Declaration> = env.iter().collect();
        refs.sort_by(|x, y| decl_content_cmp(x, y));
        refs
    }
    sorted(a)
        .into_iter()
        .zip(sorted(b))
        .all(|(x, y)| decl_content_cmp(x, y) == std::cmp::Ordering::Equal)
}

/// One prepared program point: the σ-lowered environment plus the engine
/// configuration it was prepared under.
///
/// Sessions are `Send + Sync`: queries borrow the prepared environment
/// read-only and keep all mutable search state (priority queues, visited
/// sets, newly interned types) in per-query scratch space, so an
/// `Arc<Session>` can answer queries from many threads concurrently.
///
/// Sessions addressing structurally equal environments — prepared through
/// one [`Engine`] (or its clones) — share the prepared point *and* the
/// derivation-graph cache: the first query for a goal builds the graph (and
/// its A* completion bounds), every later query for it, from any such
/// session, goes straight to reconstruction. Builds are single-flight, so
/// concurrent first queries perform exactly one build. Only completely
/// explored graphs stay cached — a build whose exploration hit the prover's
/// wall-clock budget serves its queries and is discarded, so a transiently
/// slow machine can never pin incomplete results onto the engine. Cached
/// queries are byte-identical to what an uncached run of the same
/// (untruncated) build returns.
///
/// The cache is **bounded**: at most
/// [`SynthesisConfig::graph_cache_capacity`] graphs (default 64) are kept
/// across the engine, and the least recently used graph is evicted when a
/// new key would exceed the bound. The cache also survives panics: a query
/// thread that panics mid-cache-access (poisoning a lock) never bricks the
/// other threads sharing the engine, because the caches only ever hold fully
/// built values and the locks are recovered on the next access.
///
/// [`Session::update`] derives a session for an *edited* environment,
/// re-running σ only on the changed declarations and carrying the cached
/// graphs the edit provably cannot affect — see [`EnvDelta`].
#[derive(Debug)]
pub struct Session {
    point: Arc<PreparedPoint>,
    config: SynthesisConfig,
    cache: Arc<ArtifactCache>,
    /// Number of derivation-graph builds this session has performed (cache
    /// misses, non-cacheable truncated builds, and weight-override queries).
    graph_builds: AtomicUsize,
}

impl Session {
    /// The canonical declaration list of this session's program point. When
    /// the point was served from the fingerprint cache this is the list first
    /// prepared — structurally equal to (but possibly a permutation of) the
    /// environment passed to [`Engine::prepare`].
    pub fn env(&self) -> &TypeEnv {
        &self.point.env
    }

    /// The configuration queries inherit (before per-query overrides).
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// The σ-lowered environment.
    pub fn prepared(&self) -> &PreparedEnv {
        &self.point.prepared
    }

    /// The content address of this session's program point.
    pub fn fingerprint(&self) -> EnvFingerprint {
        self.point.prepared.fingerprint
    }

    /// How long the σ-lowering of this program point took — the cost that is
    /// paid once per *structurally distinct* point (fingerprint hits and
    /// incremental updates pay less) instead of once per query.
    pub fn prepare_time(&self) -> Duration {
        self.point.prepare_time
    }

    fn count_build(&self) {
        self.graph_builds.fetch_add(1, Ordering::Relaxed);
        self.cache.graph_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Answers one query against this program point.
    ///
    /// Does not re-run σ (unless the query overrides the weight
    /// configuration, which forces an internal re-preparation), and reuses
    /// the engine-cached derivation graph when the goal was queried before —
    /// by this session or any session addressing a structurally equal point
    /// — the repeated-query fast path that skips exploration and pattern
    /// generation entirely.
    pub fn query(&self, query: &Query) -> SynthesisResult {
        self.query_stream(query).into_result(query.n)
    }

    /// Opens a [`TermStream`] for `query`: the iterator form of
    /// [`Session::query`], yielding [`RankedTerm`]s one at a time as the
    /// walk pops them, in the same byte-identical best-first order.
    ///
    /// The stream resolves (or reuses) the cached derivation graph exactly
    /// as `query` does, then either *resumes* a suspended walk parked by an
    /// earlier stream under the same reconstruction budgets — popping only
    /// the delta — or starts a fresh walk. Dropping the stream parks its
    /// walk state back on the cached artifact (unless wall-clock-truncated),
    /// so `query(n=10)` followed by `query(n=20)` pays for ten new
    /// emissions, not thirty. Resumption is an optimisation only: emission
    /// order, terms and weights are identical either way.
    pub fn query_stream(&self, query: &Query) -> TermStream {
        let config = query.effective_config(&self.config);
        if let Some(weights) = &query.weights {
            if *weights != self.config.weights {
                // Weight overrides invalidate the prepared per-type weights
                // (and every cached graph, which bakes them into its edges):
                // re-prepare privately for this query (the documented slow
                // path; the shared session is left untouched). The private
                // artifact dies with the stream, so its suspended walk can
                // never resume under different weights.
                let point = Arc::new(PreparedPoint {
                    env: self.point.env.clone(),
                    prepared: Arc::new(PreparedEnv::prepare(&self.point.env, weights)),
                    prepare_time: Duration::ZERO,
                });
                self.count_build();
                let artifacts = Arc::new(build_artifacts(&point, &config, &query.goal));
                let decls = point.env.len();
                let distinct = point.prepared.distinct_succinct_types();
                return TermStream::open(artifacts, config, decls, distinct, query.cancel.clone());
            }
        }

        let cell = if self.config.graph_cache_capacity == 0 {
            None
        } else {
            let key = ArtifactKey {
                fingerprint: self.fingerprint(),
                goal: query.goal.clone(),
                max_explore_requests: config.max_explore_requests,
                prover_time_limit: config.prover_time_limit,
            };
            self.cache
                .graph_cell(key.clone(), &self.point, self.config.graph_cache_capacity)
                .map(|cell| (key, cell))
        };
        let artifacts = match cell {
            // Caching disabled, or the key is occupied by a structurally
            // different program point (a fingerprint collision): build
            // privately, per query, caching nothing.
            None => {
                self.count_build();
                Arc::new(build_artifacts(&self.point, &config, &query.goal))
            }
            Some((key, cell)) => {
                let artifacts = Arc::clone(cell.get_or_init(|| {
                    self.count_build();
                    Arc::new(build_artifacts(&self.point, &config, &query.goal))
                }));
                if artifacts.time_truncated {
                    // A wall-clock-truncated exploration is a property of
                    // this moment, not of the goal: caching it would pin an
                    // incomplete graph on the engine forever. Use it for the
                    // queries already waiting on this cell and let the next
                    // query re-explore. (A `max_explore_requests`-capped
                    // exploration is deterministic — the cap is part of the
                    // key — and caches normally.)
                    self.cache.discard_graph(&key, &cell);
                }
                artifacts
            }
        };
        let decls = self.point.env.len();
        let distinct = self.point.prepared.distinct_succinct_types();
        TermStream::open(artifacts, config, decls, distinct, query.cancel.clone())
    }

    /// Derives a session for the environment obtained by applying `delta` to
    /// this session's point — the edit-time path of the interactive loop.
    ///
    /// Results from the returned session are **byte-identical** to a fresh
    /// [`Engine::prepare`] of the edited environment. What varies is the
    /// work performed:
    ///
    /// * additions and reweights re-run σ only on the changed declarations
    ///   ([`PreparedEnv::prepare_appended`]) and **carry over** every cached
    ///   derivation graph whose exploration provably cannot observe the
    ///   change (no changed declaration's return type was ever requested,
    ///   the initial succinct environment is unchanged, and the edit does
    ///   not flip weight monotonicity);
    /// * removals, and deltas larger than a quarter of the environment,
    ///   fall back to a fresh preparation (a removal shifts the interning
    ///   sequence, so nothing can be proven bit-identical cheaply);
    /// * a no-op delta (or one whose result is already cached **with the
    ///   identical declaration order**) returns a session sharing the
    ///   existing point outright. Unlike [`Engine::prepare`], this path
    ///   never resolves to a permuted canonical representative: equal-weight
    ///   ties emit in declaration order, and the byte-identity promise is to
    ///   the edited list itself, so a cached permutation is prepared past
    ///   (uncached) rather than adopted.
    ///
    /// The original session remains fully usable — sessions are immutable;
    /// an editor keeps one session per open revision if it wants to.
    pub fn update(&self, delta: &EnvDelta) -> Session {
        let old_point = &self.point;
        let old_env = &old_point.env;
        let new_env = delta.apply(old_env);
        let fingerprint = PreparedEnv::fingerprint_of(&new_env, &self.config.weights);
        // Sharing on this path demands the *identical* declaration list
        // (PointMatch::Exact, and plain equality for the no-op shortcut):
        // update's contract is byte-identity with a fresh preparation of the
        // edited list, and equal-weight ties emit in declaration order, so a
        // structurally-equal permutation is not interchangeable here.
        if fingerprint == old_point.prepared.fingerprint && *old_env == new_env {
            return self.resession(Arc::clone(old_point));
        }
        let point_capacity = self.config.point_cache_capacity;
        if point_capacity > 0 {
            if let Some(point) = self
                .cache
                .lookup_point(fingerprint, &new_env, PointMatch::Exact)
            {
                return self.resession(point);
            }
        }

        // The incremental path covers appends and in-place reweights; it is
        // skipped when the delta rivals the environment in size (at that
        // scale a fresh preparation costs about the same and carries no
        // bookkeeping risk).
        let incremental = delta.removes.is_empty()
            && delta.adds.len() + delta.reweights.len() <= 16.max(old_env.len() / 4);
        // The incremental path σ-lowers only the appended suffix, so it never
        // shards; the fresh fallback scales like Engine::prepare and does.
        let shards = if incremental {
            1
        } else {
            effective_sigma_shards(self.config.sigma_shards, new_env.len())
        };
        let started = Instant::now();
        let prepared = if incremental {
            Arc::new(PreparedEnv::prepare_appended(
                &old_point.prepared,
                &new_env,
                &self.config.weights,
                old_env.len(),
                fingerprint,
            ))
        } else {
            Arc::new(PreparedEnv::prepare_with_fingerprint_sharded(
                &new_env,
                &self.config.weights,
                fingerprint,
                shards,
            ))
        };
        let prepare_time = started.elapsed();
        self.cache.record_prepare(shards, prepare_time);
        let point = Arc::new(PreparedPoint {
            env: new_env,
            prepared,
            prepare_time,
        });

        if incremental && self.config.graph_cache_capacity > 0 {
            // Selective carry-over: a cached graph survives the edit iff a
            // fresh build against the edited environment would be identical.
            // That holds when (a) the initial succinct environment kept its
            // identity (no brand-new declaration *type* entered Γ), (b) the
            // edit does not flip weight monotonicity (which selects between
            // the A* and best-first regimes globally), and (c) the goal's
            // exploration never requested any changed declaration's return
            // type — a declaration can influence exploration order, matches
            // or `Select` edges only through requests for its return type.
            let old_monotone = old_point.prepared.weights_monotone(&self.config.weights);
            let new_monotone = point.prepared.weights_monotone(&self.config.weights);
            if point.prepared.init_env == old_point.prepared.init_env
                && old_monotone == new_monotone
            {
                let changed = changed_ret_names(&old_point.prepared, &point.prepared, &point.env);
                self.cache.carry_over(
                    old_point,
                    &point,
                    self.config.graph_cache_capacity,
                    |artifacts| {
                        !artifacts.explore_truncated
                            && !artifacts.time_truncated
                            && changed
                                .iter()
                                .all(|ret| artifacts.touched_rets.binary_search(ret).is_err())
                    },
                );
            }
        }

        let point = if point_capacity > 0 {
            self.cache
                .insert_point(point, point_capacity, PointMatch::Exact)
        } else {
            point
        };
        self.resession(point)
    }

    fn resession(&self, point: Arc<PreparedPoint>) -> Session {
        Session {
            point,
            config: self.config.clone(),
            cache: Arc::clone(&self.cache),
            graph_builds: AtomicUsize::new(0),
        }
    }

    /// Number of derivation graphs currently cached for this session's
    /// program point (one per distinct goal/prover-budget combination
    /// queried so far, bounded — together with every other point's graphs —
    /// by [`SynthesisConfig::graph_cache_capacity`]).
    pub fn cached_graph_count(&self) -> usize {
        let fingerprint = self.fingerprint();
        self.cache
            .read_graphs()
            .keys()
            .filter(|key| key.fingerprint == fingerprint)
            .count()
    }

    /// Number of derivation-graph builds this session has performed — cache
    /// misses plus non-cacheable builds (wall-clock-truncated explorations,
    /// weight-override queries). The difference between queries issued and
    /// builds performed is the cache's hit count for this session. (The
    /// engine-wide total, across sessions, is
    /// [`Engine::graph_build_count`].)
    pub fn graph_build_count(&self) -> usize {
        self.graph_builds.load(Ordering::Relaxed)
    }

    /// Answers several queries against this program point, sequentially,
    /// returning results in input order.
    pub fn query_many(&self, queries: &[Query]) -> Vec<SynthesisResult> {
        queries.iter().map(|q| self.query(q)).collect()
    }

    /// Decides inhabitation only (the "prover" mode used for the Imogen/fCube
    /// comparison of Table 2): runs exploration and pattern generation and
    /// checks whether the goal type received a pattern, without
    /// reconstructing any term.
    pub fn is_inhabited(&self, goal: &Ty) -> bool {
        use insynth_succinct::TypeStore;

        let prepared = self.prepared();
        let mut store = prepared.scratch();
        let goal_succ = store.sigma(goal);
        let space = explore(
            prepared,
            &mut store,
            goal_succ,
            &ExploreLimits {
                max_requests: self.config.max_explore_requests,
                time_limit: self.config.prover_time_limit,
            },
        );
        let patterns = generate_patterns(&mut store, &space);
        let goal_args = store.args_of(goal_succ).to_vec();
        let extended = store.env_union(prepared.init_env, &goal_args);
        let ret = store.ret_of(goal_succ);
        patterns.is_inhabited(ret, extended)
    }

    /// Statically analyzes this session's program point — the session form
    /// of [`Engine::analyze`], sharing the same fingerprint-keyed report
    /// cache. The report's diagnostic indices resolve against
    /// [`Session::env`] (the canonical declaration list).
    pub fn analyze(&self) -> Arc<AnalysisReport> {
        let capacity = self.config.analysis_cache_capacity;
        if capacity > 0 {
            if let Some(report) = self.cache.lookup_analysis(&self.point) {
                return report;
            }
        }
        self.cache.analyses_run.fetch_add(1, Ordering::Relaxed);
        let report = Arc::new(analyze_point(&self.point, &self.config));
        if capacity > 0 {
            self.cache.insert_analysis(&self.point, report, capacity)
        } else {
            report
        }
    }
}

/// Runs the goal-independent static analysis over one prepared point: adapts
/// the declaration list and the σ-lowering into the analyzer's
/// [`DeclFacts`] form and hands it the frozen succinct store.
fn analyze_point(point: &Arc<PreparedPoint>, config: &SynthesisConfig) -> AnalysisReport {
    let prepared = &point.prepared;
    let facts: Vec<DeclFacts> = point
        .env
        .iter()
        .enumerate()
        .map(|(idx, decl)| DeclFacts {
            name: decl.name.clone(),
            rendered_ty: decl.ty.to_string(),
            kind: decl.kind.to_string(),
            succ: prepared.decl_succ[idx],
            weight: prepared.decl_weight[idx].value(),
        })
        .collect();
    analyze(
        &prepared.store,
        &facts,
        config.weights.lambda_weight().value(),
    )
}

/// The sorted return-type names of every declaration whose effective weight
/// changed between the two (prefix-aligned) preparations, plus those of every
/// appended declaration — the set of base types an edit can influence
/// exploration through.
fn changed_ret_names(
    old_prepared: &PreparedEnv,
    new_prepared: &PreparedEnv,
    new_env: &TypeEnv,
) -> Vec<String> {
    let prefix_len = old_prepared.decl_weight.len();
    let mut changed: BTreeSet<String> = BTreeSet::new();
    for (idx, decl) in new_env.iter().enumerate() {
        let touched =
            idx >= prefix_len || old_prepared.decl_weight[idx] != new_prepared.decl_weight[idx];
        if touched {
            changed.insert(decl.ty.result_base().to_owned());
        }
    }
    changed.into_iter().collect()
}

/// The opt-in dead-declaration prune ([`SynthesisConfig::prune_dead_decls`]):
/// runs the goal-extended producibility analysis over `point` and, when it
/// proves declarations dead, re-prepares the environment without them.
/// Returns `None` when nothing is prunable (the common case — the caller
/// builds against the original point, paying nothing beyond the analysis).
///
/// Answer-preserving by construction: a declaration is only dropped when
/// some parameter type is unproducible even in `E_max` extended with the
/// goal's argument types, and every environment the walk constructs is a
/// subset of that extension — so the declaration can head no subterm of any
/// completion for this goal. The pruned point's σ cost is deliberately not
/// recorded in the engine's prepare counters (the prune is a per-build
/// private detail, not a cross-point cache event).
fn pruned_point(
    point: &Arc<PreparedPoint>,
    config: &SynthesisConfig,
    goal: &Ty,
) -> Option<Arc<PreparedPoint>> {
    use insynth_succinct::TypeStore;

    let prepared = &point.prepared;
    let mut store = prepared.scratch();
    let goal_succ = store.sigma(goal);
    let goal_args = store.args_of(goal_succ).to_vec();
    let dead = dead_decl_indices(&store, &prepared.decl_succ, &goal_args);
    if dead.is_empty() {
        return None;
    }
    let dead: std::collections::HashSet<usize> = dead.into_iter().collect();
    let env: TypeEnv = point
        .env
        .iter()
        .enumerate()
        .filter(|(idx, _)| !dead.contains(idx))
        .map(|(_, decl)| decl.clone())
        .collect();
    let prepared = Arc::new(PreparedEnv::prepare(&env, &config.weights));
    Some(Arc::new(PreparedPoint {
        env,
        prepared,
        prepare_time: Duration::ZERO,
    }))
}

/// Runs exploration, pattern generation and graph compilation for one goal —
/// the phases the engine caches per [`ArtifactKey`]. With
/// [`SynthesisConfig::prune_dead_decls`] set, the build first drops the
/// declarations the static analysis proves unusable for this goal and runs
/// against the pruned point; the emitted terms and weights are identical
/// either way (the prune is answer-preserving), only the graph is smaller.
pub(crate) fn build_artifacts(
    point: &Arc<PreparedPoint>,
    config: &SynthesisConfig,
    goal: &Ty,
) -> QueryArtifacts {
    if config.prune_dead_decls {
        if let Some(pruned) = pruned_point(point, config, goal) {
            return build_artifacts_inner(&pruned, config, goal);
        }
    }
    build_artifacts_inner(point, config, goal)
}

fn build_artifacts_inner(
    point: &Arc<PreparedPoint>,
    config: &SynthesisConfig,
    goal: &Ty,
) -> QueryArtifacts {
    use insynth_succinct::TypeStore;

    let prepared = &point.prepared;
    let env = &point.env;
    let mut store = prepared.scratch();
    let goal_succ = store.sigma(goal);

    let explore_started = Instant::now();
    let space = explore(
        prepared,
        &mut store,
        goal_succ,
        &ExploreLimits {
            max_requests: config.max_explore_requests,
            time_limit: config.prover_time_limit,
        },
    );
    let explore_time = explore_started.elapsed();

    // Pattern generation and graph compilation are one phase for reporting:
    // the graph is what GenerateP now emits.
    let patterns_started = Instant::now();
    let patterns = generate_patterns(&mut store, &space);
    let graph = DerivationGraph::build_with_threads(
        prepared,
        &mut store,
        &patterns,
        env,
        &config.weights,
        goal,
        config.graph_build_threads,
    );
    let patterns_time = patterns_started.elapsed();

    let touched: BTreeSet<String> = space
        .processed_rets
        .iter()
        .map(|&sym| store.base_name(sym).to_owned())
        .collect();

    QueryArtifacts {
        graph,
        point: Arc::clone(point),
        explore_time,
        patterns_time,
        reachability_terms: space.terms.len(),
        requests_processed: space.requests_processed,
        patterns: patterns.len(),
        explore_truncated: space.truncated,
        time_truncated: space.time_truncated,
        touched_rets: touched.into_iter().collect::<Vec<_>>().into_boxed_slice(),
        suspended: Mutex::new(SuspendedWalks::default()),
    }
}

/// A lazily advancing stream of ranked completions for one query — the
/// iterator form of [`Session::query`], opened by
/// [`Session::query_stream`].
///
/// Each [`next`](Iterator::next) call yields the next-best [`RankedTerm`]
/// in the same byte-identical weight order `query` reports, popping the
/// frontier only as far as demanded. [`has_more`](TermStream::has_more)
/// says whether another call could yield — the pagination contract
/// (`values` + `has_more`) a completion front-end speaks.
///
/// Dropping the stream suspends its walk state back onto the engine-cached
/// artifact (folding the per-walk memos into the graph's shared caches), so
/// the next stream or query under the same reconstruction budgets *resumes*
/// where this one stopped instead of replaying its pops. Resumption never
/// changes results — only how much work the follow-up pays.
pub struct TermStream {
    artifacts: Arc<QueryArtifacts>,
    config: SynthesisConfig,
    limits: GenerateLimits,
    key: StreamKey,
    /// Environment-level statistics of the *querying* session's point
    /// (which may be a delta-extension of the graph's build point).
    session_decls: usize,
    session_distinct: usize,
    /// `Some` until `Drop` takes it for check-in.
    state: Option<WalkState>,
    /// Cursor into the walk's emission log: a resumed walk replays its
    /// already-emitted prefix from the log (no pops) before stepping anew.
    pos: usize,
    resumed: bool,
    steps_at_checkout: usize,
    leg_start: Instant,
}

impl TermStream {
    /// Opens a stream over resolved artifacts, resuming the suspended walk
    /// parked under this query's reconstruction budgets when one exists.
    fn open(
        artifacts: Arc<QueryArtifacts>,
        config: SynthesisConfig,
        session_decls: usize,
        session_distinct: usize,
        cancel: Option<CancelToken>,
    ) -> TermStream {
        let limits = GenerateLimits {
            max_steps: config.max_reconstruction_steps,
            time_limit: config.reconstruction_time_limit,
            max_depth: config.max_depth,
            cancel,
            ..GenerateLimits::default()
        };
        let key = StreamKey::of(&config);
        let (state, resumed) = match artifacts.checkout_walk(&key) {
            Some(state) => (state, true),
            None => {
                let astar = artifacts.graph.has_heuristic();
                (WalkState::new(&artifacts.graph, astar), false)
            }
        };
        let steps_at_checkout = state.steps();
        TermStream {
            artifacts,
            config,
            limits,
            key,
            session_decls,
            session_distinct,
            state: Some(state),
            pos: 0,
            resumed,
            steps_at_checkout,
            leg_start: Instant::now(),
        }
    }

    /// `true` when another [`next`](Iterator::next) call could yield a
    /// term: the emission log extends past the cursor, or the frontier is
    /// not exhausted (budget-stopped walks report `true` — raising the
    /// budget could surface more).
    pub fn has_more(&self) -> bool {
        match &self.state {
            Some(state) => self.pos < state.emitted().len() || !state.exhausted(),
            None => false,
        }
    }

    /// `true` when this stream resumed a suspended walk instead of starting
    /// from scratch. Observability only; results are identical either way.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// Drains the stream up to `n` terms and packages the classic
    /// [`SynthesisResult`] — the body of [`Session::query`]. The reported
    /// explore/patterns timings and search statistics are those recorded
    /// when the graph was built, so cached and uncached queries report
    /// identically; reconstruction statistics are *cumulative* across the
    /// walk's legs, so a resumed query reports exactly what a from-scratch
    /// walk to the same `n` would (`reconstruction_new_steps` carries the
    /// delta this query actually paid).
    fn into_result(mut self, n: usize) -> SynthesisResult {
        let recon_started = Instant::now();
        let state = self
            .state
            .as_mut()
            .expect("stream state present until drop");
        while state.emitted().len() < n
            && state
                .step_streamed(
                    &self.artifacts.graph,
                    &self.artifacts.point.env,
                    &self.limits,
                    &self.leg_start,
                )
                .is_some()
        {}
        let recon_time = recon_started.elapsed();

        let state = self
            .state
            .as_ref()
            .expect("stream state present until drop");
        let emitted = state.emitted();
        let served = emitted.len().min(n);
        let snippets = emitted[..served]
            .iter()
            .map(|emission| snippet_of(&emission.term, &self.config))
            .collect();

        // Per-emission snapshots make the cumulative discipline exact: when
        // the n-th term exists, report the pops and truncation state *at its
        // emission*, exactly what a bounded walk to `n` recorded; when the
        // walk stopped short, report the stop itself.
        let (walk_steps, walk_truncated) = if n == 0 {
            (0, false)
        } else if let Some(nth) = emitted.get(n - 1) {
            (nth.steps, nth.truncated)
        } else {
            (
                state.steps(),
                state.truncated() || state.time_truncated() || state.cancelled(),
            )
        };

        SynthesisResult {
            snippets,
            timings: PhaseTimings {
                explore: self.artifacts.explore_time,
                patterns: self.artifacts.patterns_time,
                reconstruction: recon_time,
            },
            stats: SynthesisStats {
                initial_declarations: self.session_decls,
                distinct_succinct_types: self.session_distinct,
                reachability_terms: self.artifacts.reachability_terms,
                requests_processed: self.artifacts.requests_processed,
                patterns: self.artifacts.patterns,
                reconstruction_steps: walk_steps,
                reconstruction_pruned_enqueues: state.pruned_enqueues(),
                astar: state.astar(),
                truncated: self.artifacts.explore_truncated || walk_truncated,
                has_more: n < emitted.len() || !state.exhausted(),
                resumed: self.resumed,
                reconstruction_new_steps: state.steps() - self.steps_at_checkout,
            },
        }
        // Dropping `self` here parks the advanced walk for the next query.
    }
}

impl Iterator for TermStream {
    type Item = RankedTerm;

    fn next(&mut self) -> Option<RankedTerm> {
        let state = self.state.as_mut()?;
        if let Some(emission) = state.emitted().get(self.pos) {
            self.pos += 1;
            return Some(emission.term.clone());
        }
        let stepped = state
            .step_streamed(
                &self.artifacts.graph,
                &self.artifacts.point.env,
                &self.limits,
                &self.leg_start,
            )
            .cloned();
        if stepped.is_some() {
            self.pos += 1;
        }
        stepped
    }
}

impl Drop for TermStream {
    fn drop(&mut self) {
        if let Some(mut state) = self.state.take() {
            // Fold this walk's memo/expansion discoveries into the graph's
            // shared caches regardless of whether the state itself is kept.
            state.sync_caches_into(&self.artifacts.graph);
            // Cancelled walks are a property of the moment too: the frontier
            // is intact, but persisting one would let an aborted request
            // leak its partial trajectory into later queries' stats.
            if !state.time_truncated() && !state.cancelled() {
                self.artifacts.checkin_walk(
                    self.key.clone(),
                    state,
                    self.config.suspended_walk_capacity,
                );
            }
        }
    }
}

impl fmt::Debug for TermStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TermStream")
            .field("pos", &self.pos)
            .field("resumed", &self.resumed)
            .field("has_more", &self.has_more())
            .finish()
    }
}

/// Packages one ranked term as a reported snippet, applying the configured
/// coercion erasure.
fn snippet_of(ranked: &RankedTerm, config: &SynthesisConfig) -> Snippet {
    let raw = ranked.term.clone();
    let erased = if config.erase_coercions {
        erase_coercions(&raw)
    } else {
        raw.clone()
    };
    Snippet {
        coercions: count_coercions(&raw),
        depth: raw.depth(),
        term: erased,
        raw_term: raw,
        weight: ranked.weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::DeclKind;

    // Compile-time proof of the concurrency contract: sessions (and the
    // engine) can be shared across threads behind an Arc.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<Session>();
        assert_send_sync::<Query>();
        assert_send_sync::<BatchRequest>();
        assert_send_sync::<EnvDelta>();
    };

    fn env_a() -> TypeEnv {
        vec![
            Declaration::new("name", Ty::base("String"), DeclKind::Local),
            Declaration::new(
                "mkFile",
                Ty::fun(vec![Ty::base("String")], Ty::base("File")),
                DeclKind::Imported,
            ),
        ]
        .into_iter()
        .collect()
    }

    fn env_b() -> TypeEnv {
        vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "s",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Local,
            ),
        ]
        .into_iter()
        .collect()
    }

    fn render(result: &SynthesisResult) -> Vec<(String, crate::Weight)> {
        result
            .snippets
            .iter()
            .map(|s| (s.term.to_string(), s.weight))
            .collect()
    }

    #[test]
    fn empty_batch_returns_no_results() {
        let engine = Engine::new(SynthesisConfig::default());
        assert!(engine.query_batch(&[]).is_empty());
    }

    #[test]
    fn batch_results_are_input_ordered_and_match_sequential_queries() {
        let engine = Engine::new(SynthesisConfig::default());
        let requests = vec![
            BatchRequest::new(env_a(), Query::new(Ty::base("File")).with_n(5)),
            BatchRequest::new(env_b(), Query::new(Ty::base("A")).with_n(4)),
            BatchRequest::new(env_a(), Query::new(Ty::base("String")).with_n(3)),
            BatchRequest::new(env_b(), Query::new(Ty::base("A")).with_n(2)),
        ];
        let batched = engine.query_batch(&requests);
        assert_eq!(batched.len(), requests.len());
        for (request, batch_result) in requests.iter().zip(&batched) {
            let sequential = engine.prepare(&request.env).query(&request.query);
            assert_eq!(render(batch_result), render(&sequential));
        }
        // Spot-check the input ordering explicitly.
        assert_eq!(batched[0].snippets[0].term.to_string(), "mkFile(name)");
        assert_eq!(batched[2].snippets[0].term.to_string(), "name");
        assert_eq!(batched[3].snippets.len(), 2);
        // Two distinct points: two σ runs, no matter how many requests.
        assert_eq!(engine.prepare_count(), 2);
    }

    #[test]
    fn structurally_equal_points_share_one_preparation_and_one_graph() {
        let engine = Engine::new(SynthesisConfig::default());
        let forward = env_a();
        let reversed: TypeEnv = forward.iter().rev().cloned().collect();

        let s1 = engine.prepare(&forward);
        let s2 = engine.prepare(&forward.clone());
        let s3 = engine.prepare(&reversed);
        assert_eq!(engine.prepare_count(), 1, "one σ run for all three");
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        assert_eq!(s1.fingerprint(), s3.fingerprint());

        let query = Query::new(Ty::base("File")).with_n(5);
        let r1 = s1.query(&query);
        let r2 = s2.query(&query);
        let r3 = s3.query(&query);
        assert_eq!(engine.graph_build_count(), 1, "one graph for all three");
        assert_eq!(render(&r1), render(&r2));
        assert_eq!(render(&r1), render(&r3));
        // The canonical environment is the first-prepared declaration list.
        assert_eq!(s3.env().decls()[0].name, "name");
    }

    #[test]
    fn permuted_sessions_without_a_shared_point_never_share_graphs() {
        // Regression: with the point cache disabled, two sessions for
        // permuted copies of one environment hold *different* declaration
        // orders. A cached graph's Head::Decl indices belong to its build
        // point's order, and equal-weight ties emit in declaration order —
        // so the artifact cache must refuse to serve one session's graph to
        // the other (sharing it once produced the ill-typed `mkFile(other)`
        // where `other : Gadget`). Cross-point graph sharing is what the
        // point cache's canonicalization provides; opting out of it opts
        // out of both.
        let config = SynthesisConfig {
            point_cache_capacity: 0,
            ..SynthesisConfig::default()
        };
        let engine = Engine::new(config);
        let mut env = env_a();
        env.push(Declaration::new(
            "other",
            Ty::base("Gadget"),
            DeclKind::Local,
        ));
        let reversed: TypeEnv = env.iter().rev().cloned().collect();

        let forward = engine.prepare(&env);
        let query = Query::new(Ty::base("File")).with_n(5);
        let from_forward = forward.query(&query);
        assert_eq!(from_forward.snippets[0].term.to_string(), "mkFile(name)");

        let backward = engine.prepare(&reversed);
        assert_eq!(engine.prepare_count(), 2, "the point cache is off");
        let from_backward = backward.query(&query);
        assert_eq!(
            engine.graph_build_count(),
            2,
            "no shared point, no shared graph: the second session builds privately"
        );
        assert_eq!(render(&from_backward), render(&from_forward));
        // The rendered term type-checks against either declaration order.
        assert!(env.admits(&from_backward.snippets[0].raw_term, &Ty::base("File")));
    }

    #[test]
    fn batch_without_point_cache_matches_sequential_queries_on_permutations() {
        // Regression: with the point cache disabled, a sequential query
        // prepares each request's own declaration order, so the batch must
        // not group a permutation with its canonical form (equal-weight
        // ties — two String locals here — emit in declaration order).
        let config = SynthesisConfig {
            point_cache_capacity: 0,
            ..SynthesisConfig::default()
        };
        let engine = Engine::new(config);
        let env: TypeEnv = vec![
            Declaration::new("name", Ty::base("String"), DeclKind::Local),
            Declaration::new("path", Ty::base("String"), DeclKind::Local),
        ]
        .into_iter()
        .collect();
        let reversed: TypeEnv = env.iter().rev().cloned().collect();

        let query = Query::new(Ty::base("String")).with_n(2);
        let requests = vec![
            BatchRequest::new(env.clone(), query.clone()),
            BatchRequest::new(reversed.clone(), query.clone()),
        ];
        let batched = engine.query_batch(&requests);
        for (request, batch_result) in requests.iter().zip(&batched) {
            let sequential = engine.prepare(&request.env).query(&request.query);
            assert_eq!(render(batch_result), render(&sequential));
        }
        assert_eq!(batched[0].snippets[0].term.to_string(), "name");
        assert_eq!(batched[1].snippets[0].term.to_string(), "path");
    }

    #[test]
    fn update_stays_fresh_identical_when_a_permuted_point_is_cached() {
        // Regression: the engine's point cache holds a *permuted* ordering
        // of the environment an update is about to produce. The update must
        // not adopt it — equal-weight ties (`name` and `path` below are both
        // weight-5 locals) emit in declaration order, and update's contract
        // is byte-identity with a fresh preparation of the edited list.
        let engine = Engine::new(SynthesisConfig::default());
        let name = || Declaration::new("name", Ty::base("String"), DeclKind::Local);
        let path = || Declaration::new("path", Ty::base("String"), DeclKind::Local);
        let permuted: TypeEnv = vec![path(), name()].into_iter().collect();
        let _seed = engine.prepare(&permuted);

        let session = engine.prepare(&vec![name()].into_iter().collect());
        let delta = EnvDelta::new().add(path());
        let updated = session.update(&delta);

        let query = Query::new(Ty::base("String")).with_n(2);
        let from_updated = updated.query(&query);
        let fresh = Engine::new(SynthesisConfig::default())
            .prepare(&delta.apply(session.env()))
            .query(&query);
        assert_eq!(render(&from_updated), render(&fresh));
        assert_eq!(from_updated.snippets[0].term.to_string(), "name");

        // The canonical permuted point is untouched and still serves
        // Engine::prepare's canonicalizing path.
        let canonical = engine.prepare(&vec![name(), path()].into_iter().collect());
        assert_eq!(canonical.env().decls()[0].name, "path");
    }

    #[test]
    fn point_cache_capacity_zero_disables_cross_point_reuse() {
        let config = SynthesisConfig {
            point_cache_capacity: 0,
            ..SynthesisConfig::default()
        };
        let engine = Engine::new(config);
        let _ = engine.prepare(&env_a());
        let _ = engine.prepare(&env_a());
        assert_eq!(engine.prepare_count(), 2);
        assert_eq!(engine.cached_point_count(), 0);
    }

    #[test]
    fn query_many_matches_individual_queries() {
        let engine = Engine::new(SynthesisConfig::default());
        let session = engine.prepare(&env_b());
        let queries = vec![
            Query::new(Ty::base("A")).with_n(3),
            Query::new(Ty::base("A")).with_n(1),
        ];
        let many = session.query_many(&queries);
        assert_eq!(many.len(), 2);
        for (query, result) in queries.iter().zip(&many) {
            assert_eq!(render(result), render(&session.query(query)));
        }
    }

    #[test]
    fn query_overrides_take_effect() {
        let engine = Engine::new(SynthesisConfig::default());
        let session = engine.prepare(&env_b());
        // Depth 2 admits only `a` and `s(a)`.
        let bounded = session.query(&Query::new(Ty::base("A")).with_n(100).with_max_depth(2));
        let rendered: Vec<String> = bounded
            .snippets
            .iter()
            .map(|s| s.term.to_string())
            .collect();
        assert_eq!(rendered, vec!["a", "s(a)"]);
        // A tiny step cap truncates and is reported as such.
        let truncated = session.query(
            &Query::new(Ty::base("A"))
                .with_n(1_000)
                .with_max_reconstruction_steps(2),
        );
        assert!(truncated.stats.truncated);
    }

    #[test]
    fn poisoned_caches_do_not_brick_the_engine() {
        // One query thread panicking while it holds a cache lock must not
        // poison every subsequent query on the shared engine.
        let engine = Engine::new(SynthesisConfig::default());
        let session = Arc::new(engine.prepare(&env_a()));
        let before = session.query(&Query::new(Ty::base("File")).with_n(3));

        let poisoner = Arc::clone(&session);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _graphs = poisoner
                .cache
                .graphs
                .write()
                .unwrap_or_else(|e| e.into_inner());
            let _points = poisoner
                .cache
                .points
                .write()
                .unwrap_or_else(|e| e.into_inner());
            panic!("query thread dies while holding the cache locks");
        }));
        assert!(result.is_err(), "the panic must actually happen");
        assert!(
            session.cache.graphs.read().is_err() && session.cache.points.read().is_err(),
            "the locks must be poisoned for this test to mean anything"
        );

        // The engine keeps answering — cache reads, writes and the counters
        // all recover the poisoned locks.
        let after = session.query(&Query::new(Ty::base("File")).with_n(3));
        assert_eq!(render(&before), render(&after));
        assert!(session.cached_graph_count() >= 1);
        let fresh = engine.prepare(&env_a());
        let fresh = fresh.query(&Query::new(Ty::base("String")).with_n(2));
        assert_eq!(fresh.snippets[0].term.to_string(), "name");
    }

    #[test]
    fn graph_cache_evicts_least_recently_used_within_capacity() {
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new("b", Ty::base("B"), DeclKind::Local),
            Declaration::new("c", Ty::base("C"), DeclKind::Local),
        ]
        .into_iter()
        .collect();
        let config = SynthesisConfig {
            graph_cache_capacity: 2,
            ..SynthesisConfig::default()
        };
        let session = Engine::new(config).prepare(&env);
        let query = |name: &str| {
            session.query(&Query::new(Ty::base(name)).with_n(1));
        };

        query("A"); // build 1, cache {A}
        query("B"); // build 2, cache {A, B}
        assert_eq!(session.graph_build_count(), 2);
        assert_eq!(session.cached_graph_count(), 2);

        query("A"); // hit, A becomes most recent
        assert_eq!(session.graph_build_count(), 2);

        query("C"); // build 3: capacity forces out B (least recent), not A
        assert_eq!(session.graph_build_count(), 3);
        assert_eq!(session.cached_graph_count(), 2);

        query("A"); // still cached
        query("C"); // still cached
        assert_eq!(session.graph_build_count(), 3);

        query("B"); // evicted above: rebuilt, and evicts the LRU entry (A)
        assert_eq!(session.graph_build_count(), 4);
        assert_eq!(session.cached_graph_count(), 2);
    }

    #[test]
    fn zero_capacity_disables_graph_caching() {
        let config = SynthesisConfig {
            graph_cache_capacity: 0,
            ..SynthesisConfig::default()
        };
        let session = Engine::new(config).prepare(&env_b());
        let first = session.query(&Query::new(Ty::base("A")).with_n(3));
        let second = session.query(&Query::new(Ty::base("A")).with_n(3));
        assert_eq!(render(&first), render(&second));
        assert_eq!(session.cached_graph_count(), 0);
        assert_eq!(session.graph_build_count(), 2);
    }

    #[test]
    fn update_with_empty_delta_shares_the_point() {
        let engine = Engine::new(SynthesisConfig::default());
        let session = engine.prepare(&env_a());
        let updated = session.update(&EnvDelta::new());
        assert_eq!(session.fingerprint(), updated.fingerprint());
        assert_eq!(engine.prepare_count(), 1, "no σ for a no-op delta");
        assert!(Arc::ptr_eq(&session.point, &updated.point));
    }

    #[test]
    fn update_append_and_reweight_carry_unaffected_graphs() {
        let mut env = env_a();
        env.push(Declaration::new(
            "gadget",
            Ty::base("Gadget"),
            DeclKind::Local,
        ));
        let engine = Engine::new(SynthesisConfig::default());
        let session = engine.prepare(&env);
        // Warm the File graph on the original point.
        let before = session.query(&Query::new(Ty::base("File")).with_n(5));
        assert_eq!(engine.graph_build_count(), 1);

        // Append another `Gadget` declaration (its succinct type is already
        // in Γ, so the initial environment keeps its identity) and reweight
        // the existing one: the File exploration never requests `Gadget`, so
        // the File graph carries over to the edited point.
        let delta = EnvDelta::new()
            .add(Declaration::new(
                "gadget2",
                Ty::base("Gadget"),
                DeclKind::Imported,
            ))
            .reweight("gadget", 2.0);
        let updated = session.update(&delta);
        assert_ne!(updated.fingerprint(), session.fingerprint());
        assert_eq!(updated.env().len(), 4);

        let after = updated.query(&Query::new(Ty::base("File")).with_n(5));
        assert_eq!(render(&before), render(&after));
        assert_eq!(
            engine.graph_build_count(),
            1,
            "the File graph must be carried across the delta, not rebuilt"
        );
        // A goal the edit *does* touch rebuilds and sees the new state.
        let gadgets = updated.query(&Query::new(Ty::base("Gadget")).with_n(5));
        assert_eq!(engine.graph_build_count(), 2);
        assert_eq!(gadgets.snippets.len(), 2);
        // Fresh comparison: an independent engine on the edited environment
        // answers identically.
        let fresh_engine = Engine::new(SynthesisConfig::default());
        let fresh = fresh_engine.prepare(&delta.apply(session.env()));
        assert_eq!(
            render(&after),
            render(&fresh.query(&Query::new(Ty::base("File")).with_n(5)))
        );
        assert_eq!(
            render(&gadgets),
            render(&fresh.query(&Query::new(Ty::base("Gadget")).with_n(5)))
        );
    }

    #[test]
    fn update_reaching_delta_invalidates_affected_graphs() {
        let engine = Engine::new(SynthesisConfig::default());
        let session = engine.prepare(&env_a());
        let before = session.query(&Query::new(Ty::base("File")).with_n(5));
        assert_eq!(engine.graph_build_count(), 1);

        // `mkDir : String -> File` produces `File`, which the File
        // exploration requests — the cached graph must NOT carry over.
        let delta = EnvDelta::new().add(Declaration::new(
            "mkDir",
            Ty::fun(vec![Ty::base("String")], Ty::base("File")),
            DeclKind::Local,
        ));
        let updated = session.update(&delta);
        let after = updated.query(&Query::new(Ty::base("File")).with_n(5));
        assert_eq!(engine.graph_build_count(), 2, "the File graph was rebuilt");
        assert!(after.snippets.len() > before.snippets.len());
        let fresh = Engine::new(SynthesisConfig::default())
            .prepare(&delta.apply(session.env()))
            .query(&Query::new(Ty::base("File")).with_n(5));
        assert_eq!(render(&after), render(&fresh));
    }

    #[test]
    fn update_remove_falls_back_to_fresh_preparation() {
        let engine = Engine::new(SynthesisConfig::default());
        let session = engine.prepare(&env_a());
        let _ = session.query(&Query::new(Ty::base("File")).with_n(5));

        let delta = EnvDelta::new().remove("mkFile");
        let updated = session.update(&delta);
        assert_eq!(updated.env().len(), 1);
        let result = updated.query(&Query::new(Ty::base("File")).with_n(5));
        assert!(result.snippets.is_empty(), "File is no longer inhabited");
        let fresh = Engine::new(SynthesisConfig::default())
            .prepare(&delta.apply(session.env()))
            .query(&Query::new(Ty::base("File")).with_n(5));
        assert_eq!(render(&result), render(&fresh));
    }

    #[test]
    fn update_registers_the_edited_point_in_the_engine_cache() {
        let engine = Engine::new(SynthesisConfig::default());
        let session = engine.prepare(&env_a());
        let delta = EnvDelta::new().add(Declaration::new("extra", Ty::base("X"), DeclKind::Local));
        let updated = session.update(&delta);
        let prepares = engine.prepare_count();
        // Preparing the edited environment afresh hits the point cache.
        let again = engine.prepare(&delta.apply(session.env()));
        assert_eq!(engine.prepare_count(), prepares);
        assert_eq!(again.fingerprint(), updated.fingerprint());
    }

    #[test]
    fn run_indexed_returns_results_in_index_order() {
        let doubled = run_indexed(100, 8, |i| i * 2);
        assert_eq!(doubled.len(), 100);
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
        assert!(run_indexed(0, 8, |i| i).is_empty());
    }

    #[test]
    fn pre_cancelled_query_stops_early_and_reports_truncated() {
        let engine = Engine::new(SynthesisConfig::default());
        let session = engine.prepare(&env_b());
        let token = CancelToken::new();
        token.cancel();
        let result = session.query(
            &Query::new(Ty::base("A"))
                .with_n(50)
                .with_cancel_token(token),
        );
        // The walk observes the flag before its first pop: no terms, and the
        // stop is reported as truncation.
        assert!(result.snippets.is_empty());
        assert!(result.stats.truncated);
        assert_eq!(result.stats.reconstruction_new_steps, 0);

        // The cancelled walk state is not parked; an uncancelled query under
        // the same budgets starts clean and serves normally.
        assert_eq!(engine.suspended_walk_count(), 0);
        let clean = session.query(&Query::new(Ty::base("A")).with_n(3));
        assert_eq!(clean.snippets.len(), 3);
        assert!(!clean.stats.resumed, "no cancelled state to resume");
        assert!(!clean.stats.truncated);
    }

    #[test]
    fn mid_flight_cancellation_stops_the_stream_between_pops() {
        let engine = Engine::new(SynthesisConfig::default());
        let session = engine.prepare(&env_b());
        let token = CancelToken::new();
        let mut stream =
            session.query_stream(&Query::new(Ty::base("A")).with_cancel_token(token.clone()));
        // Pull a couple of terms, then fire the flag: the very next pop
        // boundary observes it and the stream ends.
        assert!(stream.next().is_some());
        assert!(stream.next().is_some());
        token.cancel();
        assert!(stream.next().is_none());
        assert!(
            stream.has_more(),
            "cancellation is not exhaustion — the frontier is intact"
        );
        drop(stream);
        assert_eq!(
            engine.suspended_walk_count(),
            0,
            "cancelled walks are never parked"
        );
    }

    #[test]
    fn engine_stats_snapshot_tracks_counters_and_cache_sizes() {
        let engine = Engine::new(SynthesisConfig::default());
        let fresh = engine.stats();
        // A fresh engine reports only the configured parallelism knobs.
        assert_eq!(
            fresh,
            EngineStatsSnapshot {
                sigma_shards: engine.config().sigma_shards,
                graph_build_threads: engine.config().graph_build_threads,
                ..EngineStatsSnapshot::default()
            }
        );

        let session = engine.prepare(&env_b());
        let result = session.query(&Query::new(Ty::base("A")).with_n(2));
        assert!(result.stats.has_more);
        let stats = engine.stats();
        assert_eq!(stats.prepare_count, 1);
        // env_b is far below the sharding threshold: sequential path.
        assert_eq!(stats.sharded_prepare_count, 0);
        assert!(stats.prepare_time_ns > 0);
        assert_eq!(stats.sharded_prepare_time_ns, 0);
        assert_eq!(stats.graph_build_count, 1);
        assert_eq!(stats.cached_point_count, 1);
        assert_eq!(stats.cached_graph_count, 1);
        assert_eq!(stats.suspended_walk_count, 1);
        assert_eq!(stats, engine.stats(), "snapshots are stable at rest");

        // A second point moves every field the way the individual getters do.
        engine
            .prepare(&env_a())
            .query(&Query::new(Ty::base("File")));
        let grown = engine.stats();
        assert_eq!(grown.prepare_count, 2);
        assert_eq!(grown.graph_build_count, 2);
        assert_eq!(grown.cached_point_count, 2);
        assert_eq!(grown.cached_graph_count, 2);
    }

    #[test]
    fn envs_equivalent_is_order_insensitive_but_multiplicity_aware() {
        let forward = env_a();
        let reversed: TypeEnv = forward.iter().rev().cloned().collect();
        assert!(envs_equivalent(&forward, &reversed));
        let mut duplicated = forward.clone();
        duplicated.push(forward.decls()[0].clone());
        assert!(!envs_equivalent(&forward, &duplicated));
        let reweighted: TypeEnv = forward.iter().map(|d| d.clone().with_weight(1.0)).collect();
        assert!(!envs_equivalent(&forward, &reweighted));
    }
}
