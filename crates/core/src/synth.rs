//! Synthesis configuration and results, plus the deprecated one-shot façade.
//!
//! The types here describe a query's configuration ([`SynthesisConfig`]) and
//! outcome ([`SynthesisResult`]: ranked [`Snippet`]s, [`PhaseTimings`],
//! [`SynthesisStats`] — the quantities reported in Table 2). The entry point
//! for running queries is the session API ([`Engine`] → [`Session`](crate::Session)
//! → [`Query`]); the [`Synthesizer`] struct kept here is a deprecated shim
//! that prepares a throwaway session per call.

use std::time::Duration;

use insynth_lambda::{Term, Ty};

use crate::decl::TypeEnv;
use crate::session::{Engine, Query};
use crate::weights::{Weight, WeightConfig};

/// Configuration of a synthesis query.
///
/// The defaults mirror the paper's interactive deployment (§7.5): weights with
/// corpus frequencies, a 0.5 s budget for the prover (exploration + pattern
/// generation) and a 7 s budget for reconstruction.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// The weight function variant (the three Table 2 column groups).
    pub weights: WeightConfig,
    /// Wall-clock budget for exploration + pattern generation.
    pub prover_time_limit: Option<Duration>,
    /// Wall-clock budget for term reconstruction.
    pub reconstruction_time_limit: Option<Duration>,
    /// Hard cap on exploration requests (safety net for pathological inputs).
    pub max_explore_requests: usize,
    /// Hard cap on reconstruction steps.
    pub max_reconstruction_steps: usize,
    /// Optional bound on the depth of synthesized terms.
    pub max_depth: Option<usize>,
    /// When `true`, coercion applications are erased from the reported
    /// snippets (the behaviour of the paper's tool); the raw term is still
    /// available on each [`Snippet`].
    pub erase_coercions: bool,
    /// Upper bound on the number of derivation graphs the [`Engine`]'s
    /// cross-point artifact cache keeps (one per distinct environment
    /// fingerprint / goal / prover-budget combination queried, shared by
    /// every [`Session`](crate::Session) the engine prepared). When the
    /// bound is reached the least recently used graph is evicted, so a
    /// long-lived deployment answering many distinct goals stays bounded in
    /// memory. `0` disables graph caching entirely (every query rebuilds its
    /// graph).
    pub graph_cache_capacity: usize,
    /// Upper bound on the number of *prepared program points* the engine
    /// retains, keyed by environment fingerprint: preparing an environment
    /// structurally equal to one already prepared (same declaration multiset
    /// and weights, any order) reuses the cached σ-lowering instead of
    /// re-running it. Evicted least-recently-used; `0` disables cross-point
    /// reuse (every [`Engine::prepare`](crate::Engine::prepare) runs σ, and
    /// graphs are only ever shared between sessions holding the identical
    /// declaration list). Size it above the deployment's working set of
    /// distinct points: permutations of one environment resolve to whichever
    /// ordering is currently the cached canonical, so under-sizing makes the
    /// emission order of equal-weight ties depend on eviction timing.
    pub point_cache_capacity: usize,
    /// Upper bound on the number of *suspended walk states* each cached
    /// derivation graph retains, keyed by reconstruction budget. A query (or
    /// a dropped [`TermStream`](crate::TermStream)) parks its frontier here,
    /// so a follow-up asking for more results on the same goal resumes the
    /// walk — popping only the delta — instead of replaying it from scratch.
    /// Evicted least-recently-used per graph; `0` disables walk persistence
    /// (every query replays its walk; results are identical either way).
    pub suspended_walk_capacity: usize,
    /// Number of shards σ-lowering fans out over when the engine prepares an
    /// environment (see `PreparedEnv::prepare_sharded`). Defaults to the
    /// machine's available parallelism; `1` pins the sequential path. The
    /// engine additionally caps the count so each shard keeps a useful chunk
    /// of declarations (`effective_sigma_shards`), so small environments
    /// never pay the fan-out. Results are byte-identical for every value.
    pub sigma_shards: usize,
    /// Number of scoped threads the derivation-graph build fans its per-goal
    /// edge-resolution pass over (see `DerivationGraph::build_with_threads`).
    /// Defaults to the machine's available parallelism; `1` pins the
    /// sequential path. Results are byte-identical for every value.
    pub graph_build_threads: usize,
    /// Upper bound on the number of environment analyses
    /// ([`Engine::analyze`](crate::Engine::analyze) reports) the engine
    /// caches, keyed by environment fingerprint alongside the point cache.
    /// Evicted least-recently-used; `0` disables analysis caching (every
    /// call re-runs the producibility fixpoint).
    pub analysis_cache_capacity: usize,
    /// When `true`, each query first runs the goal-directed dead-declaration
    /// analysis and builds its derivation graph from the environment with
    /// the proven-dead declarations removed. Answer-preserving by
    /// construction (a dead declaration can appear in no completion for any
    /// goal), and typically cheaper on environments with unreachable
    /// regions; default `false` keeps the build byte-for-byte identical to
    /// earlier releases. Engine-level: fixed at engine construction, not
    /// overridable per query.
    pub prune_dead_decls: bool,
}

/// The machine's available parallelism, or `1` when it cannot be queried —
/// the default for [`SynthesisConfig::sigma_shards`] and
/// [`SynthesisConfig::graph_build_threads`].
fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            weights: WeightConfig::default(),
            prover_time_limit: Some(Duration::from_millis(500)),
            reconstruction_time_limit: Some(Duration::from_secs(7)),
            max_explore_requests: 1_000_000,
            max_reconstruction_steps: 500_000,
            max_depth: None,
            erase_coercions: true,
            graph_cache_capacity: 64,
            point_cache_capacity: 32,
            suspended_walk_capacity: 4,
            sigma_shards: default_parallelism(),
            graph_build_threads: default_parallelism(),
            analysis_cache_capacity: 32,
            prune_dead_decls: false,
        }
    }
}

impl SynthesisConfig {
    /// A configuration with no time limits and no depth bound — useful for
    /// exhaustive comparisons against the reference RCN function in tests.
    pub fn unbounded() -> Self {
        SynthesisConfig {
            prover_time_limit: None,
            reconstruction_time_limit: None,
            ..SynthesisConfig::default()
        }
    }

    /// Replaces the weight configuration.
    pub fn with_weights(mut self, weights: WeightConfig) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the depth bound.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }
}

/// One synthesized suggestion.
#[derive(Debug, Clone)]
pub struct Snippet {
    /// The term with coercions erased (what the user sees).
    pub term: Term,
    /// The raw term as reconstructed, including any coercion applications.
    pub raw_term: Term,
    /// Total weight of the raw term (the ranking key; lower is better).
    pub weight: Weight,
    /// Depth of the raw term.
    pub depth: usize,
    /// Number of coercion applications that were erased.
    pub coercions: usize,
}

/// Wall-clock breakdown of one query (the Prove / Recon columns of Table 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Exploration phase duration.
    pub explore: Duration,
    /// Pattern generation phase duration.
    pub patterns: Duration,
    /// Term reconstruction phase duration.
    pub reconstruction: Duration,
}

impl PhaseTimings {
    /// Exploration + pattern generation (the paper's "prover" time).
    pub fn prove(&self) -> Duration {
        self.explore + self.patterns
    }

    /// Total synthesis time.
    pub fn total(&self) -> Duration {
        self.prove() + self.reconstruction
    }
}

/// Search statistics of one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthesisStats {
    /// Number of declarations in the initial environment (Table 2 `#Initial`).
    pub initial_declarations: usize,
    /// Number of distinct succinct types among those declarations (the §3.2
    /// compression statistic).
    pub distinct_succinct_types: usize,
    /// Reachability terms discovered by exploration.
    pub reachability_terms: usize,
    /// Requests processed by exploration.
    pub requests_processed: usize,
    /// Patterns derived.
    pub patterns: usize,
    /// Reconstruction steps (priority-queue pops).
    pub reconstruction_steps: usize,
    /// Successor expressions the reconstruction walk discarded before
    /// enqueueing because their completion bound already exceeded the n-th
    /// best candidate (heuristic-assisted when `astar` is set).
    pub reconstruction_pruned_enqueues: usize,
    /// `true` when reconstruction ran as the heuristic-guided A* walk;
    /// `false` when it fell back to plain best-first order (negative weight
    /// overrides).
    pub astar: bool,
    /// `true` if any phase hit a budget.
    pub truncated: bool,
    /// `true` when the enumeration has more results past the `n` returned —
    /// the walk's frontier is not exhausted (or earlier legs already emitted
    /// terms beyond `n`). The pagination contract: ask again with a larger
    /// `n` (or keep pulling the [`TermStream`](crate::TermStream)) to get
    /// them; `false` means the returned snippets are the complete
    /// enumeration.
    pub has_more: bool,
    /// `true` when this query resumed a suspended walk instead of starting
    /// one from scratch. Purely observability — results are byte-identical
    /// either way.
    pub resumed: bool,
    /// Reconstruction steps performed *by this query* (the delta): equals
    /// `reconstruction_steps` on a from-scratch walk, and only the
    /// additional pops past the suspension point on a resumed one.
    pub reconstruction_new_steps: usize,
}

/// The result of one synthesis query.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// Ranked snippets, best (lowest weight) first.
    pub snippets: Vec<Snippet>,
    /// Wall-clock breakdown.
    pub timings: PhaseTimings,
    /// Search statistics.
    pub stats: SynthesisStats,
}

impl SynthesisResult {
    /// The 1-based rank of the first snippet whose rendered form equals
    /// `expected` (after coercion erasure), if present.
    pub fn rank_of(&self, expected: &str) -> Option<usize> {
        self.snippets
            .iter()
            .position(|s| s.term.to_string() == expected)
            .map(|i| i + 1)
    }
}

/// Deprecated one-shot façade over the session API.
///
/// Every call prepares a throwaway [`Session`](crate::Session). The engine's
/// fingerprint-keyed point cache now absorbs the repeated σ-lowering this
/// pattern used to pay, but each call still re-hashes the environment and
/// rebuilds the session plumbing; prepare once and keep the session instead:
///
/// ```
/// use insynth_core::{Declaration, DeclKind, Engine, Query, SynthesisConfig, TypeEnv};
/// use insynth_lambda::Ty;
///
/// let mut env = TypeEnv::new();
/// env.push(Declaration::simple("name", Ty::base("String"), DeclKind::Local));
/// env.push(Declaration::simple(
///     "mkFile",
///     Ty::fun(vec![Ty::base("String")], Ty::base("File")),
///     DeclKind::Imported,
/// ));
/// let engine = Engine::new(SynthesisConfig::default());
/// let session = engine.prepare(&env);
/// let result = session.query(&Query::new(Ty::base("File")).with_n(5));
/// assert_eq!(result.snippets[0].term.to_string(), "mkFile(name)");
/// ```
#[deprecated(note = "use Engine/Session")]
#[derive(Debug, Clone, Default)]
pub struct Synthesizer {
    engine: Engine,
}

#[allow(deprecated)]
impl Synthesizer {
    /// Creates an engine with the given configuration.
    pub fn new(config: SynthesisConfig) -> Self {
        Synthesizer {
            engine: Engine::new(config),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthesisConfig {
        self.engine.config()
    }

    /// Synthesizes at most `n` snippets of type `goal` from the declarations
    /// in `env`, ranked by ascending weight.
    ///
    /// Prepares `env` from scratch on every call; use
    /// [`Engine::prepare`] + [`Session::query`](crate::Session::query) to
    /// prepare once and query many times.
    pub fn synthesize(&self, env: &TypeEnv, goal: &Ty, n: usize) -> SynthesisResult {
        self.engine
            .prepare(env)
            .query(&Query::new(goal.clone()).with_n(n))
    }

    /// Decides inhabitation only (the "prover" mode used for the Imogen/fCube
    /// comparison of Table 2), preparing `env` from scratch on every call.
    pub fn is_inhabited(&self, env: &TypeEnv, goal: &Ty) -> bool {
        self.engine.prepare(env).is_inhabited(goal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::{DeclKind, Declaration};
    use crate::rcn::{is_inhabited_ref, rcn};
    use crate::weights::WeightMode;
    use crate::SubtypeLattice;
    use insynth_lambda::check;
    use std::collections::HashSet;

    fn engine() -> Engine {
        Engine::new(SynthesisConfig::default())
    }

    fn io_env() -> TypeEnv {
        vec![
            Declaration::new("name", Ty::base("String"), DeclKind::Local),
            Declaration::new(
                "FileInputStream",
                Ty::fun(vec![Ty::base("String")], Ty::base("FileInputStream")),
                DeclKind::Imported,
            )
            .with_frequency(500),
            Declaration::new(
                "BufferedInputStream",
                Ty::fun(
                    vec![Ty::base("FileInputStream")],
                    Ty::base("BufferedInputStream"),
                ),
                DeclKind::Imported,
            )
            .with_frequency(200),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn end_to_end_io_example() {
        let session = engine().prepare(&io_env());
        let result = session.query(&Query::new(Ty::base("BufferedInputStream")).with_n(5));
        assert_eq!(
            result.rank_of("BufferedInputStream(FileInputStream(name))"),
            Some(1)
        );
        assert_eq!(result.stats.initial_declarations, 3);
        assert!(result.stats.patterns >= 3);
        assert!(!result.stats.truncated);
    }

    #[test]
    fn one_session_serves_many_queries() {
        // The motivating use case: the same prepared point answers queries
        // for several goal types without re-running σ.
        let session = engine().prepare(&io_env());
        let buffered = session.query(&Query::new(Ty::base("BufferedInputStream")).with_n(5));
        let file = session.query(&Query::new(Ty::base("FileInputStream")).with_n(5));
        let string = session.query(&Query::new(Ty::base("String")).with_n(5));
        assert_eq!(
            buffered.rank_of("BufferedInputStream(FileInputStream(name))"),
            Some(1)
        );
        assert_eq!(file.rank_of("FileInputStream(name)"), Some(1));
        assert_eq!(string.rank_of("name"), Some(1));
    }

    #[test]
    fn snippets_are_sorted_by_weight() {
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "s",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Imported,
            ),
        ]
        .into_iter()
        .collect();
        let result = engine()
            .prepare(&env)
            .query(&Query::new(Ty::base("A")).with_n(6));
        assert!(result
            .snippets
            .windows(2)
            .all(|w| w[0].weight <= w[1].weight));
    }

    #[test]
    fn all_snippets_type_check_at_the_goal() {
        let env = io_env();
        let goal = Ty::base("BufferedInputStream");
        let result = engine()
            .prepare(&env)
            .query(&Query::new(goal.clone()).with_n(10));
        let bindings = env.to_bindings();
        for s in &result.snippets {
            check(&bindings, &s.raw_term, &goal).expect("snippet must type check");
        }
    }

    #[test]
    fn engine_matches_reference_rcn_up_to_depth() {
        // Completeness cross-check (Theorem 3.3) on a small environment.
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new(
                "f",
                Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("A")),
                DeclKind::Local,
            ),
            Declaration::new("b", Ty::base("B"), DeclKind::Local),
        ]
        .into_iter()
        .collect();
        let goal = Ty::base("A");
        let depth = 3;

        let reference: HashSet<Term> = rcn(&env, &goal, depth)
            .iter()
            .map(Term::alpha_normalize)
            .collect();

        let config = SynthesisConfig::unbounded().with_max_depth(depth);
        let result = Engine::new(config)
            .prepare(&env)
            .query(&Query::new(goal.clone()).with_n(10_000));
        let synthesized: HashSet<Term> = result
            .snippets
            .iter()
            .map(|s| s.raw_term.alpha_normalize())
            .collect();

        assert_eq!(synthesized, reference);
    }

    #[test]
    fn inhabitation_prover_agrees_with_reference_oracle() {
        let cases = vec![
            (io_env(), Ty::base("BufferedInputStream"), true),
            (io_env(), Ty::base("Unknown"), false),
            (
                vec![Declaration::new(
                    "f",
                    Ty::fun(vec![Ty::base("B")], Ty::base("A")),
                    DeclKind::Local,
                )]
                .into_iter()
                .collect::<TypeEnv>(),
                Ty::base("A"),
                false,
            ),
            (
                TypeEnv::new(),
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                true,
            ),
        ];
        for (env, goal, expected) in cases {
            let session = engine().prepare(&env);
            assert_eq!(session.is_inhabited(&goal), expected, "goal {goal}");
            assert_eq!(
                is_inhabited_ref(&env, &goal),
                expected,
                "reference, goal {goal}"
            );
        }
    }

    #[test]
    fn subtyping_through_coercions_is_erased_in_output() {
        // §2.3: Drawing layout. getLayout : Container -> LayoutManager and
        // panel : Panel with Panel <: Container.
        let mut lattice = SubtypeLattice::new();
        lattice.add("Panel", "Container");
        let mut env: TypeEnv = vec![
            Declaration::new("panel", Ty::base("Panel"), DeclKind::Local),
            Declaration::new(
                "getLayout",
                Ty::fun(vec![Ty::base("Container")], Ty::base("LayoutManager")),
                DeclKind::Imported,
            ),
        ]
        .into_iter()
        .collect();
        env.extend(lattice.coercion_declarations());

        let result = engine()
            .prepare(&env)
            .query(&Query::new(Ty::base("LayoutManager")).with_n(5));
        let top = &result.snippets[0];
        assert_eq!(top.term.to_string(), "getLayout(panel)");
        assert_eq!(top.coercions, 1);
        assert!(top.raw_term.to_string().contains("coerce$Panel$Container"));
    }

    #[test]
    fn no_weights_mode_still_finds_solutions() {
        let config =
            SynthesisConfig::default().with_weights(WeightConfig::new(WeightMode::NoWeights));
        let result = Engine::new(config)
            .prepare(&io_env())
            .query(&Query::new(Ty::base("BufferedInputStream")));
        assert!(result
            .rank_of("BufferedInputStream(FileInputStream(name))")
            .is_some());
    }

    #[test]
    fn per_query_weight_override_matches_a_dedicated_engine() {
        // The slow path: one session, but a query that overrides the weights
        // must rank exactly as an engine configured with those weights.
        let no_weights = WeightConfig::new(WeightMode::NoWeights);
        let session = engine().prepare(&io_env());
        let goal = Ty::base("BufferedInputStream");
        let overridden = session.query(&Query::new(goal.clone()).with_weights(no_weights.clone()));
        let dedicated = Engine::new(SynthesisConfig::default().with_weights(no_weights))
            .prepare(&io_env())
            .query(&Query::new(goal));
        let render = |r: &SynthesisResult| {
            r.snippets
                .iter()
                .map(|s| (s.term.to_string(), s.weight))
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&overridden), render(&dedicated));
    }

    #[test]
    fn zero_n_returns_no_snippets_quickly() {
        let result = engine()
            .prepare(&io_env())
            .query(&Query::new(Ty::base("BufferedInputStream")).with_n(0));
        assert!(result.snippets.is_empty());
    }

    #[test]
    fn stats_report_succinct_compression() {
        // Two declarations with types that collapse to one succinct type.
        let env: TypeEnv = vec![
            Declaration::new(
                "f",
                Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C")),
                DeclKind::Local,
            ),
            Declaration::new(
                "g",
                Ty::fun(vec![Ty::base("B"), Ty::base("A")], Ty::base("C")),
                DeclKind::Local,
            ),
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new("b", Ty::base("B"), DeclKind::Local),
        ]
        .into_iter()
        .collect();
        let result = engine()
            .prepare(&env)
            .query(&Query::new(Ty::base("C")).with_n(5));
        assert_eq!(result.stats.initial_declarations, 4);
        assert_eq!(result.stats.distinct_succinct_types, 3);
        // Both f(a, b) and g(b, a) are found.
        assert!(result.rank_of("f(a, b)").is_some());
        assert!(result.rank_of("g(b, a)").is_some());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_synthesizer_shim_matches_the_session_api() {
        let env = io_env();
        let goal = Ty::base("BufferedInputStream");
        let shim = Synthesizer::new(SynthesisConfig::default());
        let via_shim = shim.synthesize(&env, &goal, 5);
        let via_session = engine()
            .prepare(&env)
            .query(&Query::new(goal.clone()).with_n(5));
        let render = |r: &SynthesisResult| {
            r.snippets
                .iter()
                .map(|s| (s.term.to_string(), s.weight))
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&via_shim), render(&via_session));
        assert!(shim.is_inhabited(&env, &goal));
        // The shim now takes &self: two calls on one immutable binding work.
        let _ = shim.synthesize(&env, &goal, 1);
    }
}
