//! The top-level synthesis API: the `Synthesize` procedure of Figure 5.
//!
//! [`Synthesizer::synthesize`] runs the three phases — exploration (Figure 7),
//! pattern generation (Figure 9) and term reconstruction (Figure 10) — and
//! returns the `N` best-ranked snippets together with phase timings and search
//! statistics (the quantities reported in Table 2).

use std::time::{Duration, Instant};

use insynth_lambda::{Term, Ty};

use crate::coerce::{count_coercions, erase_coercions};
use crate::decl::TypeEnv;
use crate::explore::{explore, ExploreLimits};
use crate::genp::{generate_patterns, PatternSet};
use crate::gent::{generate_terms, GenerateLimits};
use crate::prepare::PreparedEnv;
use crate::weights::{Weight, WeightConfig};

/// Configuration of a synthesis query.
///
/// The defaults mirror the paper's interactive deployment (§7.5): weights with
/// corpus frequencies, a 0.5 s budget for the prover (exploration + pattern
/// generation) and a 7 s budget for reconstruction.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// The weight function variant (the three Table 2 column groups).
    pub weights: WeightConfig,
    /// Wall-clock budget for exploration + pattern generation.
    pub prover_time_limit: Option<Duration>,
    /// Wall-clock budget for term reconstruction.
    pub reconstruction_time_limit: Option<Duration>,
    /// Hard cap on exploration requests (safety net for pathological inputs).
    pub max_explore_requests: usize,
    /// Hard cap on reconstruction steps.
    pub max_reconstruction_steps: usize,
    /// Optional bound on the depth of synthesized terms.
    pub max_depth: Option<usize>,
    /// When `true`, coercion applications are erased from the reported
    /// snippets (the behaviour of the paper's tool); the raw term is still
    /// available on each [`Snippet`].
    pub erase_coercions: bool,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            weights: WeightConfig::default(),
            prover_time_limit: Some(Duration::from_millis(500)),
            reconstruction_time_limit: Some(Duration::from_secs(7)),
            max_explore_requests: 1_000_000,
            max_reconstruction_steps: 500_000,
            max_depth: None,
            erase_coercions: true,
        }
    }
}

impl SynthesisConfig {
    /// A configuration with no time limits and no depth bound — useful for
    /// exhaustive comparisons against the reference RCN function in tests.
    pub fn unbounded() -> Self {
        SynthesisConfig {
            prover_time_limit: None,
            reconstruction_time_limit: None,
            ..SynthesisConfig::default()
        }
    }

    /// Replaces the weight configuration.
    pub fn with_weights(mut self, weights: WeightConfig) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the depth bound.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }
}

/// One synthesized suggestion.
#[derive(Debug, Clone)]
pub struct Snippet {
    /// The term with coercions erased (what the user sees).
    pub term: Term,
    /// The raw term as reconstructed, including any coercion applications.
    pub raw_term: Term,
    /// Total weight of the raw term (the ranking key; lower is better).
    pub weight: Weight,
    /// Depth of the raw term.
    pub depth: usize,
    /// Number of coercion applications that were erased.
    pub coercions: usize,
}

/// Wall-clock breakdown of one query (the Prove / Recon columns of Table 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Exploration phase duration.
    pub explore: Duration,
    /// Pattern generation phase duration.
    pub patterns: Duration,
    /// Term reconstruction phase duration.
    pub reconstruction: Duration,
}

impl PhaseTimings {
    /// Exploration + pattern generation (the paper's "prover" time).
    pub fn prove(&self) -> Duration {
        self.explore + self.patterns
    }

    /// Total synthesis time.
    pub fn total(&self) -> Duration {
        self.prove() + self.reconstruction
    }
}

/// Search statistics of one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthesisStats {
    /// Number of declarations in the initial environment (Table 2 `#Initial`).
    pub initial_declarations: usize,
    /// Number of distinct succinct types among those declarations (the §3.2
    /// compression statistic).
    pub distinct_succinct_types: usize,
    /// Reachability terms discovered by exploration.
    pub reachability_terms: usize,
    /// Requests processed by exploration.
    pub requests_processed: usize,
    /// Patterns derived.
    pub patterns: usize,
    /// Reconstruction steps (priority-queue pops).
    pub reconstruction_steps: usize,
    /// `true` if any phase hit a budget.
    pub truncated: bool,
}

/// The result of one synthesis query.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// Ranked snippets, best (lowest weight) first.
    pub snippets: Vec<Snippet>,
    /// Wall-clock breakdown.
    pub timings: PhaseTimings,
    /// Search statistics.
    pub stats: SynthesisStats,
}

impl SynthesisResult {
    /// The 1-based rank of the first snippet whose rendered form equals
    /// `expected` (after coercion erasure), if present.
    pub fn rank_of(&self, expected: &str) -> Option<usize> {
        self.snippets
            .iter()
            .position(|s| s.term.to_string() == expected)
            .map(|i| i + 1)
    }
}

/// The InSynth synthesis engine.
///
/// # Example
///
/// ```
/// use insynth_core::{Declaration, DeclKind, SynthesisConfig, Synthesizer, TypeEnv};
/// use insynth_lambda::Ty;
///
/// let mut env = TypeEnv::new();
/// env.push(Declaration::simple("name", Ty::base("String"), DeclKind::Local));
/// env.push(Declaration::simple(
///     "mkFile",
///     Ty::fun(vec![Ty::base("String")], Ty::base("File")),
///     DeclKind::Imported,
/// ));
/// let mut synth = Synthesizer::new(SynthesisConfig::default());
/// let result = synth.synthesize(&env, &Ty::base("File"), 5);
/// assert_eq!(result.snippets[0].term.to_string(), "mkFile(name)");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Synthesizer {
    config: SynthesisConfig,
}

impl Synthesizer {
    /// Creates an engine with the given configuration.
    pub fn new(config: SynthesisConfig) -> Self {
        Synthesizer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Synthesizes at most `n` snippets of type `goal` from the declarations
    /// in `env`, ranked by ascending weight.
    pub fn synthesize(&mut self, env: &TypeEnv, goal: &Ty, n: usize) -> SynthesisResult {
        let weights = self.config.weights.clone();
        let mut prepared = PreparedEnv::prepare(env, &weights);
        let goal_succ = prepared.store.sigma(goal);

        let explore_started = Instant::now();
        let space = explore(
            &mut prepared,
            goal_succ,
            &ExploreLimits {
                max_requests: self.config.max_explore_requests,
                time_limit: self.config.prover_time_limit,
            },
        );
        let explore_time = explore_started.elapsed();

        let patterns_started = Instant::now();
        let patterns = generate_patterns(&mut prepared, &space);
        let patterns_time = patterns_started.elapsed();

        let recon_started = Instant::now();
        let outcome = generate_terms(
            &mut prepared,
            &patterns,
            env,
            &weights,
            goal,
            n,
            &GenerateLimits {
                max_steps: self.config.max_reconstruction_steps,
                time_limit: self.config.reconstruction_time_limit,
                max_depth: self.config.max_depth,
            },
        );
        let recon_time = recon_started.elapsed();

        let snippets = outcome
            .terms
            .into_iter()
            .map(|ranked| {
                let raw = ranked.term;
                let erased = if self.config.erase_coercions {
                    erase_coercions(&raw)
                } else {
                    raw.clone()
                };
                Snippet {
                    coercions: count_coercions(&raw),
                    depth: raw.depth(),
                    term: erased,
                    raw_term: raw,
                    weight: ranked.weight,
                }
            })
            .collect();

        SynthesisResult {
            snippets,
            timings: PhaseTimings {
                explore: explore_time,
                patterns: patterns_time,
                reconstruction: recon_time,
            },
            stats: SynthesisStats {
                initial_declarations: env.len(),
                distinct_succinct_types: prepared.distinct_succinct_types(),
                reachability_terms: space.terms.len(),
                requests_processed: space.requests_processed,
                patterns: patterns.len(),
                reconstruction_steps: outcome.steps,
                truncated: space.truncated || outcome.truncated,
            },
        }
    }

    /// Decides inhabitation only (the "prover" mode used for the Imogen/fCube
    /// comparison of Table 2): runs exploration and pattern generation and
    /// checks whether the goal type received a pattern, without reconstructing
    /// any term.
    pub fn is_inhabited(&mut self, env: &TypeEnv, goal: &Ty) -> bool {
        let weights = self.config.weights.clone();
        let mut prepared = PreparedEnv::prepare(env, &weights);
        let goal_succ = prepared.store.sigma(goal);
        let space = explore(
            &mut prepared,
            goal_succ,
            &ExploreLimits {
                max_requests: self.config.max_explore_requests,
                time_limit: self.config.prover_time_limit,
            },
        );
        let patterns: PatternSet = generate_patterns(&mut prepared, &space);
        let goal_args = prepared.store.args_of(goal_succ).to_vec();
        let extended = prepared.store.env_union(prepared.init_env, &goal_args);
        let ret = prepared.store.ret_of(goal_succ);
        patterns.is_inhabited(ret, extended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::{DeclKind, Declaration};
    use crate::rcn::{is_inhabited_ref, rcn};
    use crate::weights::WeightMode;
    use crate::SubtypeLattice;
    use insynth_lambda::check;
    use std::collections::HashSet;

    fn io_env() -> TypeEnv {
        vec![
            Declaration::new("name", Ty::base("String"), DeclKind::Local),
            Declaration::new(
                "FileInputStream",
                Ty::fun(vec![Ty::base("String")], Ty::base("FileInputStream")),
                DeclKind::Imported,
            )
            .with_frequency(500),
            Declaration::new(
                "BufferedInputStream",
                Ty::fun(vec![Ty::base("FileInputStream")], Ty::base("BufferedInputStream")),
                DeclKind::Imported,
            )
            .with_frequency(200),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn end_to_end_io_example() {
        let mut synth = Synthesizer::new(SynthesisConfig::default());
        let result = synth.synthesize(&io_env(), &Ty::base("BufferedInputStream"), 5);
        assert_eq!(result.rank_of("BufferedInputStream(FileInputStream(name))"), Some(1));
        assert_eq!(result.stats.initial_declarations, 3);
        assert!(result.stats.patterns >= 3);
        assert!(!result.stats.truncated);
    }

    #[test]
    fn snippets_are_sorted_by_weight() {
        let mut synth = Synthesizer::new(SynthesisConfig::default());
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new("s", Ty::fun(vec![Ty::base("A")], Ty::base("A")), DeclKind::Imported),
        ]
        .into_iter()
        .collect();
        let result = synth.synthesize(&env, &Ty::base("A"), 6);
        assert!(result
            .snippets
            .windows(2)
            .all(|w| w[0].weight <= w[1].weight));
    }

    #[test]
    fn all_snippets_type_check_at_the_goal() {
        let env = io_env();
        let goal = Ty::base("BufferedInputStream");
        let mut synth = Synthesizer::new(SynthesisConfig::default());
        let result = synth.synthesize(&env, &goal, 10);
        let bindings = env.to_bindings();
        for s in &result.snippets {
            check(&bindings, &s.raw_term, &goal).expect("snippet must type check");
        }
    }

    #[test]
    fn engine_matches_reference_rcn_up_to_depth() {
        // Completeness cross-check (Theorem 3.3) on a small environment.
        let env: TypeEnv = vec![
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new("f", Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("A")), DeclKind::Local),
            Declaration::new("b", Ty::base("B"), DeclKind::Local),
        ]
        .into_iter()
        .collect();
        let goal = Ty::base("A");
        let depth = 3;

        let reference: HashSet<Term> =
            rcn(&env, &goal, depth).iter().map(Term::alpha_normalize).collect();

        let config = SynthesisConfig::unbounded().with_max_depth(depth);
        let mut synth = Synthesizer::new(config);
        let result = synth.synthesize(&env, &goal, 10_000);
        let engine: HashSet<Term> = result
            .snippets
            .iter()
            .map(|s| s.raw_term.alpha_normalize())
            .collect();

        assert_eq!(engine, reference);
    }

    #[test]
    fn inhabitation_prover_agrees_with_reference_oracle() {
        let cases = vec![
            (io_env(), Ty::base("BufferedInputStream"), true),
            (io_env(), Ty::base("Unknown"), false),
            (
                vec![Declaration::new("f", Ty::fun(vec![Ty::base("B")], Ty::base("A")), DeclKind::Local)]
                    .into_iter()
                    .collect::<TypeEnv>(),
                Ty::base("A"),
                false,
            ),
            (
                TypeEnv::new(),
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                true,
            ),
        ];
        for (env, goal, expected) in cases {
            let mut synth = Synthesizer::new(SynthesisConfig::default());
            assert_eq!(synth.is_inhabited(&env, &goal), expected, "goal {goal}");
            assert_eq!(is_inhabited_ref(&env, &goal), expected, "reference, goal {goal}");
        }
    }

    #[test]
    fn subtyping_through_coercions_is_erased_in_output() {
        // §2.3: Drawing layout. getLayout : Container -> LayoutManager and
        // panel : Panel with Panel <: Container.
        let mut lattice = SubtypeLattice::new();
        lattice.add("Panel", "Container");
        let mut env: TypeEnv = vec![
            Declaration::new("panel", Ty::base("Panel"), DeclKind::Local),
            Declaration::new(
                "getLayout",
                Ty::fun(vec![Ty::base("Container")], Ty::base("LayoutManager")),
                DeclKind::Imported,
            ),
        ]
        .into_iter()
        .collect();
        env.extend(lattice.coercion_declarations());

        let mut synth = Synthesizer::new(SynthesisConfig::default());
        let result = synth.synthesize(&env, &Ty::base("LayoutManager"), 5);
        let top = &result.snippets[0];
        assert_eq!(top.term.to_string(), "getLayout(panel)");
        assert_eq!(top.coercions, 1);
        assert!(top.raw_term.to_string().contains("coerce$Panel$Container"));
    }

    #[test]
    fn no_weights_mode_still_finds_solutions() {
        let config = SynthesisConfig::default()
            .with_weights(WeightConfig::new(WeightMode::NoWeights));
        let mut synth = Synthesizer::new(config);
        let result = synth.synthesize(&io_env(), &Ty::base("BufferedInputStream"), 10);
        assert!(result
            .rank_of("BufferedInputStream(FileInputStream(name))")
            .is_some());
    }

    #[test]
    fn zero_n_returns_no_snippets_quickly() {
        let mut synth = Synthesizer::new(SynthesisConfig::default());
        let result = synth.synthesize(&io_env(), &Ty::base("BufferedInputStream"), 0);
        assert!(result.snippets.is_empty());
    }

    #[test]
    fn stats_report_succinct_compression() {
        // Two declarations with types that collapse to one succinct type.
        let env: TypeEnv = vec![
            Declaration::new("f", Ty::fun(vec![Ty::base("A"), Ty::base("B")], Ty::base("C")), DeclKind::Local),
            Declaration::new("g", Ty::fun(vec![Ty::base("B"), Ty::base("A")], Ty::base("C")), DeclKind::Local),
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
            Declaration::new("b", Ty::base("B"), DeclKind::Local),
        ]
        .into_iter()
        .collect();
        let mut synth = Synthesizer::new(SynthesisConfig::default());
        let result = synth.synthesize(&env, &Ty::base("C"), 5);
        assert_eq!(result.stats.initial_declarations, 4);
        assert_eq!(result.stats.distinct_succinct_types, 3);
        // Both f(a, b) and g(b, a) are found.
        assert!(result.rank_of("f(a, b)").is_some());
        assert!(result.rank_of("g(b, a)").is_some());
    }
}
