//! The exploration phase (Figure 7): backward type reachability.
//!
//! Starting from the request `σ(τo) ;Γ ?`, the phase repeatedly applies the
//! STRIP / MATCH / PROP rules, discovering the portion of the search space
//! reachable from the desired type and the initial environment. Requests are
//! processed in order of the weight of the requested type (§5.6), so that the
//! parts of the space the ranking will prefer are discovered first when a time
//! or request budget cuts exploration short.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::{Duration, Instant};

use insynth_intern::Symbol;
use insynth_succinct::{
    match_rule, strip_rule, BaseRequest, ReachabilityTerm, Request, ScratchStore, SuccinctTyId,
};

use crate::prepare::PreparedEnv;
use crate::weights::Weight;

/// Budgets bounding the exploration phase.
#[derive(Debug, Clone)]
pub struct ExploreLimits {
    /// Maximum number of (stripped) requests to process.
    pub max_requests: usize,
    /// Wall-clock limit for the phase, if any (the paper's "prover" limit).
    pub time_limit: Option<Duration>,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_requests: 1_000_000,
            time_limit: None,
        }
    }
}

/// The search space discovered by exploration: every reachability term found,
/// plus bookkeeping statistics.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// All reachability terms derived by the MATCH rule.
    pub terms: Vec<ReachabilityTerm>,
    /// Number of distinct (stripped) requests processed.
    pub requests_processed: usize,
    /// `true` if exploration stopped because a budget ran out rather than
    /// because the space was exhausted.
    pub truncated: bool,
    /// `true` if the budget that fired was the wall-clock limit. Unlike the
    /// deterministic `max_requests` cap, a wall-clock truncation is a
    /// property of the moment, not of the input — results derived from such
    /// a space must not be cached (see the session's graph cache).
    pub time_truncated: bool,
    /// The *distinct* return-type symbols of the processed (stripped)
    /// requests, in first-processed order. A declaration participates in
    /// this exploration — as a match, a weight in the queue ordering, or a
    /// `Select` edge downstream — only if its σ return symbol appears here;
    /// the session's edit-time delta path uses that to decide which cached
    /// artifacts an environment change can possibly affect. Bounded by the
    /// number of distinct base types, not by the request count.
    pub processed_rets: Vec<Symbol>,
}

/// Runs the exploration phase for the goal type `goal` (already in succinct
/// form) against the prepared environment.
///
/// The prepared environment is read-only; request normalization interns the
/// extended environments it discovers into the query-local `store` overlay.
///
/// # Example
///
/// ```
/// use insynth_core::{explore, Declaration, DeclKind, ExploreLimits, PreparedEnv, TypeEnv, WeightConfig};
/// use insynth_lambda::Ty;
/// use insynth_succinct::TypeStore;
///
/// let mut env = TypeEnv::new();
/// env.push(Declaration::simple("a", Ty::base("Int"), DeclKind::Local));
/// env.push(Declaration::simple(
///     "f",
///     Ty::fun(vec![Ty::base("Int")], Ty::base("String")),
///     DeclKind::Imported,
/// ));
/// let prepared = PreparedEnv::prepare(&env, &WeightConfig::default());
/// let mut store = prepared.scratch();
/// let goal = store.sigma(&Ty::base("String"));
/// let space = explore(&prepared, &mut store, goal, &ExploreLimits::default());
/// assert_eq!(space.terms.len(), 2); // one for String via f, one for Int via a
/// ```
pub fn explore(
    prepared: &PreparedEnv,
    store: &mut ScratchStore<'_>,
    goal: SuccinctTyId,
    limits: &ExploreLimits,
) -> SearchSpace {
    let start = Instant::now();
    let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::new();
    let mut seq = 0u64;

    let initial = Request {
        ty: goal,
        env: prepared.init_env,
    };
    queue.push(QueueEntry {
        weight: Reverse(prepared.type_weight(goal)),
        seq: Reverse(seq),
        request: initial,
    });

    let mut visited: HashSet<BaseRequest> = HashSet::new();
    let mut seen_rets: HashSet<Symbol> = HashSet::new();
    let mut space = SearchSpace {
        terms: Vec::new(),
        requests_processed: 0,
        truncated: false,
        time_truncated: false,
        processed_rets: Vec::new(),
    };

    while let Some(entry) = queue.pop() {
        if space.requests_processed >= limits.max_requests {
            space.truncated = true;
            break;
        }
        if let Some(limit) = limits.time_limit {
            if start.elapsed() > limit {
                space.truncated = true;
                space.time_truncated = true;
                break;
            }
        }

        let stripped = strip_rule(store, entry.request);
        if !visited.insert(stripped) {
            continue;
        }
        space.requests_processed += 1;
        if seen_rets.insert(stripped.ret) {
            space.processed_rets.push(stripped.ret);
        }

        let found = match_rule(store, stripped);
        for term in &found {
            for &arg in &term.remaining {
                // PROP: issue a request for every argument type; STRIP at pop
                // time will extend the environment for functional arguments.
                let request = Request {
                    ty: arg,
                    env: term.env,
                };
                let peek = strip_rule(store, request);
                if !visited.contains(&peek) {
                    seq += 1;
                    queue.push(QueueEntry {
                        weight: Reverse(prepared.type_weight(arg)),
                        seq: Reverse(seq),
                        request,
                    });
                }
            }
        }
        space.terms.extend(found);
    }

    space
}

/// Priority-queue entry: lighter requests first, FIFO among equals.
#[derive(Debug, PartialEq, Eq)]
struct QueueEntry {
    weight: Reverse<Weight>,
    seq: Reverse<u64>,
    request: Request,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.weight, self.seq, self.request).cmp(&(other.weight, other.seq, other.request))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::{DeclKind, Declaration, TypeEnv};
    use crate::weights::WeightConfig;
    use insynth_lambda::Ty;
    use insynth_succinct::TypeStore;

    fn prepared(decls: Vec<Declaration>) -> PreparedEnv {
        let env: TypeEnv = decls.into_iter().collect();
        PreparedEnv::prepare(&env, &WeightConfig::default())
    }

    #[test]
    fn paper_example_space_is_discovered() {
        // Γo = {a : Int, f : Int -> Int -> Int -> String}, goal String.
        let p = prepared(vec![
            Declaration::new("a", Ty::base("Int"), DeclKind::Local),
            Declaration::new(
                "f",
                Ty::fun(
                    vec![Ty::base("Int"), Ty::base("Int"), Ty::base("Int")],
                    Ty::base("String"),
                ),
                DeclKind::Imported,
            ),
        ]);
        let mut store = p.scratch();
        let goal = store.sigma(&Ty::base("String"));
        let space = explore(&p, &mut store, goal, &ExploreLimits::default());
        // Terms: String via {Int}->String, and Int via the nullary Int decl.
        assert_eq!(space.terms.len(), 2);
        assert!(!space.truncated);
        assert_eq!(space.requests_processed, 2);
    }

    #[test]
    fn unreachable_parts_of_the_environment_are_not_visited() {
        let p = prepared(vec![
            Declaration::new("a", Ty::base("Int"), DeclKind::Local),
            Declaration::new(
                "g",
                Ty::fun(vec![Ty::base("Unrelated")], Ty::base("Other")),
                DeclKind::Imported,
            ),
            Declaration::new(
                "f",
                Ty::fun(vec![Ty::base("Int")], Ty::base("String")),
                DeclKind::Imported,
            ),
        ]);
        let mut store = p.scratch();
        let goal = store.sigma(&Ty::base("String"));
        let space = explore(&p, &mut store, goal, &ExploreLimits::default());
        // Only the String and Int requests are reachable; `g` never matches.
        assert_eq!(space.requests_processed, 2);
        assert!(space
            .terms
            .iter()
            .all(|t| store.base_name(t.ret) != "Other"));
    }

    #[test]
    fn functional_goal_extends_the_environment() {
        // goal: Tree -> Boolean with p : Tree -> Boolean in scope: the stripped
        // request must look for Boolean in Γ ∪ {Tree}.
        let p = prepared(vec![Declaration::new(
            "p",
            Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")),
            DeclKind::Local,
        )]);
        let mut store = p.scratch();
        let goal = store.sigma(&Ty::fun(vec![Ty::base("Tree")], Ty::base("Boolean")));
        let space = explore(&p, &mut store, goal, &ExploreLimits::default());
        // Boolean via p (needs Tree), then Tree via the argument binder type.
        assert_eq!(space.terms.len(), 2);
        let tree_term = space
            .terms
            .iter()
            .find(|t| store.base_name(t.ret) == "Tree")
            .expect("Tree must be matched against the extended environment");
        assert!(tree_term.is_leaf());
    }

    #[test]
    fn recursive_environments_terminate() {
        // f : A -> A creates a cycle A -> A; the visited set must stop it.
        let p = prepared(vec![
            Declaration::new(
                "f",
                Ty::fun(vec![Ty::base("A")], Ty::base("A")),
                DeclKind::Local,
            ),
            Declaration::new("a", Ty::base("A"), DeclKind::Local),
        ]);
        let mut store = p.scratch();
        let goal = store.sigma(&Ty::base("A"));
        let space = explore(&p, &mut store, goal, &ExploreLimits::default());
        assert!(!space.truncated);
        assert_eq!(space.requests_processed, 1);
        // Both the nullary `a` and the recursive `f` match the single request.
        assert_eq!(space.terms.len(), 2);
    }

    #[test]
    fn request_budget_truncates_exploration() {
        let p = prepared(vec![
            Declaration::new(
                "mk",
                Ty::fun(vec![Ty::base("B")], Ty::base("A")),
                DeclKind::Local,
            ),
            Declaration::new(
                "mk2",
                Ty::fun(vec![Ty::base("C")], Ty::base("B")),
                DeclKind::Local,
            ),
            Declaration::new("c", Ty::base("C"), DeclKind::Local),
        ]);
        let mut store = p.scratch();
        let goal = store.sigma(&Ty::base("A"));
        let space = explore(
            &p,
            &mut store,
            goal,
            &ExploreLimits {
                max_requests: 1,
                time_limit: None,
            },
        );
        assert!(space.truncated);
        assert_eq!(space.requests_processed, 1);
    }

    #[test]
    fn goal_type_missing_from_environment_yields_empty_space() {
        let p = prepared(vec![Declaration::new(
            "a",
            Ty::base("Int"),
            DeclKind::Local,
        )]);
        let mut store = p.scratch();
        // "Nothing" is absent from the base store, so it lands in the overlay.
        let goal = store.sigma(&Ty::base("Nothing"));
        assert_eq!(store.scratch_ty_count(), 1);
        let space = explore(&p, &mut store, goal, &ExploreLimits::default());
        assert!(space.terms.is_empty());
    }

    #[test]
    fn exploration_leaves_the_prepared_store_untouched() {
        let p = prepared(vec![
            Declaration::new("a", Ty::base("Int"), DeclKind::Local),
            Declaration::new(
                "f",
                Ty::fun(vec![Ty::base("Int")], Ty::base("String")),
                DeclKind::Imported,
            ),
        ]);
        let tys_before = p.store.ty_count();
        let envs_before = p.store.env_count();
        let mut store = p.scratch();
        let goal = store.sigma(&Ty::base("String"));
        let _ = explore(&p, &mut store, goal, &ExploreLimits::default());
        assert_eq!(p.store.ty_count(), tys_before);
        assert_eq!(p.store.env_count(), envs_before);
    }
}
