//! The InSynth synthesis engine (paper sections 4-6).
//!
//! Given a type environment Γo (every declaration visible at a program point)
//! and a desired type τ, the engine synthesizes the `N` best-ranked
//! expressions of type τ in long normal form:
//!
//! 1. **Prepare** (σ): declarations are lowered into succinct types and the
//!    `Select` / weight indices are built ([`PreparedEnv`]). Runs once per
//!    program point.
//! 2. **Explore** (Figure 7): backward type reachability from the goal,
//!    weight-ordered ([`explore`]).
//! 3. **GenerateP** (Figure 9): succinct patterns are derived from the
//!    explored space ([`generate_patterns`]) using the backward-map
//!    optimization of section 5.7, and indexed by `(environment, return
//!    type)` goal through a
//!    [`PatternIndex`](insynth_succinct::PatternIndex).
//! 4. **Graph** : the indexed patterns are compiled into a [`DerivationGraph`]
//!    — goals become nodes, and every `Select`-resolved declaration that
//!    realizes a pattern becomes a weighted edge carrying its pre-lowered
//!    argument types. The graph is self-contained and cached on the
//!    [`Session`], so repeated queries for the same goal skip phases 2–5
//!    entirely.
//! 5. **Heuristic** : a backward Dijkstra over the graph computes, per goal
//!    node, an admissible lower bound on the cheapest complete term rooted
//!    there (∞ for uncompletable goals), stored with the graph and hence
//!    computed once per cached graph.
//! 6. **GenerateT** (Figure 10): reconstruction of concrete lambda terms as
//!    an A* walk over the graph ([`generate_terms`]), ordered by accumulated
//!    weight plus the completion bounds of the open holes: no interning or
//!    `Select` lookups in the search loop, dead (∞-bound) holes pruned at
//!    creation, and branch-and-bound against the current n-th best
//!    candidate. When negative weight overrides break monotonicity the walk
//!    falls back to plain best-first order ([`generate_terms_best_first`]).
//!    [`generate_terms_unindexed`] is the pre-graph reference walk over the
//!    flat [`PatternSet`]; all walks return byte-identical ranked terms, and
//!    the unindexed one serves as the equivalence oracle and ablation
//!    baseline.
//!
//! The public entry point is the session API, built around **content-addressed
//! environments**: every [`TypeEnv`] has an [`EnvFingerprint`] (an
//! order-insensitive digest over its declaration multiset and effective
//! weights), and the [`Engine`] keys its caches on it. [`Engine::prepare`]
//! runs phase 1 at most once per fingerprint — structurally equal program
//! points share one preparation — and returns a `Send + Sync` [`Session`];
//! [`Session::query`] runs phases 2-6 for each [`Query`] without touching
//! shared state, memoizing the derivation graphs on the engine per
//! `(fingerprint, goal, prover budgets)` so equal points share graphs too.
//! [`Session::update`] applies an [`EnvDelta`] (add / remove / reweight
//! declarations) and re-prepares incrementally, re-running σ only on the
//! changed declarations and carrying over every cached graph the edit
//! provably cannot affect — byte-identical to a fresh preparation of the
//! edited environment. [`Engine::query_batch`] runs requests against several
//! program points at once, preparing each distinct point once and fanning
//! queries out across a thread pool. [`rcn`] is the unoptimized reference
//! implementation of Figure 4 used as a test oracle; the [`SubtypeLattice`]
//! turns subtype edges into coercion declarations (section 6).
//!
//! # Example
//!
//! ```
//! use insynth_core::{Declaration, DeclKind, Engine, Query, SynthesisConfig, TypeEnv};
//! use insynth_lambda::Ty;
//!
//! let env: TypeEnv = vec![
//!     Declaration::simple("body", Ty::base("String"), DeclKind::Local),
//!     Declaration::simple(
//!         "StringReader",
//!         Ty::fun(vec![Ty::base("String")], Ty::base("StringReader")),
//!         DeclKind::Imported,
//!     ),
//! ]
//! .into_iter()
//! .collect();
//!
//! let engine = Engine::new(SynthesisConfig::default());
//! let session = engine.prepare(&env); // prepare once …
//! let result = session.query(&Query::new(Ty::base("StringReader")).with_n(3));
//! assert_eq!(result.snippets[0].term.to_string(), "StringReader(body)");
//! let again = session.query(&Query::new(Ty::base("String"))); // … query many
//! assert_eq!(again.snippets[0].term.to_string(), "body");
//! ```

mod coerce;
mod decl;
mod explore;
mod genp;
mod gent;
mod graph;
mod pexpr;
mod prepare;
mod rcn;
mod session;
mod synth;
mod weights;

pub use coerce::{
    coercion_name, count_coercions, erase_coercions, is_coercion, SubtypeLattice, COERCION_PREFIX,
};
pub use decl::{DeclKind, Declaration, TypeEnv};
pub use explore::{explore, ExploreLimits, SearchSpace};
pub use genp::{generate_patterns, generate_patterns_naive, PatternSet};
pub use gent::{
    generate_terms_unindexed, CancelToken, GenerateLimits, GenerateOutcome, RankedTerm,
};
pub use graph::{generate_terms, generate_terms_best_first, DerivationGraph, HoleTyId};
pub use insynth_analysis::{
    Allowlist, AnalysisReport, DeclFacts, Diagnostic, DiagnosticKind, Severity,
};
pub use insynth_succinct::EnvFingerprint;
pub use prepare::{effective_sigma_shards, PreparedEnv};
pub use rcn::{is_inhabited_ref, rcn};
pub use session::{
    BatchRequest, Engine, EngineStatsSnapshot, EnvDelta, Query, Session, TermStream,
};
#[allow(deprecated)]
pub use synth::Synthesizer;
pub use synth::{PhaseTimings, Snippet, SynthesisConfig, SynthesisResult, SynthesisStats};
pub use weights::{Weight, WeightConfig, WeightMode, WeightTable};
