//! Preparation of a type environment for the succinct-calculus search.
//!
//! Preparing an environment computes, once per *program point*: the σ image of
//! every declaration type, the interned initial environment Γ = σ(Γo), the
//! `Select` index from succinct types back to declarations (used by the
//! reconstruction phase, Figure 4/10), and the per-succinct-type weights that
//! drive the priority queues (§5.6).
//!
//! A [`PreparedEnv`] is immutable once built: queries read it through a shared
//! reference and intern any query-local types into a [`ScratchStore`] overlay
//! obtained from [`PreparedEnv::scratch`]. That is what lets one prepared
//! environment serve many queries, concurrently, without re-running σ.

use std::collections::HashMap;

use insynth_succinct::{EnvId, ScratchStore, SuccinctStore, SuccinctTyId};

use crate::decl::TypeEnv;
use crate::weights::{Weight, WeightConfig};

/// A type environment lowered into succinct form, with the lookup structures
/// the synthesis phases need.
#[derive(Debug)]
pub struct PreparedEnv {
    /// The succinct type / environment store for this query.
    pub store: SuccinctStore,
    /// For each declaration (by index into the original [`TypeEnv`]), the σ
    /// image of its type.
    pub decl_succ: Vec<SuccinctTyId>,
    /// For each declaration, its weight under the active [`WeightConfig`].
    pub decl_weight: Vec<Weight>,
    /// The `Select` index: succinct type → indices of declarations whose type
    /// maps onto it.
    pub by_succ: HashMap<SuccinctTyId, Vec<usize>>,
    /// Minimum declaration weight per succinct type (the `w(t, Γo)` of §4).
    pub ty_weight: HashMap<SuccinctTyId, Weight>,
    /// The interned initial succinct environment Γ = σ(Γo).
    pub init_env: EnvId,
}

impl PreparedEnv {
    /// Lowers `env` into succinct form under the given weight configuration.
    pub fn prepare(env: &TypeEnv, weights: &WeightConfig) -> Self {
        let mut store = SuccinctStore::new();
        let mut decl_succ = Vec::with_capacity(env.len());
        let mut decl_weight = Vec::with_capacity(env.len());
        let mut by_succ: HashMap<SuccinctTyId, Vec<usize>> = HashMap::new();
        let mut ty_weight: HashMap<SuccinctTyId, Weight> = HashMap::new();

        for (idx, decl) in env.iter().enumerate() {
            let succ = store.sigma(&decl.ty);
            let w = weights.declaration_weight(decl);
            decl_succ.push(succ);
            decl_weight.push(w);
            by_succ.entry(succ).or_default().push(idx);
            ty_weight
                .entry(succ)
                .and_modify(|cur| {
                    if w < *cur {
                        *cur = w;
                    }
                })
                .or_insert(w);
        }

        let init_env = store.mk_env(decl_succ.iter().copied());
        PreparedEnv {
            store,
            decl_succ,
            decl_weight,
            by_succ,
            ty_weight,
            init_env,
        }
    }

    /// A fresh per-query interning overlay over this environment's store.
    ///
    /// Every query needs to intern a few types of its own (the goal type, the
    /// environments extended with lambda binders); the overlay takes those
    /// without mutating — or locking — the shared store.
    pub fn scratch(&self) -> ScratchStore<'_> {
        ScratchStore::new(&self.store)
    }

    /// The declarations whose σ image is exactly `succ` (the `Select` function
    /// restricted to the original environment).
    pub fn select(&self, succ: SuccinctTyId) -> &[usize] {
        self.by_succ.get(&succ).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The weight of a succinct type: the minimum weight of any declaration
    /// producing it, or [`Weight::UNKNOWN`] if no declaration does.
    pub fn type_weight(&self, succ: SuccinctTyId) -> Weight {
        self.ty_weight
            .get(&succ)
            .copied()
            .unwrap_or(Weight::UNKNOWN)
    }

    /// Number of *distinct* succinct types among the declarations — the
    /// compression statistic reported in §3.2 (3356 declarations → 1783
    /// succinct types on the Figure 1 example).
    pub fn distinct_succinct_types(&self) -> usize {
        self.by_succ.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::{DeclKind, Declaration};
    use insynth_lambda::Ty;

    fn env() -> TypeEnv {
        let mut e = TypeEnv::new();
        e.push(Declaration::new("a", Ty::base("Int"), DeclKind::Local));
        e.push(Declaration::new(
            "f",
            Ty::fun(vec![Ty::base("Int"), Ty::base("Int")], Ty::base("String")),
            DeclKind::Imported,
        ));
        e.push(Declaration::new(
            "g",
            Ty::fun(vec![Ty::base("Int")], Ty::base("String")),
            DeclKind::Local,
        ));
        e
    }

    #[test]
    fn sigma_collapses_f_and_g_to_one_succinct_type() {
        let prepared = PreparedEnv::prepare(&env(), &WeightConfig::default());
        // f : Int -> Int -> String and g : Int -> String both become {Int} -> String.
        assert_eq!(prepared.decl_succ[1], prepared.decl_succ[2]);
        assert_eq!(prepared.distinct_succinct_types(), 2);
        assert_eq!(prepared.select(prepared.decl_succ[1]), &[1, 2]);
    }

    #[test]
    fn type_weight_is_the_minimum_declaration_weight() {
        let prepared = PreparedEnv::prepare(&env(), &WeightConfig::default());
        // g is Local (5), f is Imported (1000): the shared succinct type weighs 5.
        assert_eq!(prepared.type_weight(prepared.decl_succ[1]).value(), 5.0);
    }

    #[test]
    fn unknown_types_get_the_sentinel_weight() {
        let mut store_probe = PreparedEnv::prepare(&env(), &WeightConfig::default());
        let missing = store_probe.store.mk_base("Missing");
        assert_eq!(store_probe.type_weight(missing), Weight::UNKNOWN);
    }

    #[test]
    fn init_env_contains_every_declared_succinct_type() {
        let prepared = PreparedEnv::prepare(&env(), &WeightConfig::default());
        for &succ in &prepared.decl_succ {
            assert!(prepared.store.env_contains(prepared.init_env, succ));
        }
        assert_eq!(prepared.store.env_len(prepared.init_env), 2);
    }
}
