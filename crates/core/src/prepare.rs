//! Preparation of a type environment for the succinct-calculus search.
//!
//! Preparing an environment computes, once per *program point*: the σ image of
//! every declaration type, the interned initial environment Γ = σ(Γo), the
//! `Select` index from succinct types back to declarations (used by the
//! reconstruction phase, Figure 4/10), and the per-succinct-type weights that
//! drive the priority queues (§5.6).
//!
//! A [`PreparedEnv`] is immutable once built: queries read it through a shared
//! reference and intern any query-local types into a [`ScratchStore`] overlay
//! obtained from [`PreparedEnv::scratch`]. That is what lets one prepared
//! environment serve many queries, concurrently, without re-running σ.
//!
//! Preparation is *content-addressed*: every environment gets an
//! [`EnvFingerprint`] — an order-insensitive digest over its declaration
//! multiset and effective weights — computed by [`PreparedEnv::fingerprint_of`]
//! and stored on the prepared result. The engine keys its cross-point caches
//! on that fingerprint, so two structurally equal program points (even with
//! declarations collected in different orders) share one preparation.
//! [`PreparedEnv::prepare_appended`] is the incremental path for edit-time
//! deltas: when an environment only gained appended declarations and/or
//! changed weights, σ runs on the appended suffix alone and everything else
//! is carried over — bit-identical to a fresh [`PreparedEnv::prepare`] of the
//! edited environment (the interning sequence of the shared prefix is
//! unchanged, so every id comes out the same).
//!
//! # Scaling the environment axis
//!
//! At IDE scale (tens of thousands of declarations) the σ loop dominates
//! preparation, and it is embarrassingly parallel *except* for the interning
//! store it mutates. [`PreparedEnv::prepare_sharded`] splits the declaration
//! list into contiguous chunks, σ-lowers each chunk into a **private**
//! [`SuccinctStore`] on a scoped thread, and then merges the shards with a
//! deterministic replay: declarations are revisited in their original global
//! order, and each shard-local type is re-interned into the canonical store
//! the first time the walk reaches it. Because shard-local ids are assigned
//! in σ's own first-encounter post-order, the replay re-creates exactly the
//! ids a sequential [`PreparedEnv::prepare`] would — the result is
//! **byte-identical** for every shard count (the same bit-compatibility
//! contract [`PreparedEnv::prepare_appended`] meets, property-tested in
//! `tests/shard_identity.rs`).
//!
//! When does it pay off? The merge costs one `mk_ty` per *chunk-distinct*
//! type plus a vector lookup per declaration, while the shards absorb the
//! per-declaration hashing — so the win grows with the duplication factor σ
//! exploits. Below roughly a thousand declarations the thread fan-out costs
//! more than it saves; [`effective_sigma_shards`] encodes that policy and is
//! what the engine applies to the [`SynthesisConfig::sigma_shards`] knob
//! (`1` pins today's sequential path).
//!
//! [`SynthesisConfig::sigma_shards`]: crate::SynthesisConfig::sigma_shards

use std::collections::HashMap;

use insynth_intern::{StableHasher, Symbol};
use insynth_succinct::{
    EnvFingerprint, EnvFingerprintBuilder, EnvId, ScratchStore, SuccinctStore, SuccinctTyId,
};

use insynth_lambda::Ty;

use crate::decl::{DeclKind, Declaration, TypeEnv};
use crate::weights::{Weight, WeightConfig};

/// Declarations per shard below which fanning out costs more than it saves;
/// [`effective_sigma_shards`] never cuts chunks finer than this.
const MIN_DECLS_PER_SHARD: usize = 1024;

/// The shard count the engine actually uses for an environment of `decls`
/// declarations when the configuration asks for `requested` shards: capped so
/// every shard keeps at least [`MIN_DECLS_PER_SHARD`] declarations (small
/// environments degrade to the sequential path), never below 1.
pub fn effective_sigma_shards(requested: usize, decls: usize) -> usize {
    requested.max(1).min((decls / MIN_DECLS_PER_SHARD).max(1))
}

/// One shard's private σ-lowering: a fresh store holding the chunk's type
/// images, plus the bookkeeping the deterministic merge replays them from.
struct ShardLowering {
    /// Private interning store; local ids are in σ's first-encounter order.
    store: SuccinctStore,
    /// Local σ image of each declaration in this shard's chunk.
    decl_local: Vec<SuccinctTyId>,
    /// Local `ty_count` after each declaration: the types first interned
    /// while lowering chunk declaration `i` occupy the local id range
    /// `watermarks[i-1]..watermarks[i]` (`0..watermarks[0]` for the first).
    watermarks: Vec<u32>,
}

fn lower_chunk(decls: &[Declaration]) -> ShardLowering {
    let mut store = SuccinctStore::new();
    let mut decl_local = Vec::with_capacity(decls.len());
    let mut watermarks = Vec::with_capacity(decls.len());
    for decl in decls {
        decl_local.push(store.sigma(&decl.ty));
        watermarks.push(store.ty_count() as u32);
    }
    ShardLowering {
        store,
        decl_local,
        watermarks,
    }
}

/// A type environment lowered into succinct form, with the lookup structures
/// the synthesis phases need.
#[derive(Debug)]
pub struct PreparedEnv {
    /// The succinct type / environment store for this query.
    pub store: SuccinctStore,
    /// For each declaration (by index into the original [`TypeEnv`]), the σ
    /// image of its type.
    pub decl_succ: Vec<SuccinctTyId>,
    /// For each declaration, its weight under the active [`WeightConfig`].
    pub decl_weight: Vec<Weight>,
    /// The `Select` index: succinct type → indices of declarations whose type
    /// maps onto it.
    pub by_succ: HashMap<SuccinctTyId, Vec<usize>>,
    /// Minimum declaration weight per succinct type (the `w(t, Γo)` of §4).
    pub ty_weight: HashMap<SuccinctTyId, Weight>,
    /// The interned initial succinct environment Γ = σ(Γo).
    pub init_env: EnvId,
    /// The content address of the environment this preparation was computed
    /// from (see [`PreparedEnv::fingerprint_of`]).
    pub fingerprint: EnvFingerprint,
}

/// Feeds a simple type into a stable hasher, structurally and unambiguously.
fn hash_ty(h: &mut StableHasher, ty: &Ty) {
    match ty {
        Ty::Base(name) => {
            h.write_u8(0);
            h.write_str(name);
        }
        Ty::Arrow(a, b) => {
            h.write_u8(1);
            hash_ty(h, a);
            hash_ty(h, b);
        }
    }
}

/// The stable digest of one declaration under a weight configuration: name,
/// structural type, kind, corpus frequency, weight override, and the
/// *effective* weight the configuration assigns it (so two configurations
/// that weigh the environment differently fingerprint it differently).
fn hash_declaration(decl: &Declaration, weights: &WeightConfig) -> u128 {
    let mut h = StableHasher::new();
    h.write_str(&decl.name);
    hash_ty(&mut h, &decl.ty);
    h.write_u8(match decl.kind {
        DeclKind::Lambda => 0,
        DeclKind::Local => 1,
        DeclKind::Coercion => 2,
        DeclKind::Class => 3,
        DeclKind::Package => 4,
        DeclKind::Literal => 5,
        DeclKind::Imported => 6,
    });
    match decl.frequency {
        None => h.write_u8(0),
        Some(f) => {
            h.write_u8(1);
            h.write_u64(f);
        }
    }
    match decl.weight_override {
        None => h.write_u8(0),
        Some(w) => {
            h.write_u8(1);
            h.write_f64(w);
        }
    }
    h.write_f64(weights.declaration_weight(decl).value());
    h.finish()
}

impl PreparedEnv {
    /// The content address of `env` under `weights`: an order-insensitive
    /// digest over the declaration multiset (each declaration hashed with its
    /// name, type, kind, frequency, override and effective weight) plus the
    /// lambda weight — the only weight the search adds that no declaration
    /// carries. Two environments with equal fingerprints prepare to
    /// interchangeable state (the engine still verifies structural equality
    /// before sharing, so a hash collision can never cross-contaminate).
    pub fn fingerprint_of(env: &TypeEnv, weights: &WeightConfig) -> EnvFingerprint {
        let mut builder = EnvFingerprintBuilder::new();
        for decl in env.iter() {
            builder.add_item(hash_declaration(decl, weights));
        }
        builder.mix_config(|h| h.write_f64(weights.lambda_weight().value()));
        builder.finish()
    }

    /// Lowers `env` into succinct form under the given weight configuration.
    pub fn prepare(env: &TypeEnv, weights: &WeightConfig) -> Self {
        Self::prepare_with_fingerprint(env, weights, Self::fingerprint_of(env, weights))
    }

    /// [`PreparedEnv::prepare`] for callers that already computed the
    /// environment's fingerprint (the engine hashes it for the cache lookup
    /// that precedes every preparation — re-hashing thousands of
    /// declarations on each miss would waste the lookup's savings).
    pub fn prepare_with_fingerprint(
        env: &TypeEnv,
        weights: &WeightConfig,
        fingerprint: EnvFingerprint,
    ) -> Self {
        let mut store = SuccinctStore::new();
        let mut decl_succ = Vec::with_capacity(env.len());
        let mut by_succ: HashMap<SuccinctTyId, Vec<usize>> = HashMap::new();
        for (idx, decl) in env.iter().enumerate() {
            let succ = store.sigma(&decl.ty);
            decl_succ.push(succ);
            by_succ.entry(succ).or_default().push(idx);
        }
        Self::finish_prepare(store, decl_succ, by_succ, env, weights, fingerprint)
    }

    /// [`PreparedEnv::prepare`] with σ-lowering sharded across `shards`
    /// scoped threads (see the module-level *Scaling the environment axis*
    /// section). Byte-identical to the sequential path for every shard
    /// count; `shards <= 1` *is* the sequential path.
    pub fn prepare_sharded(env: &TypeEnv, weights: &WeightConfig, shards: usize) -> Self {
        Self::prepare_with_fingerprint_sharded(
            env,
            weights,
            Self::fingerprint_of(env, weights),
            shards,
        )
    }

    /// [`PreparedEnv::prepare_sharded`] for callers that already computed the
    /// environment's fingerprint.
    ///
    /// Each shard σ-lowers a contiguous chunk of declarations into a private
    /// store; the merge then walks the declarations in global order and
    /// re-interns each shard-local type into the canonical store the first
    /// time it is reached. Shard-local ids are assigned in σ's own
    /// first-encounter post-order (arguments strictly before the types that
    /// use them), so the canonical store sees every creation in exactly the
    /// sequence a sequential preparation would produce — same type ids, same
    /// symbols, same counts, for any shard count.
    pub fn prepare_with_fingerprint_sharded(
        env: &TypeEnv,
        weights: &WeightConfig,
        fingerprint: EnvFingerprint,
        shards: usize,
    ) -> Self {
        let shards = shards.max(1).min(env.len().max(1));
        if shards <= 1 {
            return Self::prepare_with_fingerprint(env, weights, fingerprint);
        }
        let chunk = env.len().div_ceil(shards);
        let decls = env.decls();
        let lowered: Vec<ShardLowering> = std::thread::scope(|scope| {
            let handles: Vec<_> = decls
                .chunks(chunk)
                .map(|chunk_decls| scope.spawn(move || lower_chunk(chunk_decls)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("σ shard panicked"))
                .collect()
        });

        // Deterministic merge: revisit declarations in global order; for each,
        // replay the shard-local types its lowering first interned (its
        // watermark range), resolving local argument ids through the shard's
        // memo — always present, since local args precede their users.
        let mut store = SuccinctStore::new();
        let mut decl_succ = Vec::with_capacity(env.len());
        let mut by_succ: HashMap<SuccinctTyId, Vec<usize>> = HashMap::new();
        let mut resolved: Vec<Vec<SuccinctTyId>> = lowered
            .iter()
            .map(|s| Vec::with_capacity(s.store.ty_count()))
            .collect();
        for idx in 0..env.len() {
            let (shard_idx, off) = (idx / chunk, idx % chunk);
            let shard = &lowered[shard_idx];
            let memo = &mut resolved[shard_idx];
            let hi = shard.watermarks[off] as usize;
            while memo.len() < hi {
                let data = shard.store.ty(SuccinctTyId::from_index(memo.len() as u32));
                let args: Vec<SuccinctTyId> =
                    data.args.iter().map(|a| memo[a.as_usize()]).collect();
                let ret = store.base_symbol(shard.store.base_name(data.ret));
                let canonical = store.mk_ty(args, ret);
                memo.push(canonical);
            }
            let succ = memo[shard.decl_local[off].as_usize()];
            decl_succ.push(succ);
            by_succ.entry(succ).or_default().push(idx);
        }
        Self::finish_prepare(store, decl_succ, by_succ, env, weights, fingerprint)
    }

    /// Incrementally re-prepares for `env`, which must extend the environment
    /// `base` was prepared from by **appended declarations and/or in-place
    /// weight changes**: the first `prefix_len` declarations of `env` have
    /// the same names and types (in the same order) as the base environment.
    ///
    /// Only the appended suffix is σ-lowered; the interned store is carried
    /// over. Because a fresh [`PreparedEnv::prepare`] of `env` would replay
    /// the exact interning sequence of the shared prefix before reaching the
    /// suffix, every *type* id, declaration index and weight comes out
    /// identical to that fresh preparation. The only divergence is inert:
    /// when the appended declarations extend the initial environment's
    /// member set, the carried store still holds the old initial environment
    /// under its old id (a fresh store never interns it), shifting later
    /// environment *ids* by one — and no query-observable behavior depends
    /// on environment id values (nothing orders by them, and the old set is
    /// a strict subset no lookup in the new world can produce). Query
    /// results are therefore byte-identical to the fresh preparation, which
    /// is what the session's delta path promises.
    pub fn prepare_appended(
        base: &PreparedEnv,
        env: &TypeEnv,
        weights: &WeightConfig,
        prefix_len: usize,
        fingerprint: EnvFingerprint,
    ) -> Self {
        debug_assert!(prefix_len <= env.len());
        debug_assert_eq!(prefix_len, base.decl_succ.len());
        let mut store = base.store.clone();
        let mut decl_succ = base.decl_succ.clone();
        let mut by_succ = base.by_succ.clone();
        for (idx, decl) in env.iter().enumerate().skip(prefix_len) {
            let succ = store.sigma(&decl.ty);
            decl_succ.push(succ);
            by_succ.entry(succ).or_default().push(idx);
        }
        Self::finish_prepare(store, decl_succ, by_succ, env, weights, fingerprint)
    }

    /// Shared tail of fresh and incremental preparation: the weight tables
    /// (cheap, no σ), the initial environment and the fingerprint.
    fn finish_prepare(
        mut store: SuccinctStore,
        decl_succ: Vec<SuccinctTyId>,
        by_succ: HashMap<SuccinctTyId, Vec<usize>>,
        env: &TypeEnv,
        weights: &WeightConfig,
        fingerprint: EnvFingerprint,
    ) -> Self {
        debug_assert_eq!(fingerprint, Self::fingerprint_of(env, weights));
        let mut decl_weight = Vec::with_capacity(env.len());
        let mut ty_weight: HashMap<SuccinctTyId, Weight> = HashMap::new();
        for (idx, decl) in env.iter().enumerate() {
            let w = weights.declaration_weight(decl);
            decl_weight.push(w);
            ty_weight
                .entry(decl_succ[idx])
                .and_modify(|cur| {
                    if w < *cur {
                        *cur = w;
                    }
                })
                .or_insert(w);
        }
        let init_env = store.mk_env(decl_succ.iter().copied());
        PreparedEnv {
            store,
            decl_succ,
            decl_weight,
            by_succ,
            ty_weight,
            init_env,
            fingerprint,
        }
    }

    /// `true` when every weight the search can add under this preparation is
    /// non-negative — the condition for the A* completion-cost heuristic.
    /// One definition shared by the graph build (which bakes the resulting
    /// `monotone` flag into every [`DerivationGraph`](crate::DerivationGraph))
    /// and the session's delta path (which refuses to carry cached graphs
    /// across an edit that flips this predicate): the two must never diverge.
    pub fn weights_monotone(&self, weights: &WeightConfig) -> bool {
        weights.lambda_weight().is_non_negative()
            && self.decl_weight.iter().all(|w| w.is_non_negative())
    }

    /// A fresh per-query interning overlay over this environment's store.
    ///
    /// Every query needs to intern a few types of its own (the goal type, the
    /// environments extended with lambda binders); the overlay takes those
    /// without mutating — or locking — the shared store.
    pub fn scratch(&self) -> ScratchStore<'_> {
        ScratchStore::new(&self.store)
    }

    /// The declarations whose σ image is exactly `succ` (the `Select` function
    /// restricted to the original environment).
    pub fn select(&self, succ: SuccinctTyId) -> &[usize] {
        self.by_succ.get(&succ).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The weight of a succinct type: the minimum weight of any declaration
    /// producing it, or [`Weight::UNKNOWN`] if no declaration does.
    pub fn type_weight(&self, succ: SuccinctTyId) -> Weight {
        self.ty_weight
            .get(&succ)
            .copied()
            .unwrap_or(Weight::UNKNOWN)
    }

    /// Number of *distinct* succinct types among the declarations — the
    /// compression statistic reported in §3.2 (3356 declarations → 1783
    /// succinct types on the Figure 1 example).
    pub fn distinct_succinct_types(&self) -> usize {
        self.by_succ.len()
    }

    /// Full byte-level identity against another preparation: the fingerprint,
    /// every index (`decl_succ`, `decl_weight`, `by_succ`, `ty_weight`,
    /// `init_env`) and every store table (symbol names, type records, the
    /// interned initial environment) must match, id for id. This is the
    /// contract [`PreparedEnv::prepare_sharded`] documents; the
    /// `baseline --check` shard-invariance gate and the property tests hold
    /// arbitrary shard counts to it.
    pub fn identical_to(&self, other: &PreparedEnv) -> bool {
        if self.fingerprint != other.fingerprint
            || self.init_env != other.init_env
            || self.decl_succ != other.decl_succ
            || self.decl_weight != other.decl_weight
            || self.by_succ != other.by_succ
            || self.ty_weight != other.ty_weight
            || self.store.ty_count() != other.store.ty_count()
            || self.store.symbol_count() != other.store.symbol_count()
        {
            return false;
        }
        let tys_match = (0..self.store.ty_count() as u32).all(|i| {
            let id = SuccinctTyId::from_index(i);
            self.store.ty(id) == other.store.ty(id)
        });
        let symbols_match = (0..self.store.symbol_count() as u32).all(|i| {
            let sym = Symbol::from_index(i);
            self.store.base_name(sym) == other.store.base_name(sym)
        });
        tys_match
            && symbols_match
            && self.store.env_types(self.init_env) == other.store.env_types(other.init_env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::{DeclKind, Declaration};
    use insynth_lambda::Ty;

    fn env() -> TypeEnv {
        let mut e = TypeEnv::new();
        e.push(Declaration::new("a", Ty::base("Int"), DeclKind::Local));
        e.push(Declaration::new(
            "f",
            Ty::fun(vec![Ty::base("Int"), Ty::base("Int")], Ty::base("String")),
            DeclKind::Imported,
        ));
        e.push(Declaration::new(
            "g",
            Ty::fun(vec![Ty::base("Int")], Ty::base("String")),
            DeclKind::Local,
        ));
        e
    }

    #[test]
    fn sigma_collapses_f_and_g_to_one_succinct_type() {
        let prepared = PreparedEnv::prepare(&env(), &WeightConfig::default());
        // f : Int -> Int -> String and g : Int -> String both become {Int} -> String.
        assert_eq!(prepared.decl_succ[1], prepared.decl_succ[2]);
        assert_eq!(prepared.distinct_succinct_types(), 2);
        assert_eq!(prepared.select(prepared.decl_succ[1]), &[1, 2]);
    }

    #[test]
    fn type_weight_is_the_minimum_declaration_weight() {
        let prepared = PreparedEnv::prepare(&env(), &WeightConfig::default());
        // g is Local (5), f is Imported (1000): the shared succinct type weighs 5.
        assert_eq!(prepared.type_weight(prepared.decl_succ[1]).value(), 5.0);
    }

    #[test]
    fn unknown_types_get_the_sentinel_weight() {
        let mut store_probe = PreparedEnv::prepare(&env(), &WeightConfig::default());
        let missing = store_probe.store.mk_base("Missing");
        assert_eq!(store_probe.type_weight(missing), Weight::UNKNOWN);
    }

    #[test]
    fn init_env_contains_every_declared_succinct_type() {
        let prepared = PreparedEnv::prepare(&env(), &WeightConfig::default());
        for &succ in &prepared.decl_succ {
            assert!(prepared.store.env_contains(prepared.init_env, succ));
        }
        assert_eq!(prepared.store.env_len(prepared.init_env), 2);
    }

    #[test]
    fn fingerprint_is_declaration_order_insensitive() {
        let weights = WeightConfig::default();
        let fwd = env();
        let rev: TypeEnv = fwd.iter().rev().cloned().collect();
        assert_eq!(
            PreparedEnv::fingerprint_of(&fwd, &weights),
            PreparedEnv::fingerprint_of(&rev, &weights),
        );
    }

    #[test]
    fn fingerprint_distinguishes_contents_weights_and_multiplicity() {
        let weights = WeightConfig::default();
        let base = env();
        let fp = PreparedEnv::fingerprint_of(&base, &weights);

        let mut grown = base.clone();
        grown.push(Declaration::new("extra", Ty::base("Int"), DeclKind::Local));
        assert_ne!(fp, PreparedEnv::fingerprint_of(&grown, &weights));

        let mut duplicated = base.clone();
        duplicated.push(base.decls()[0].clone());
        assert_ne!(fp, PreparedEnv::fingerprint_of(&duplicated, &weights));

        let reweighted: TypeEnv = base
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let d = d.clone();
                if i == 0 {
                    d.with_weight(3.25)
                } else {
                    d
                }
            })
            .collect();
        assert_ne!(fp, PreparedEnv::fingerprint_of(&reweighted, &weights));

        // A different weight *mode* changes effective weights, hence the
        // fingerprint — the same declarations prepare differently under it.
        let no_weights = WeightConfig::new(crate::weights::WeightMode::NoWeights);
        assert_ne!(fp, PreparedEnv::fingerprint_of(&base, &no_weights));
    }

    #[test]
    fn prepare_appended_is_bit_identical_to_fresh_preparation() {
        let weights = WeightConfig::default();
        let old_env = env();
        let base = PreparedEnv::prepare(&old_env, &weights);

        // Append two declarations (one duplicating an existing succinct type,
        // one introducing a new type) and reweight an existing one in place.
        let mut new_env: TypeEnv = old_env
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let d = d.clone();
                if i == 2 {
                    d.with_weight(1.5)
                } else {
                    d
                }
            })
            .collect();
        new_env.push(Declaration::new("b", Ty::base("Int"), DeclKind::Class));
        new_env.push(Declaration::new(
            "h",
            Ty::fun(vec![Ty::base("String")], Ty::base("File")),
            DeclKind::Imported,
        ));

        let incremental = PreparedEnv::prepare_appended(
            &base,
            &new_env,
            &weights,
            old_env.len(),
            PreparedEnv::fingerprint_of(&new_env, &weights),
        );
        let fresh = PreparedEnv::prepare(&new_env, &weights);

        assert_eq!(incremental.decl_succ, fresh.decl_succ);
        assert_eq!(incremental.decl_weight, fresh.decl_weight);
        assert_eq!(incremental.fingerprint, fresh.fingerprint);
        assert_eq!(incremental.by_succ, fresh.by_succ);
        assert_eq!(incremental.ty_weight, fresh.ty_weight);
        // Type interning replays identically (same ids, same count); the
        // initial environment agrees as a member set (its *id* may lag by
        // the carried-over old initial environment, which is inert).
        assert_eq!(incremental.store.ty_count(), fresh.store.ty_count());
        assert_eq!(
            incremental.store.env_types(incremental.init_env),
            fresh.store.env_types(fresh.init_env)
        );
        assert_eq!(
            incremental.distinct_succinct_types(),
            fresh.distinct_succinct_types()
        );

        // An appended duplicate of an existing type keeps the initial
        // environment's identity — the condition the session's carry-over
        // path checks.
        let mut dup_env = old_env.clone();
        dup_env.push(Declaration::new("a2", Ty::base("Int"), DeclKind::Package));
        let dup = PreparedEnv::prepare_appended(
            &base,
            &dup_env,
            &weights,
            old_env.len(),
            PreparedEnv::fingerprint_of(&dup_env, &weights),
        );
        assert_eq!(dup.init_env, base.init_env);
    }

    /// Every observable field — including raw interned ids and store counts —
    /// must agree between a sharded and a sequential preparation.
    fn assert_prepare_identical(a: &PreparedEnv, b: &PreparedEnv) {
        assert_eq!(a.decl_succ, b.decl_succ);
        assert_eq!(a.decl_weight, b.decl_weight);
        assert_eq!(a.by_succ, b.by_succ);
        assert_eq!(a.ty_weight, b.ty_weight);
        assert_eq!(a.init_env, b.init_env);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.store.ty_count(), b.store.ty_count());
        assert_eq!(a.store.symbol_count(), b.store.symbol_count());
        assert_eq!(a.store.env_types(a.init_env), b.store.env_types(b.init_env));
    }

    /// A small environment that exercises the interesting merge cases: types
    /// duplicated across shards, nested arrows whose curried intermediates
    /// must also replay, higher-order arguments, and single-shard chunks.
    fn shard_env() -> TypeEnv {
        let mut e = TypeEnv::new();
        e.push(Declaration::new("a", Ty::base("Int"), DeclKind::Local));
        e.push(Declaration::new(
            "f",
            Ty::fun(vec![Ty::base("Int"), Ty::base("Str")], Ty::base("File")),
            DeclKind::Imported,
        ));
        e.push(Declaration::new(
            "g",
            Ty::fun(vec![Ty::base("Str"), Ty::base("Int")], Ty::base("File")),
            DeclKind::Local,
        ));
        e.push(Declaration::new(
            "h",
            Ty::fun(
                vec![Ty::fun(vec![Ty::base("Int")], Ty::base("Str"))],
                Ty::base("Int"),
            ),
            DeclKind::Imported,
        ));
        e.push(Declaration::new("b", Ty::base("Str"), DeclKind::Class));
        e.push(Declaration::new(
            "k",
            Ty::fun(vec![Ty::base("File")], Ty::base("Str")),
            DeclKind::Local,
        ));
        e
    }

    #[test]
    fn sharded_prepare_is_byte_identical_for_every_shard_count() {
        let weights = WeightConfig::default();
        let env = shard_env();
        let sequential = PreparedEnv::prepare(&env, &weights);
        // Includes shard counts exceeding the declaration count.
        for shards in [1, 2, 3, 4, 8, 64] {
            let sharded = PreparedEnv::prepare_sharded(&env, &weights, shards);
            assert_prepare_identical(&sharded, &sequential);
        }
    }

    #[test]
    fn sharded_prepare_handles_degenerate_environments() {
        let weights = WeightConfig::default();
        let empty = TypeEnv::new();
        assert_prepare_identical(
            &PreparedEnv::prepare_sharded(&empty, &weights, 8),
            &PreparedEnv::prepare(&empty, &weights),
        );
        let mut one = TypeEnv::new();
        one.push(Declaration::new(
            "only",
            Ty::fun(vec![Ty::base("A")], Ty::base("B")),
            DeclKind::Local,
        ));
        assert_prepare_identical(
            &PreparedEnv::prepare_sharded(&one, &weights, 8),
            &PreparedEnv::prepare(&one, &weights),
        );
    }

    #[test]
    fn effective_sigma_shards_keeps_chunks_coarse() {
        // Small environments degrade to the sequential path.
        assert_eq!(effective_sigma_shards(8, 500), 1);
        assert_eq!(effective_sigma_shards(8, 2048), 2);
        // Large environments honor the request.
        assert_eq!(effective_sigma_shards(8, 50_000), 8);
        // Zero is treated as one.
        assert_eq!(effective_sigma_shards(0, 50_000), 1);
    }
}
